//! Deterministic event queue and simulation driver.
//!
//! [`EventQueue`] is a priority queue of `(SimTime, E)` pairs ordered by time
//! with FIFO tie-breaking, so two events scheduled for the same instant pop in
//! the order they were scheduled — a requirement for reproducible simulations.
//!
//! Higher layers own their event loop: they define an event enum, pop events,
//! and mutate their own state. This keeps borrow-checker friction low compared
//! with a callback-based kernel, and lets each simulation choose its own state
//! shape.
//!
//! # Calendar layout
//!
//! Internally the queue is a *calendar queue* (Brown 1988) specialized for
//! the dense near-future pattern refresh+expiry simulations generate:
//!
//! * Pending events within a sliding **window** live in day-width buckets;
//!   the width is sized from pending-event density at each window rebuild
//!   (`span / bucket_count`), so a steady-state simulation sees O(1) events
//!   per bucket and pays O(1) per schedule/pop instead of the heap's
//!   O(log n).
//! * Only the **current bucket** (the one holding the global minimum) is kept
//!   sorted, and it is sorted on demand — buckets further out absorb inserts
//!   as unordered pushes and pay one sort when the clock reaches them.
//! * Events past the window horizon fall into an **overflow ladder**: an
//!   unordered spill vector redistributed into a fresh window when the
//!   in-window buckets drain. Each rebuild sizes the bucket width from the
//!   spacing of the *nearest* events (a head-density probe), never from the
//!   full ladder span — a single far-future expiry must not stretch the
//!   buckets until the near cluster collapses into one (the classic
//!   calendar-queue bimodal pathology, which turns every near-future insert
//!   into an O(bucket) sorted insert). Events past the density-derived
//!   horizon simply stay in the ladder for a later rebuild; they are
//!   re-scanned once per rebuild, and rebuilds are spaced a whole window
//!   apart, so the ladder stays O(1) amortized per event in steady state.
//!
//! The pop order is exactly the `(time, seq)` order of the retained
//! [`LegacyHeapQueue`]: buckets partition time into disjoint ascending
//! ranges, the overflow ladder holds only times at or past the window
//! horizon, and within a bucket entries are ordered by `(time, seq)` — so
//! the FIFO tie contract (equal times pop in schedule order) is preserved
//! structurally, not probabilistically. The differential suite in
//! `tests/queue_conformance.rs` replays random interleavings against the
//! heap oracle to keep it that way.
//!
//! # The `clear` contract
//!
//! [`EventQueue::clear`] (and its oracle twin) drops pending events but the
//! clock **and** the FIFO sequence counter survive: events scheduled after a
//! clear still tie-break after anything scheduled before it, and `now()`
//! never rewinds. Simulations use `clear` to cancel a phase, not to reset
//! the world.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// A pending event: ordering key is `(time, seq)` — earliest first, then FIFO.
struct Scheduled<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest event on
        // top. Calendar buckets reuse the same order: an ascending sort puts
        // the earliest `(time, seq)` at the *back*, where `Vec::pop` is O(1).
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Bucket-count bounds for the calendar window. The floor keeps width
/// arithmetic trivially overflow-free; the ceiling bounds empty-bucket scans
/// and resident memory for million-event simulations.
const MIN_BUCKETS: usize = 16;
const MAX_BUCKETS: usize = 1 << 16;

/// Number of nearest events sampled to estimate head density at a window
/// rebuild. Small enough that the probe (one `select_nth` partition) is
/// cheap, large enough to smooth over same-instant bursts.
const PROBE_EVENTS: usize = 64;

/// Target events per bucket when sizing width from the head-density probe.
/// A few events per bucket beats exactly one: the per-bucket costs (header
/// load, empty-bucket skip, one `sort_unstable` call) amortize over the
/// bucket's population, while sorting a handful of elements stays trivial.
const EVENTS_PER_BUCKET: u64 = 8;

/// Bucket population that triggers a re-window: a bucket this dense means
/// the current width no longer matches the live distribution (the
/// bootstrap window built from the very first scheduled event is the
/// common case), so sorted inserts into it would degrade into O(bucket)
/// memmoves. Single-instant FIFO clumps are exempt — no width can split
/// them, and they drain in O(1) pops anyway.
const SPLIT_THRESHOLD: usize = 64;

/// A deterministic time-ordered event queue (calendar-bucketed; see the
/// module docs for the layout and the [`LegacyHeapQueue`] oracle).
///
/// # Examples
///
/// ```
/// use mrm_sim::event::EventQueue;
/// use mrm_sim::time::SimTime;
///
/// #[derive(Debug, PartialEq)]
/// enum Ev { Tick, Tock }
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_nanos(10), Ev::Tock);
/// q.schedule(SimTime::from_nanos(10), Ev::Tick); // same instant: FIFO
/// q.schedule(SimTime::from_nanos(5), Ev::Tick);
/// assert_eq!(q.pop().unwrap(), (SimTime::from_nanos(5), Ev::Tick));
/// assert_eq!(q.pop().unwrap(), (SimTime::from_nanos(10), Ev::Tock));
/// assert_eq!(q.pop().unwrap(), (SimTime::from_nanos(10), Ev::Tick));
/// assert!(q.pop().is_none());
/// ```
pub struct EventQueue<E> {
    /// Window buckets: bucket `i` covers absolute nanoseconds
    /// `[win_start + i·width, win_start + (i+1)·width)`. Disjoint ascending
    /// ranges make cross-bucket order structural.
    buckets: Vec<Vec<Scheduled<E>>>,
    /// Index of the first possibly-nonempty bucket; when `len > 0` it is
    /// exactly the bucket holding the global minimum.
    cur: usize,
    /// Whether `buckets[cur]` is currently sorted (ascending in the reversed
    /// [`Scheduled`] order, i.e. earliest `(time, seq)` at the back).
    cur_sorted: bool,
    /// Window base, absolute nanoseconds.
    win_start: u64,
    /// Bucket width in nanoseconds — always a power of two (`1 << shift`),
    /// so the bucket index of a timestamp is a shift, not a division.
    width: u64,
    /// `width.trailing_zeros()`, cached for the `schedule` hot path.
    shift: u32,
    /// Overflow ladder: events at or past the window horizon, unordered.
    far: Vec<Scheduled<E>>,
    /// Total pending events (window + ladder).
    len: usize,
    next_seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        EventQueue {
            buckets: Vec::new(),
            cur: 0,
            cur_sorted: false,
            win_start: 0,
            width: 1,
            shift: 0,
            far: Vec::new(),
            len: 0,
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// Creates an empty queue pre-sized for about `n` pending events, so
    /// steady-state simulations never reallocate mid-run. Purely a
    /// wall-clock hint: behaviour is identical to [`EventQueue::new`].
    pub fn with_capacity(n: usize) -> Self {
        let mut q = EventQueue::new();
        q.far = Vec::with_capacity(n);
        q
    }

    /// Reserves room for at least `additional` more pending events.
    pub fn reserve(&mut self, additional: usize) {
        self.far.reserve(additional);
    }

    /// The current simulation time: the timestamp of the last popped event,
    /// or [`SimTime::ZERO`] before any event has been popped.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// Scheduling in the past is a logic error in the caller; the queue
    /// tolerates it (the event pops immediately) but debug builds assert.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        debug_assert!(at >= self.now, "scheduling event in the past");
        let seq = self.next_seq;
        self.next_seq += 1;
        let s = Scheduled {
            time: at,
            seq,
            event,
        };
        // A past time (tolerated in release) clamps into bucket 0 territory:
        // it only ever *lowers* the index, keeping cross-bucket order intact.
        let idx = (at.as_nanos().saturating_sub(self.win_start) >> self.shift) as usize;
        if idx >= self.buckets.len() {
            self.far.push(s);
        } else if idx == self.cur && self.cur_sorted {
            // A dense current bucket means the width no longer matches the
            // live distribution: re-window instead of paying an O(bucket)
            // sorted insert — unless the bucket is a single-instant FIFO
            // clump (`first == last == s`) that no width can split.
            let b = &mut self.buckets[idx];
            let splittable = b
                .first()
                .zip(b.last())
                .is_some_and(|(f, l)| f.time != l.time || f.time != s.time);
            if b.len() >= SPLIT_THRESHOLD && splittable {
                self.far.push(s);
                self.len += 1;
                self.rewindow();
                self.normalize();
                return;
            }
            // Mid-drain insert into the current bucket: keep it sorted with a
            // binary insert. `seq` is the largest ever issued, so equal-time
            // entries stay ahead of `s` in pop order (FIFO).
            let pos = b.partition_point(|x| x.cmp(&s) == Ordering::Less);
            b.insert(pos, s);
        } else {
            if idx < self.cur {
                // Earlier empty bucket (only reachable when `at` precedes the
                // current bucket's range): it becomes the current bucket, and
                // one element is trivially sorted.
                debug_assert!(self.buckets[idx].is_empty());
                self.cur = idx;
                self.cur_sorted = true;
            }
            self.buckets[idx].push(s);
        }
        self.len += 1;
        // When events were already pending, every arm above preserves the
        // queue invariant (the current bucket stays nonempty and sorted):
        // ladder and later-bucket pushes don't touch it, current-bucket
        // inserts keep it sorted, earlier-bucket pushes re-point `cur` at a
        // trivially sorted singleton. Only the empty→nonempty transition
        // (where `cur` may be stale) needs a normalize.
        if self.len == 1 {
            self.normalize();
        }
    }

    /// Schedules `event` `delay` after the current simulation time.
    pub fn schedule_after(&mut self, delay: crate::time::SimDuration, event: E) {
        let at = self.now.saturating_add(delay);
        self.schedule(at, event);
    }

    /// Removes and returns the earliest event, advancing the clock to its
    /// timestamp. Returns `None` when the queue is empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        if self.len == 0 {
            return None;
        }
        let s = self.buckets[self.cur].pop().expect("normalized queue");
        self.len -= 1;
        debug_assert!(s.time >= self.now, "time went backwards");
        self.now = s.time;
        self.normalize();
        Some((s.time, s.event))
    }

    /// The timestamp of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        if self.len == 0 {
            return None;
        }
        // `normalize` runs after every mutation, so the current bucket is
        // sorted with the global minimum at its back.
        Some(
            self.buckets[self.cur]
                .last()
                .expect("normalized queue")
                .time,
        )
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Drops all pending events without advancing the clock. The clock and
    /// the FIFO sequence counter survive (see the module docs).
    pub fn clear(&mut self) {
        for b in &mut self.buckets {
            b.clear();
        }
        self.far.clear();
        self.cur = self.buckets.len();
        self.cur_sorted = false;
        self.len = 0;
    }

    /// Restores the queue invariant after a mutation: when events are
    /// pending, `buckets[cur]` is the nonempty bucket holding the global
    /// minimum and it is sorted. Rebuilds the window from the overflow
    /// ladder when the in-window buckets have drained.
    fn normalize(&mut self) {
        if self.len == 0 {
            return;
        }
        loop {
            while self.cur < self.buckets.len() {
                if self.buckets[self.cur].is_empty() {
                    self.cur += 1;
                    self.cur_sorted = false;
                    continue;
                }
                if !self.cur_sorted {
                    // An overloaded multi-instant bucket gets re-windowed
                    // at head density rather than sorted wholesale. This
                    // terminates: a rebuild puts the bucket's events at
                    // the window front with a width derived from their own
                    // spacing, and a width-1 window separates every
                    // distinct instant, leaving only unsplittable
                    // single-instant clumps.
                    let b = &self.buckets[self.cur];
                    if b.len() >= SPLIT_THRESHOLD {
                        let t0 = b[0].time;
                        if b.iter().any(|x| x.time != t0) {
                            self.rewindow();
                            continue;
                        }
                    }
                    self.buckets[self.cur].sort_unstable();
                    self.cur_sorted = true;
                }
                return;
            }
            debug_assert!(!self.far.is_empty(), "len > 0 but nothing pending");
            self.rebuild_window(u64::MAX);
        }
    }

    /// Dumps every in-window event back into the overflow ladder and
    /// re-windows from live density (see [`SPLIT_THRESHOLD`]). The new
    /// width is forced to at most half the current one: the density probe
    /// alone may land on the same width when the overloaded bucket is a
    /// few-nanosecond cluster, and halving guarantees the re-split makes
    /// progress (at width 1, every distinct instant gets its own bucket).
    fn rewindow(&mut self) {
        for i in self.cur..self.buckets.len() {
            let mut b = std::mem::take(&mut self.buckets[i]);
            self.far.append(&mut b);
            self.buckets[i] = b;
        }
        self.rebuild_window((self.width / 2).max(1));
    }

    /// Re-bases the window on the overflow ladder. Bucket width follows the
    /// spacing of the `PROBE_EVENTS` *nearest* events, so a far-future tail
    /// cannot stretch the buckets and collapse the near cluster into one;
    /// `max_width` additionally caps it (see [`EventQueue::rewindow`] —
    /// ordinary drained-window rebuilds pass `u64::MAX`). Events past the
    /// resulting horizon stay in the ladder.
    fn rebuild_window(&mut self, max_width: u64) {
        let mut spill = std::mem::take(&mut self.far);
        let count = spill
            .len()
            .next_power_of_two()
            .clamp(MIN_BUCKETS, MAX_BUCKETS);
        // Partition the `probe` nearest events to the front. The partition
        // order is irrelevant for determinism: bucket membership depends
        // only on timestamps, and buckets are sorted by `(time, seq)`
        // before popping.
        let probe = spill.len().min(PROBE_EVENTS);
        if probe < spill.len() {
            spill.select_nth_unstable_by_key(probe - 1, |s| (s.time, s.seq));
        }
        let mut lo = u64::MAX;
        let mut hi = 0u64;
        for s in &spill[..probe] {
            lo = lo.min(s.time.as_nanos());
            hi = hi.max(s.time.as_nanos());
        }
        // ≈[`EVENTS_PER_BUCKET`] events per bucket at head density; the
        // `+ 1` keeps the width nonzero, so the nearest probed event (at
        // `lo`) always lands inside the window and the rebuilt window is
        // never empty. Rounded up to a power of two so bucket indexing is
        // a shift; `max_width` (itself always a power of two) still caps it.
        let raw = ((hi - lo) / probe as u64 + 1).saturating_mul(EVENTS_PER_BUCKET);
        let shift = if raw >= 1 << 63 {
            63
        } else {
            raw.next_power_of_two().trailing_zeros()
        };
        self.shift = shift.min(63 - max_width.leading_zeros());
        self.width = 1 << self.shift;
        self.win_start = lo;
        self.buckets.resize_with(count, Vec::new);
        for s in spill {
            // Placement by bucket index, not by a `t < horizon` comparison:
            // near the u64 horizon `win_start + width * count` saturates,
            // and an event at exactly `SimTime::MAX` would compare ≥ the
            // saturated horizon forever — respilling into the ladder on
            // every rebuild and livelocking `normalize`. The index form is
            // the same predicate without the overflow (every spilled time
            // is ≥ `win_start`, the probed minimum, so the subtraction is
            // exact).
            let t = s.time.as_nanos();
            let idx = ((t - self.win_start) >> self.shift) as usize;
            if idx < count {
                self.buckets[idx].push(s);
            } else {
                self.far.push(s);
            }
        }
        self.cur = 0;
        self.cur_sorted = false;
    }
}

/// The pre-calendar binary-heap event queue, retained verbatim as the
/// differential oracle: same API, same `(time, seq)` contract, O(log n)
/// operations. `perf_suite`'s `event_churn` scenario and the conformance
/// tests run both queues against identical traces.
pub struct LegacyHeapQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
    now: SimTime,
}

impl<E> Default for LegacyHeapQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> LegacyHeapQueue<E> {
    /// Creates an empty queue with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        LegacyHeapQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// Creates an empty queue pre-sized for about `n` pending events.
    pub fn with_capacity(n: usize) -> Self {
        LegacyHeapQueue {
            heap: BinaryHeap::with_capacity(n),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// Reserves room for at least `additional` more pending events.
    pub fn reserve(&mut self, additional: usize) {
        self.heap.reserve(additional);
    }

    /// The current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` at absolute time `at`.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        debug_assert!(at >= self.now, "scheduling event in the past");
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled {
            time: at,
            seq,
            event,
        });
    }

    /// Schedules `event` `delay` after the current simulation time.
    pub fn schedule_after(&mut self, delay: crate::time::SimDuration, event: E) {
        let at = self.now.saturating_add(delay);
        self.schedule(at, event);
    }

    /// Removes and returns the earliest event, advancing the clock.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let s = self.heap.pop()?;
        debug_assert!(s.time >= self.now, "time went backwards");
        self.now = s.time;
        Some((s.time, s.event))
    }

    /// The timestamp of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops all pending events; the clock and sequence counter survive.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(30), 3u32);
        q.schedule(SimTime::from_nanos(10), 1);
        q.schedule(SimTime::from_nanos(20), 2);
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(100);
        for i in 0..1000u32 {
            q.schedule(t, i);
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..1000).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(5), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(5));
    }

    #[test]
    fn schedule_after_uses_current_clock() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(1), "a");
        q.pop();
        q.schedule_after(SimDuration::from_secs(2), "b");
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_secs(3));
    }

    #[test]
    fn with_capacity_matches_new() {
        let mut a = EventQueue::new();
        let mut b = EventQueue::with_capacity(1024);
        for i in 0..100u32 {
            let t = SimTime::from_nanos(u64::from(i % 7));
            a.schedule(t, i);
            b.schedule(t, i);
        }
        b.reserve(4096);
        loop {
            let (x, y) = (a.pop(), b.pop());
            assert_eq!(x, y, "capacity hints must not change pop order");
            if x.is_none() {
                break;
            }
        }
    }

    #[test]
    fn peek_len_clear() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert!(q.peek_time().is_none());
        q.schedule(SimTime::from_nanos(7), ());
        q.schedule(SimTime::from_nanos(3), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(3)));
        q.clear();
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_schedule_and_pop_is_deterministic() {
        // Two identical runs produce identical sequences.
        let run = || {
            let mut q = EventQueue::new();
            let mut out = Vec::new();
            q.schedule(SimTime::from_nanos(1), 0u64);
            let mut k = 1u64;
            while let Some((t, e)) = q.pop() {
                out.push((t, e));
                if k < 50 {
                    q.schedule(t + SimDuration::from_nanos(k % 3), k);
                    q.schedule(t + SimDuration::from_nanos(k % 5), k + 100);
                    k += 1;
                }
            }
            out
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn far_future_events_cross_window_rebuilds() {
        // Force repeated window rebuilds: each popped event schedules one
        // far past the current horizon, and a dense burst near it.
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(1), 0u64);
        let mut next = 1u64;
        let mut last = SimTime::ZERO;
        let mut popped = 0;
        while let Some((t, e)) = q.pop() {
            assert!(t >= last, "time must be monotone");
            last = t;
            popped += 1;
            if next < 200 {
                // A day-scale jump (far beyond any density-derived window)
                // plus a pair of near events.
                q.schedule(t + SimDuration::from_secs(86_400), next);
                q.schedule(t + SimDuration::from_nanos(3), next + 1000);
                q.schedule(t + SimDuration::from_nanos(3), next + 2000);
                next += 1;
            }
            let _ = e;
        }
        assert_eq!(popped, 1 + 199 * 3);
    }

    #[test]
    fn mid_drain_insert_keeps_fifo_within_current_bucket() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(50);
        q.schedule(t, 0u32);
        q.schedule(t, 1);
        q.schedule(SimTime::from_nanos(40), 99);
        assert_eq!(q.pop().unwrap().1, 99);
        // The current bucket is mid-drain and sorted; same-instant inserts
        // must still pop after the earlier-scheduled ties.
        q.schedule(t, 2);
        assert_eq!(q.pop().unwrap().1, 0);
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().1, 2);
    }

    #[test]
    fn legacy_heap_matches_calendar_on_a_burst() {
        let mut cal = EventQueue::new();
        let mut heap = LegacyHeapQueue::new();
        for i in 0..500u64 {
            let t = SimTime::from_nanos((i * 7919) % 97);
            cal.schedule(t, i);
            heap.schedule(t, i);
        }
        loop {
            let (a, b) = (cal.pop(), heap.pop());
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
        assert_eq!(cal.now(), heap.now());
    }
}
