//! Lightweight trace recording for simulations.
//!
//! A [`Trace`] is a bounded ring buffer of timestamped records plus total
//! counts, so a simulation can keep the most recent N events for inspection
//! without unbounded memory growth, and dump them as CSV for the experiment
//! harness.

use std::collections::VecDeque;
use std::fmt::Write as _;

use crate::time::SimTime;

/// A record that knows how to render itself as CSV fields.
pub trait TraceRecord {
    /// The CSV header (comma-separated field names, no trailing newline).
    fn csv_header() -> &'static str;
    /// The CSV row for this record (no trailing newline). Implementations
    /// should pass free-form string fields through [`csv_field`] so commas
    /// and quotes survive the round trip.
    fn csv_row(&self) -> String;
}

/// Renders one CSV field per RFC 4180: a value containing a comma, double
/// quote, or line break is wrapped in double quotes with internal quotes
/// doubled; anything else passes through unchanged.
///
/// ```
/// use mrm_sim::trace::csv_field;
/// assert_eq!(csv_field("plain"), "plain");
/// assert_eq!(csv_field("a,b"), "\"a,b\"");
/// assert_eq!(csv_field("say \"hi\""), "\"say \"\"hi\"\"\"");
/// ```
pub fn csv_field(value: &str) -> String {
    if value.contains([',', '"', '\n', '\r']) {
        let mut out = String::with_capacity(value.len() + 2);
        out.push('"');
        for c in value.chars() {
            if c == '"' {
                out.push('"');
            }
            out.push(c);
        }
        out.push('"');
        out
    } else {
        value.to_string()
    }
}

/// A bounded ring buffer of timestamped trace records.
///
/// # Examples
///
/// ```
/// use mrm_sim::trace::{Trace, TraceRecord};
/// use mrm_sim::time::SimTime;
///
/// struct Op(u64);
/// impl TraceRecord for Op {
///     fn csv_header() -> &'static str { "addr" }
///     fn csv_row(&self) -> String { self.0.to_string() }
/// }
///
/// let mut t = Trace::with_capacity(2);
/// t.push(SimTime::from_nanos(1), Op(10));
/// t.push(SimTime::from_nanos(2), Op(20));
/// t.push(SimTime::from_nanos(3), Op(30)); // evicts Op(10)
/// assert_eq!(t.total_pushed(), 3);
/// assert_eq!(t.len(), 2);
/// ```
#[derive(Clone, Debug)]
pub struct Trace<R> {
    buf: VecDeque<(SimTime, R)>,
    capacity: usize,
    total: u64,
}

impl<R: TraceRecord> Trace<R> {
    /// Creates a trace retaining at most `capacity` records.
    ///
    /// A zero capacity is valid and retains nothing: pushes still count in
    /// [`Trace::total_pushed`], so a disabled trace keeps its accounting.
    pub fn with_capacity(capacity: usize) -> Self {
        Trace {
            buf: VecDeque::with_capacity(capacity),
            capacity,
            total: 0,
        }
    }

    /// Appends a record, evicting the oldest when full. With a zero
    /// capacity the record is dropped but still counted.
    pub fn push(&mut self, at: SimTime, record: R) {
        self.total += 1;
        if self.capacity == 0 {
            return;
        }
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
        }
        self.buf.push_back((at, record));
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if no records are retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Total number of records ever pushed (including evicted ones).
    pub fn total_pushed(&self) -> u64 {
        self.total
    }

    /// Iterates retained records oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = &(SimTime, R)> {
        self.buf.iter()
    }

    /// Renders the retained records as CSV with a `time_ns` first column.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "time_ns,{}", R::csv_header());
        for (t, r) in &self.buf {
            let _ = writeln!(out, "{},{}", t.as_nanos(), r.csv_row());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Rec {
        kind: &'static str,
        bytes: u64,
    }

    impl TraceRecord for Rec {
        fn csv_header() -> &'static str {
            "kind,bytes"
        }
        fn csv_row(&self) -> String {
            format!("{},{}", self.kind, self.bytes)
        }
    }

    #[test]
    fn ring_buffer_evicts_oldest() {
        let mut t = Trace::with_capacity(3);
        for i in 0..5u64 {
            t.push(
                SimTime::from_nanos(i),
                Rec {
                    kind: "rd",
                    bytes: i,
                },
            );
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.total_pushed(), 5);
        let firsts: Vec<u64> = t.iter().map(|(_, r)| r.bytes).collect();
        assert_eq!(firsts, vec![2, 3, 4]);
    }

    #[test]
    fn ring_buffer_survives_many_wraps_in_order() {
        // Wrap the ring dozens of times: the retained window must always
        // be the newest `capacity` records, in push order, and the total
        // must keep counting past the bound.
        let mut t = Trace::with_capacity(4);
        for i in 0..103u64 {
            t.push(
                SimTime::from_nanos(i),
                Rec {
                    kind: "rd",
                    bytes: i,
                },
            );
        }
        assert_eq!(t.len(), 4);
        assert_eq!(t.total_pushed(), 103);
        let window: Vec<u64> = t.iter().map(|(_, r)| r.bytes).collect();
        assert_eq!(window, vec![99, 100, 101, 102]);
        let times: Vec<u64> = t.iter().map(|(at, _)| at.as_nanos()).collect();
        assert!(times.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn csv_output() {
        let mut t = Trace::with_capacity(4);
        t.push(
            SimTime::from_nanos(100),
            Rec {
                kind: "wr",
                bytes: 4096,
            },
        );
        let csv = t.to_csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("time_ns,kind,bytes"));
        assert_eq!(lines.next(), Some("100,wr,4096"));
        assert_eq!(lines.next(), None);
    }

    #[test]
    fn csv_field_round_trips_through_a_parser() {
        // A minimal RFC 4180 reader: the inverse of `csv_field`.
        fn parse(line: &str) -> Vec<String> {
            let mut fields = Vec::new();
            let mut cur = String::new();
            let mut quoted = false;
            let mut chars = line.chars().peekable();
            while let Some(c) = chars.next() {
                match c {
                    '"' if quoted => {
                        if chars.peek() == Some(&'"') {
                            chars.next();
                            cur.push('"');
                        } else {
                            quoted = false;
                        }
                    }
                    '"' => quoted = true,
                    ',' if !quoted => fields.push(std::mem::take(&mut cur)),
                    _ => cur.push(c),
                }
            }
            fields.push(cur);
            fields
        }
        let inputs = ["plain", "a,b", "say \"hi\"", "both, \"kinds\"", ""];
        let line: Vec<String> = inputs.iter().map(|s| csv_field(s)).collect();
        let parsed = parse(&line.join(","));
        assert_eq!(parsed, inputs.to_vec());
    }

    #[test]
    fn zero_capacity_counts_without_retaining() {
        // A zero-capacity trace is a valid "counting only" configuration:
        // pushes must neither panic nor grow the buffer.
        let mut t: Trace<Rec> = Trace::with_capacity(0);
        for i in 0..100u64 {
            t.push(
                SimTime::from_nanos(i),
                Rec {
                    kind: "rd",
                    bytes: i,
                },
            );
        }
        assert_eq!(t.total_pushed(), 100);
        assert_eq!(t.len(), 0);
        assert!(t.is_empty());
        let csv = t.to_csv();
        assert_eq!(csv.lines().count(), 1, "header only: {csv}");
    }
}
