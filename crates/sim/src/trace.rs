//! Lightweight trace recording for simulations.
//!
//! A [`Trace`] is a bounded ring buffer of timestamped records plus total
//! counts, so a simulation can keep the most recent N events for inspection
//! without unbounded memory growth, and dump them as CSV for the experiment
//! harness.

use std::collections::VecDeque;
use std::fmt::Write as _;

use crate::time::SimTime;

/// A record that knows how to render itself as CSV fields.
pub trait TraceRecord {
    /// The CSV header (comma-separated field names, no trailing newline).
    fn csv_header() -> &'static str;
    /// The CSV row for this record (no trailing newline).
    fn csv_row(&self) -> String;
}

/// A bounded ring buffer of timestamped trace records.
///
/// # Examples
///
/// ```
/// use mrm_sim::trace::{Trace, TraceRecord};
/// use mrm_sim::time::SimTime;
///
/// struct Op(u64);
/// impl TraceRecord for Op {
///     fn csv_header() -> &'static str { "addr" }
///     fn csv_row(&self) -> String { self.0.to_string() }
/// }
///
/// let mut t = Trace::with_capacity(2);
/// t.push(SimTime::from_nanos(1), Op(10));
/// t.push(SimTime::from_nanos(2), Op(20));
/// t.push(SimTime::from_nanos(3), Op(30)); // evicts Op(10)
/// assert_eq!(t.total_pushed(), 3);
/// assert_eq!(t.len(), 2);
/// ```
#[derive(Clone, Debug)]
pub struct Trace<R> {
    buf: VecDeque<(SimTime, R)>,
    capacity: usize,
    total: u64,
}

impl<R: TraceRecord> Trace<R> {
    /// Creates a trace retaining at most `capacity` records.
    ///
    /// A zero capacity is valid and retains nothing: pushes still count in
    /// [`Trace::total_pushed`], so a disabled trace keeps its accounting.
    pub fn with_capacity(capacity: usize) -> Self {
        Trace {
            buf: VecDeque::with_capacity(capacity),
            capacity,
            total: 0,
        }
    }

    /// Appends a record, evicting the oldest when full. With a zero
    /// capacity the record is dropped but still counted.
    pub fn push(&mut self, at: SimTime, record: R) {
        self.total += 1;
        if self.capacity == 0 {
            return;
        }
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
        }
        self.buf.push_back((at, record));
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if no records are retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Total number of records ever pushed (including evicted ones).
    pub fn total_pushed(&self) -> u64 {
        self.total
    }

    /// Iterates retained records oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = &(SimTime, R)> {
        self.buf.iter()
    }

    /// Renders the retained records as CSV with a `time_ns` first column.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "time_ns,{}", R::csv_header());
        for (t, r) in &self.buf {
            let _ = writeln!(out, "{},{}", t.as_nanos(), r.csv_row());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Rec {
        kind: &'static str,
        bytes: u64,
    }

    impl TraceRecord for Rec {
        fn csv_header() -> &'static str {
            "kind,bytes"
        }
        fn csv_row(&self) -> String {
            format!("{},{}", self.kind, self.bytes)
        }
    }

    #[test]
    fn ring_buffer_evicts_oldest() {
        let mut t = Trace::with_capacity(3);
        for i in 0..5u64 {
            t.push(
                SimTime::from_nanos(i),
                Rec {
                    kind: "rd",
                    bytes: i,
                },
            );
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.total_pushed(), 5);
        let firsts: Vec<u64> = t.iter().map(|(_, r)| r.bytes).collect();
        assert_eq!(firsts, vec![2, 3, 4]);
    }

    #[test]
    fn csv_output() {
        let mut t = Trace::with_capacity(4);
        t.push(
            SimTime::from_nanos(100),
            Rec {
                kind: "wr",
                bytes: 4096,
            },
        );
        let csv = t.to_csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("time_ns,kind,bytes"));
        assert_eq!(lines.next(), Some("100,wr,4096"));
        assert_eq!(lines.next(), None);
    }

    #[test]
    fn zero_capacity_counts_without_retaining() {
        // A zero-capacity trace is a valid "counting only" configuration:
        // pushes must neither panic nor grow the buffer.
        let mut t: Trace<Rec> = Trace::with_capacity(0);
        for i in 0..100u64 {
            t.push(
                SimTime::from_nanos(i),
                Rec {
                    kind: "rd",
                    bytes: i,
                },
            );
        }
        assert_eq!(t.total_pushed(), 100);
        assert_eq!(t.len(), 0);
        assert!(t.is_empty());
        let csv = t.to_csv();
        assert_eq!(csv.lines().count(), 1, "header only: {csv}");
    }
}
