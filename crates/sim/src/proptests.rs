//! Property-based tests for the simulation kernel.
//!
//! The kernel's correctness properties are what every downstream simulation
//! silently assumes: the event queue is a stable total order, time
//! arithmetic never goes backwards, distributions respect their supports,
//! and statistics merging is order-insensitive.

#![cfg(test)]

use proptest::prelude::*;

use crate::dist::{Distribution, Empirical, Exponential, LogNormal, Uniform};
use crate::event::EventQueue;
use crate::rng::SimRng;
use crate::stats::{LogHistogram, StreamingStats};
use crate::time::{SimDuration, SimTime};

proptest! {
    #[test]
    fn event_queue_pops_sorted_and_stable(
        times in proptest::collection::vec(0u64..1_000, 1..500)
    ) {
        let mut q = EventQueue::new();
        for (seq, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_nanos(t), (t, seq));
        }
        let mut last: Option<(u64, usize)> = None;
        while let Some((at, (t, seq))) = q.pop() {
            prop_assert_eq!(at.as_nanos(), t);
            if let Some((lt, lseq)) = last {
                // Total order by time; FIFO within equal timestamps.
                prop_assert!(t > lt || (t == lt && seq > lseq), "order violated");
            }
            last = Some((t, seq));
        }
    }

    #[test]
    // mrm-lint: allow(U1) nanosecond range bound for proptest, not a byte capacity
    fn duration_arithmetic_is_consistent(a in 0u64..1u64 << 40, b in 0u64..1u64 << 40) {
        let da = SimDuration::from_nanos(a);
        let db = SimDuration::from_nanos(b);
        let sum = da + db;
        prop_assert_eq!(sum.as_nanos(), a + b);
        prop_assert_eq!(sum - db, da);
        prop_assert_eq!((SimTime::ZERO + da + db) - (SimTime::ZERO + db), da);
        prop_assert_eq!(da.saturating_sub(db).as_nanos(), a.saturating_sub(b));
    }

    #[test]
    // mrm-lint: allow(U1) nanosecond range bound for proptest, not a byte capacity
    fn duration_float_roundtrip(ns in 1u64..1u64 << 50) {
        let d = SimDuration::from_nanos(ns);
        let back = SimDuration::from_secs_f64(d.as_secs_f64());
        // f64 has 52 bits of mantissa: allow 1-in-2^50 relative error.
        let err = back.as_nanos().abs_diff(ns);
        prop_assert!(err <= 1 + (ns >> 40), "ns {} back {}", ns, back.as_nanos());
    }

    #[test]
    fn rng_ranges_hold(seed in any::<u64>(), lo in 0u64..1000, width in 1u64..1000) {
        let mut rng = SimRng::seed_from(seed);
        for _ in 0..100 {
            let x = rng.gen_range(lo, lo + width);
            prop_assert!(x >= lo && x < lo + width);
        }
    }

    #[test]
    fn exponential_support_positive(seed in any::<u64>(), mean in 0.001f64..1e6) {
        let d = Exponential::with_mean(mean);
        let mut rng = SimRng::seed_from(seed);
        for _ in 0..50 {
            prop_assert!(d.sample(&mut rng) > 0.0);
        }
    }

    #[test]
    fn lognormal_support_positive(seed in any::<u64>(), median in 0.1f64..1e6, sigma in 0.01f64..3.0) {
        let d = LogNormal::from_median(median, sigma);
        let mut rng = SimRng::seed_from(seed);
        for _ in 0..50 {
            prop_assert!(d.sample(&mut rng) > 0.0);
        }
    }

    #[test]
    fn uniform_support(seed in any::<u64>(), lo in -1e6f64..1e6, width in 0.001f64..1e6) {
        let d = Uniform::new(lo, lo + width);
        let mut rng = SimRng::seed_from(seed);
        for _ in 0..50 {
            let x = d.sample(&mut rng);
            prop_assert!(x >= lo && x < lo + width);
        }
    }

    #[test]
    fn empirical_quantile_is_monotone(
        mut points in proptest::collection::vec((0.0f64..1.0, 0.0f64..1e6), 2..10)
    ) {
        // Sort values so the quantile table is valid.
        points.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        let mut vals: Vec<f64> = points.iter().map(|p| p.1).collect();
        vals.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let table: Vec<(f64, f64)> =
            points.iter().zip(&vals).map(|(p, &v)| (p.0, v)).collect();
        prop_assume!(table.windows(2).all(|w| w[0].0 < w[1].0));
        let d = Empirical::from_quantiles(table);
        let mut last = f64::NEG_INFINITY;
        for i in 0..=20 {
            let q = f64::from(i) / 20.0;
            let v = d.quantile(q);
            prop_assert!(v >= last, "quantile not monotone at {}", q);
            last = v;
        }
    }

    #[test]
    fn welford_merge_is_order_insensitive(
        xs in proptest::collection::vec(-1e6f64..1e6, 1..200),
        split_at in 0usize..200,
    ) {
        let at = split_at.min(xs.len());
        let mut whole = StreamingStats::new();
        for &x in &xs {
            whole.record(x);
        }
        let mut left = StreamingStats::new();
        let mut right = StreamingStats::new();
        for &x in &xs[..at] {
            left.record(x);
        }
        for &x in &xs[at..] {
            right.record(x);
        }
        let mut ab = left.clone();
        ab.merge(&right);
        let mut ba = right;
        ba.merge(&left);
        prop_assert_eq!(ab.count(), whole.count());
        prop_assert!((ab.mean() - whole.mean()).abs() < 1e-6 * (1.0 + whole.mean().abs()));
        prop_assert!((ab.mean() - ba.mean()).abs() < 1e-9 * (1.0 + whole.mean().abs()));
        prop_assert_eq!(ab.min().to_bits(), whole.min().to_bits());
        prop_assert_eq!(ab.max().to_bits(), whole.max().to_bits());
    }

    #[test]
    fn log_histogram_percentiles_are_monotone(
        xs in proptest::collection::vec(1.0f64..1e12, 1..300)
    ) {
        let mut h = LogHistogram::new(16);
        for &x in &xs {
            h.record(x);
        }
        let mut last = 0.0;
        for p in [0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0] {
            let v = h.percentile(p);
            prop_assert!(v >= last, "p{} = {} < {}", p, v, last);
            last = v;
        }
        // Percentiles bracket the data (to bucket resolution).
        let max = xs.iter().cloned().fold(0.0, f64::max);
        prop_assert!(h.percentile(100.0) <= max * 1.1);
    }

    #[test]
    fn welford_merge_matches_single_stream_for_arbitrary_splits(
        xs in proptest::collection::vec(-1e6f64..1e6, 1..200),
        assign in proptest::collection::vec(0usize..8, 1..200),
    ) {
        // Scatter the stream over up to 8 sub-accumulators by an arbitrary
        // assignment (the parallel-sweep shape), then fold them back.
        let mut whole = StreamingStats::new();
        let mut parts = vec![StreamingStats::new(); 8];
        for (i, &x) in xs.iter().enumerate() {
            whole.record(x);
            parts[assign[i % assign.len()]].record(x);
        }
        let mut merged = StreamingStats::new();
        for p in &parts {
            merged.merge(p);
        }
        prop_assert_eq!(merged.count(), whole.count());
        prop_assert_eq!(merged.min().to_bits(), whole.min().to_bits());
        prop_assert_eq!(merged.max().to_bits(), whole.max().to_bits());
        let scale = 1.0 + whole.mean().abs();
        prop_assert!((merged.mean() - whole.mean()).abs() < 1e-6 * scale);
        prop_assert!((merged.sum() - whole.sum()).abs() < 1e-6 * scale * xs.len() as f64);
        let vscale = 1.0 + whole.sample_variance().abs();
        prop_assert!(
            (merged.sample_variance() - whole.sample_variance()).abs() < 1e-6 * vscale
        );
    }

    #[test]
    fn histogram_merge_matches_single_stream_for_arbitrary_splits(
        xs in proptest::collection::vec(0.5f64..1e12, 1..300),
        assign in proptest::collection::vec(0usize..6, 1..300),
    ) {
        let mut whole = LogHistogram::new(16);
        let mut parts = vec![LogHistogram::new(16); 6];
        for (i, &x) in xs.iter().enumerate() {
            whole.record(x);
            parts[assign[i % assign.len()]].record(x);
        }
        let mut merged = parts[0].clone();
        for p in &parts[1..] {
            merged.merge(p);
        }
        prop_assert_eq!(merged.count(), whole.count());
        prop_assert_eq!(merged.min().to_bits(), whole.min().to_bits());
        prop_assert_eq!(merged.max().to_bits(), whole.max().to_bits());
        // Bucket counts (and so percentiles) must agree exactly: merging is
        // pure counter addition.
        for p in [0.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0] {
            prop_assert_eq!(
                merged.percentile(p).to_bits(),
                whole.percentile(p).to_bits(),
                "p{}",
                p
            );
        }
    }
}
