//! Probability distributions over the kernel RNG.
//!
//! The workload generators sample request inter-arrival times (exponential),
//! context lengths (log-normal / empirical quantile tables fitted to the
//! published Splitwise traces), popularity (Zipf), and cell-to-cell variation
//! (normal / Weibull). All distributions draw from [`SimRng`] so results stay
//! deterministic and independent of external crates.

use crate::rng::SimRng;

/// A distribution over `f64` samples.
pub trait Distribution {
    /// Draws one sample.
    fn sample(&self, rng: &mut SimRng) -> f64;

    /// The distribution mean, if it exists in closed form.
    fn mean(&self) -> Option<f64> {
        None
    }
}

/// The degenerate distribution: always returns the same value.
#[derive(Clone, Copy, Debug)]
pub struct Constant(pub f64);

impl Distribution for Constant {
    fn sample(&self, _rng: &mut SimRng) -> f64 {
        self.0
    }
    fn mean(&self) -> Option<f64> {
        Some(self.0)
    }
}

/// Continuous uniform on `[lo, hi)`.
#[derive(Clone, Copy, Debug)]
pub struct Uniform {
    lo: f64,
    hi: f64,
}

impl Uniform {
    /// Creates a uniform distribution on `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or either bound is non-finite.
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(
            lo.is_finite() && hi.is_finite() && lo <= hi,
            "bad uniform bounds"
        );
        Uniform { lo, hi }
    }
}

impl Distribution for Uniform {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        self.lo + (self.hi - self.lo) * rng.next_f64()
    }
    fn mean(&self) -> Option<f64> {
        Some(0.5 * (self.lo + self.hi))
    }
}

/// Exponential distribution with rate `lambda` (mean `1/lambda`).
///
/// Used for Poisson request arrivals: inter-arrival times of a Poisson
/// process with rate λ are Exponential(λ).
#[derive(Clone, Copy, Debug)]
pub struct Exponential {
    lambda: f64,
}

impl Exponential {
    /// Creates an exponential distribution with the given rate.
    ///
    /// # Panics
    ///
    /// Panics if `lambda` is not strictly positive and finite.
    pub fn new(lambda: f64) -> Self {
        assert!(
            lambda.is_finite() && lambda > 0.0,
            "lambda must be positive"
        );
        Exponential { lambda }
    }

    /// Creates an exponential distribution with the given mean.
    pub fn with_mean(mean: f64) -> Self {
        Exponential::new(1.0 / mean)
    }
}

impl Distribution for Exponential {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        // Inverse CDF; 1 - U avoids ln(0) since next_f64 ∈ [0,1).
        -(1.0 - rng.next_f64()).ln() / self.lambda
    }
    fn mean(&self) -> Option<f64> {
        Some(1.0 / self.lambda)
    }
}

/// Normal distribution (Box–Muller transform).
#[derive(Clone, Copy, Debug)]
pub struct Normal {
    mu: f64,
    sigma: f64,
}

impl Normal {
    /// Creates a normal distribution with mean `mu` and standard deviation
    /// `sigma`.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative or either parameter is non-finite.
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(
            mu.is_finite() && sigma.is_finite() && sigma >= 0.0,
            "bad normal params"
        );
        Normal { mu, sigma }
    }
}

impl Distribution for Normal {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        // Box–Muller; one of the pair is discarded to keep the sampler
        // stateless (throughput here is irrelevant next to determinism).
        let u1 = (1.0 - rng.next_f64()).max(f64::MIN_POSITIVE);
        let u2 = rng.next_f64();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        self.mu + self.sigma * z
    }
    fn mean(&self) -> Option<f64> {
        Some(self.mu)
    }
}

/// Log-normal distribution: `exp(Normal(mu, sigma))`.
///
/// Context-length distributions in LLM serving traces are heavy-tailed and
/// well approximated by log-normals around the published medians.
#[derive(Clone, Copy, Debug)]
pub struct LogNormal {
    normal: Normal,
}

impl LogNormal {
    /// Creates a log-normal with underlying normal parameters `(mu, sigma)`.
    pub fn new(mu: f64, sigma: f64) -> Self {
        LogNormal {
            normal: Normal::new(mu, sigma),
        }
    }

    /// Creates a log-normal from its *median* and the sigma of the
    /// underlying normal. The median of `LogNormal(mu, sigma)` is `exp(mu)`,
    /// which makes fitting to published medians direct.
    ///
    /// # Panics
    ///
    /// Panics if `median` is not strictly positive.
    pub fn from_median(median: f64, sigma: f64) -> Self {
        assert!(median > 0.0, "median must be positive");
        LogNormal::new(median.ln(), sigma)
    }
}

impl Distribution for LogNormal {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        self.normal.sample(rng).exp()
    }
    fn mean(&self) -> Option<f64> {
        Some((self.normal.mu + 0.5 * self.normal.sigma * self.normal.sigma).exp())
    }
}

/// Pareto (power-law tail) distribution with scale `x_min` and shape `alpha`.
#[derive(Clone, Copy, Debug)]
pub struct Pareto {
    x_min: f64,
    alpha: f64,
}

impl Pareto {
    /// Creates a Pareto distribution.
    ///
    /// # Panics
    ///
    /// Panics unless `x_min > 0` and `alpha > 0`.
    pub fn new(x_min: f64, alpha: f64) -> Self {
        assert!(x_min > 0.0 && alpha > 0.0, "bad pareto params");
        Pareto { x_min, alpha }
    }
}

impl Distribution for Pareto {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        let u = 1.0 - rng.next_f64();
        self.x_min / u.powf(1.0 / self.alpha)
    }
    fn mean(&self) -> Option<f64> {
        (self.alpha > 1.0).then(|| self.alpha * self.x_min / (self.alpha - 1.0))
    }
}

/// Zipf distribution over ranks `1..=n` with exponent `s`.
///
/// Models skewed popularity — e.g. which foundation model a request targets
/// ("a small number of the most popular ones are used at scale", §2).
/// Sampling is by binary search over a precomputed CDF, O(log n).
#[derive(Clone, Debug)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Creates a Zipf distribution over `1..=n` with exponent `s`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `s` is negative/non-finite.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "zipf needs at least one rank");
        assert!(s.is_finite() && s >= 0.0, "bad zipf exponent");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    /// Draws a rank in `1..=n` (1 is the most popular).
    pub fn sample_rank(&self, rng: &mut SimRng) -> usize {
        let u = rng.next_f64();
        match self
            .cdf
            .binary_search_by(|c| c.partial_cmp(&u).expect("CDF is NaN-free by construction"))
        {
            Ok(i) => i + 2.min(self.cdf.len() - i), // exact hit: next rank
            Err(i) => i + 1,
        }
        .min(self.cdf.len())
    }
}

impl Distribution for Zipf {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        self.sample_rank(rng) as f64
    }
}

/// Discrete distribution over arbitrary weights (CDF inversion).
#[derive(Clone, Debug)]
pub struct Discrete {
    cdf: Vec<f64>,
}

impl Discrete {
    /// Creates a discrete distribution; weights need not be normalized.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty, any weight is negative/non-finite, or
    /// all weights are zero.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "discrete needs at least one weight");
        let mut cdf = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for &w in weights {
            assert!(w.is_finite() && w >= 0.0, "bad weight {w}");
            acc += w;
            cdf.push(acc);
        }
        assert!(acc > 0.0, "weights sum to zero");
        for c in &mut cdf {
            *c /= acc;
        }
        Discrete { cdf }
    }

    /// Draws an index in `[0, weights.len())`.
    pub fn sample_index(&self, rng: &mut SimRng) -> usize {
        let u = rng.next_f64();
        self.cdf
            .iter()
            .position(|&c| u < c)
            .unwrap_or(self.cdf.len() - 1)
    }
}

impl Distribution for Discrete {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        self.sample_index(rng) as f64
    }
}

/// Empirical distribution from a quantile table, with linear interpolation.
///
/// This is how published trace statistics enter the simulator: a handful of
/// `(quantile, value)` points (e.g. P25/P50/P75/P90/P99 context lengths from
/// Splitwise) define a piecewise-linear inverse CDF.
#[derive(Clone, Debug)]
pub struct Empirical {
    /// Strictly increasing quantiles in `\[0, 1\]` with their values.
    points: Vec<(f64, f64)>,
}

impl Empirical {
    /// Creates an empirical distribution from `(quantile, value)` points.
    ///
    /// Points are sorted by quantile. If the table does not start at
    /// quantile 0 or end at quantile 1, the extreme values are extended flat.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two points are given, quantiles fall outside
    /// `\[0, 1\]`, or values are not non-decreasing in quantile order.
    pub fn from_quantiles(mut points: Vec<(f64, f64)>) -> Self {
        assert!(points.len() >= 2, "need at least two quantile points");
        points.sort_by(|a, b| a.0.total_cmp(&b.0));
        for w in points.windows(2) {
            assert!(
                (0.0..=1.0).contains(&w[0].0) && (0.0..=1.0).contains(&w[1].0),
                "quantiles must be in [0,1]"
            );
            assert!(w[0].1 <= w[1].1, "values must be non-decreasing");
        }
        if points[0].0 > 0.0 {
            let v = points[0].1;
            points.insert(0, (0.0, v));
        }
        if points[points.len() - 1].0 < 1.0 {
            let v = points[points.len() - 1].1;
            points.push((1.0, v));
        }
        Empirical { points }
    }

    /// Evaluates the inverse CDF at `q ∈ \[0, 1\]`.
    pub fn quantile(&self, q: f64) -> f64 {
        let q = q.clamp(0.0, 1.0);
        let mut prev = self.points[0];
        for &p in &self.points[1..] {
            if q <= p.0 {
                if p.0 <= prev.0 {
                    return p.1;
                }
                let t = (q - prev.0) / (p.0 - prev.0);
                return prev.1 + t * (p.1 - prev.1);
            }
            prev = p;
        }
        self.points
            .last()
            .expect("from_quantiles guarantees at least two points")
            .1
    }
}

impl Distribution for Empirical {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        self.quantile(rng.next_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::seed_from(0xC0FFEE)
    }

    fn sample_mean<D: Distribution>(d: &D, n: usize) -> f64 {
        let mut r = rng();
        (0..n).map(|_| d.sample(&mut r)).sum::<f64>() / n as f64
    }

    #[test]
    fn constant_is_constant() {
        let d = Constant(42.0);
        let mut r = rng();
        for _ in 0..10 {
            assert_eq!(d.sample(&mut r).to_bits(), 42.0f64.to_bits());
        }
    }

    #[test]
    fn uniform_mean_and_bounds() {
        let d = Uniform::new(10.0, 20.0);
        let mut r = rng();
        for _ in 0..10_000 {
            let x = d.sample(&mut r);
            assert!((10.0..20.0).contains(&x));
        }
        assert!((sample_mean(&d, 100_000) - 15.0).abs() < 0.05);
    }

    #[test]
    fn exponential_mean_matches() {
        let d = Exponential::with_mean(4.0);
        let m = sample_mean(&d, 200_000);
        assert!((m - 4.0).abs() < 0.05, "mean {m}");
        assert_eq!(d.mean(), Some(4.0));
    }

    #[test]
    fn exponential_is_memoryless_positive() {
        let d = Exponential::new(2.0);
        let mut r = rng();
        for _ in 0..10_000 {
            assert!(d.sample(&mut r) > 0.0);
        }
    }

    #[test]
    fn normal_moments() {
        let d = Normal::new(5.0, 2.0);
        let mut r = rng();
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| d.sample(&mut r)).collect();
        let mean = xs.iter().sum::<f64>() / f64::from(n);
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / f64::from(n);
        assert!((mean - 5.0).abs() < 0.03, "mean {mean}");
        assert!((var - 4.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn lognormal_median_is_respected() {
        let d = LogNormal::from_median(1020.0, 0.8);
        let mut r = rng();
        let mut xs: Vec<f64> = (0..100_001).map(|_| d.sample(&mut r)).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = xs[50_000];
        assert!((median / 1020.0 - 1.0).abs() < 0.03, "median {median}");
    }

    #[test]
    fn pareto_bounds_and_mean() {
        let d = Pareto::new(1.0, 3.0);
        let mut r = rng();
        for _ in 0..10_000 {
            assert!(d.sample(&mut r) >= 1.0);
        }
        assert!((sample_mean(&d, 300_000) - 1.5).abs() < 0.02);
        assert_eq!(Pareto::new(1.0, 0.5).mean(), None);
    }

    #[test]
    fn zipf_rank_one_dominates() {
        let d = Zipf::new(100, 1.2);
        let mut r = rng();
        let mut counts = vec![0u32; 101];
        for _ in 0..100_000 {
            counts[d.sample_rank(&mut r)] += 1;
        }
        assert!(counts[1] > counts[2]);
        assert!(counts[2] > counts[10]);
        assert_eq!(counts[0], 0);
    }

    #[test]
    fn zipf_stays_in_range() {
        let d = Zipf::new(5, 1.0);
        let mut r = rng();
        for _ in 0..10_000 {
            let k = d.sample_rank(&mut r);
            assert!((1..=5).contains(&k));
        }
    }

    #[test]
    fn discrete_matches_weights() {
        let d = Discrete::new(&[1.0, 3.0]);
        let mut r = rng();
        let n = 100_000;
        let ones = (0..n).filter(|_| d.sample_index(&mut r) == 1).count();
        let frac = ones as f64 / f64::from(n);
        assert!((frac - 0.75).abs() < 0.01, "frac {frac}");
    }

    #[test]
    fn empirical_interpolates_quantiles() {
        let d = Empirical::from_quantiles(vec![
            (0.25, 100.0),
            (0.50, 1020.0),
            (0.75, 2000.0),
            (0.99, 8000.0),
        ]);
        // Table knots and flat extensions return stored values exactly.
        assert_eq!(d.quantile(0.50).to_bits(), 1020.0f64.to_bits());
        assert_eq!(d.quantile(0.0).to_bits(), 100.0f64.to_bits());
        assert_eq!(d.quantile(1.0).to_bits(), 8000.0f64.to_bits());
        let mid = d.quantile(0.375);
        assert!(mid > 100.0 && mid < 1020.0);
    }

    #[test]
    fn empirical_sampling_median() {
        let d = Empirical::from_quantiles(vec![(0.0, 0.0), (0.5, 50.0), (1.0, 100.0)]);
        let mut r = rng();
        let mut xs: Vec<f64> = (0..50_001).map(|_| d.sample(&mut r)).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!((xs[25_000] - 50.0).abs() < 2.0);
    }

    #[test]
    #[should_panic(expected = "values must be non-decreasing")]
    fn empirical_rejects_decreasing_values() {
        let _ = Empirical::from_quantiles(vec![(0.1, 5.0), (0.9, 1.0)]);
    }
}
