//! Deterministic, splittable pseudo-random number generation.
//!
//! The kernel implements xoshiro256** (Blackman & Vigna) seeded through
//! SplitMix64, the combination recommended by the xoshiro authors. Both
//! algorithms are implemented here rather than pulled from an external crate
//! so that simulation results are stable across dependency upgrades.
//!
//! [`SimRng::split`] derives an independent child stream: each component of a
//! simulation (arrival process, context-length sampler, cell-variation
//! sampler, ...) takes its own substream so adding a consumer in one component
//! cannot perturb the draws seen by another.

/// SplitMix64 step: used for seeding and stream derivation.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic xoshiro256** PRNG with stream splitting.
///
/// # Examples
///
/// ```
/// use mrm_sim::rng::SimRng;
///
/// let mut a = SimRng::seed_from(42);
/// let mut b = SimRng::seed_from(42);
/// assert_eq!(a.next_u64(), b.next_u64());
///
/// let mut child = a.split();
/// let x = child.next_f64();
/// assert!((0.0..1.0).contains(&x));
/// ```
#[derive(Clone, Debug)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Creates a generator from a 64-bit seed, expanded via SplitMix64.
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        // xoshiro must not start in the all-zero state; SplitMix64 cannot
        // produce four zeros from any seed, but guard anyway.
        if s == [0, 0, 0, 0] {
            SimRng { s: [1, 2, 3, 4] }
        } else {
            SimRng { s }
        }
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// The next 32-bit output (upper bits of a 64-bit draw).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniform double in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform integer in `[0, bound)` using Lemire's unbiased method.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn gen_range_u64(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_range_u64 bound must be positive");
        // Lemire's multiply-shift rejection method.
        loop {
            let x = self.next_u64();
            let m = u128::from(x).wrapping_mul(u128::from(bound));
            let low = m as u64;
            if low >= bound {
                return (m >> 64) as u64;
            }
            // Rejection zone: only reject when low < threshold.
            let threshold = bound.wrapping_neg() % bound;
            if low >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// A uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn gen_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "gen_range: empty range {lo}..{hi}");
        lo + self.gen_range_u64(hi - lo)
    }

    /// A uniform `usize` index in `[0, len)`, for indexing slices.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    pub fn gen_index(&mut self, len: usize) -> usize {
        self.gen_range_u64(len as u64) as usize
    }

    /// Bernoulli draw with probability `p` of `true`; `p` is clamped to
    /// `\[0, 1\]`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.next_f64() < p
        }
    }

    /// Derives an independent child generator.
    ///
    /// The child is seeded from the parent's output stream through a fresh
    /// SplitMix64 pass, so parent and child sequences are statistically
    /// independent and the derivation itself is deterministic.
    pub fn split(&mut self) -> SimRng {
        SimRng::seed_from(self.next_u64() ^ 0xA5A5_5A5A_DEAD_BEEF)
    }

    /// Fisher–Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.gen_index(i + 1);
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = SimRng::seed_from(123);
        let mut b = SimRng::seed_from(123);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::seed_from(1);
        let mut b = SimRng::seed_from(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SimRng::seed_from(7);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_mean_near_half() {
        let mut r = SimRng::seed_from(99);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.next_f64()).sum::<f64>() / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = SimRng::seed_from(5);
        for _ in 0..10_000 {
            let x = r.gen_range(10, 20);
            assert!((10..20).contains(&x));
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut r = SimRng::seed_from(11);
        let mut counts = [0u32; 10];
        let n = 100_000;
        for _ in 0..n {
            counts[r.gen_range_u64(10) as usize] += 1;
        }
        for &c in &counts {
            let expected = f64::from(n) / 10.0;
            assert!(
                (f64::from(c) - expected).abs() < expected * 0.05,
                "count {c}"
            );
        }
    }

    #[test]
    fn split_streams_are_independent_of_parent_usage() {
        // Splitting at the same parent state yields the same child stream
        // regardless of what the *previous* child consumed.
        let mut p1 = SimRng::seed_from(42);
        let mut p2 = SimRng::seed_from(42);

        let mut c1a = p1.split();
        let _ = c1a.next_u64(); // consume heavily from the first child
        for _ in 0..100 {
            let _ = c1a.next_u64();
        }
        let mut c1b = p1.split();

        let mut c2a = p2.split();
        let _ = c2a.next_u64(); // consume lightly
        let mut c2b = p2.split();

        assert_eq!(c1b.next_u64(), c2b.next_u64());
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = SimRng::seed_from(3);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
        assert!(!r.gen_bool(-0.5));
        assert!(r.gen_bool(1.5));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SimRng::seed_from(17);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>()); // astronomically unlikely
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn zero_bound_panics() {
        SimRng::seed_from(0).gen_range_u64(0);
    }
}
