//! Virtual time for the simulation kernel.
//!
//! Time is represented with nanosecond resolution in a `u64`, which covers
//! simulated spans of up to roughly 584 years — comfortably beyond the
//! five-year device lifetimes the MRM endurance analysis reasons about, while
//! still resolving individual DRAM column accesses (tens of nanoseconds).
//!
//! [`SimTime`] is a point on the simulation clock; [`SimDuration`] is a span.
//! The two are distinct newtypes so that adding two instants (a category
//! error) does not type-check.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// Nanoseconds in one microsecond.
pub const NANOS_PER_MICRO: u64 = 1_000;
/// Nanoseconds in one millisecond.
pub const NANOS_PER_MILLI: u64 = 1_000_000;
/// Nanoseconds in one second.
pub const NANOS_PER_SEC: u64 = 1_000_000_000;
/// Seconds in one hour.
pub const SECS_PER_HOUR: u64 = 3_600;
/// Seconds in one day.
pub const SECS_PER_DAY: u64 = 86_400;
/// Seconds in one (365-day) year, as used by the paper's 5-year lifetime math.
pub const SECS_PER_YEAR: u64 = 365 * SECS_PER_DAY;

/// An instant on the simulation clock, in nanoseconds since simulation start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from raw nanoseconds since simulation start.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Creates an instant from whole seconds since simulation start.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * NANOS_PER_SEC)
    }

    /// Raw nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole microseconds since simulation start (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / NANOS_PER_MICRO
    }

    /// Whole milliseconds since simulation start (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / NANOS_PER_MILLI
    }

    /// Whole seconds since simulation start (truncating).
    pub const fn as_secs(self) -> u64 {
        self.0 / NANOS_PER_SEC
    }

    /// Seconds since simulation start as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// The span from `earlier` to `self`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `earlier` is later than `self`.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        debug_assert!(earlier.0 <= self.0, "duration_since: earlier > self");
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition of a duration, `None` on overflow.
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }

    /// Saturating addition of a duration.
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// The zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable span; used as an "effectively forever" sentinel
    /// (e.g. the retention of non-volatile technologies in comparisons).
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a span from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Creates a span from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * NANOS_PER_MICRO)
    }

    /// Creates a span from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * NANOS_PER_MILLI)
    }

    /// Creates a span from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * NANOS_PER_SEC)
    }

    /// Creates a span from whole minutes.
    pub const fn from_mins(m: u64) -> Self {
        SimDuration(m * 60 * NANOS_PER_SEC)
    }

    /// Creates a span from whole hours.
    pub const fn from_hours(h: u64) -> Self {
        SimDuration(h * SECS_PER_HOUR * NANOS_PER_SEC)
    }

    /// Creates a span from whole days.
    pub const fn from_days(d: u64) -> Self {
        SimDuration(d * SECS_PER_DAY * NANOS_PER_SEC)
    }

    /// Creates a span from whole 365-day years.
    pub const fn from_years(y: u64) -> Self {
        SimDuration(y * SECS_PER_YEAR * NANOS_PER_SEC)
    }

    /// Creates a span from fractional seconds, saturating at the
    /// representable range and treating non-finite input as zero.
    pub fn from_secs_f64(s: f64) -> Self {
        if !s.is_finite() || s <= 0.0 {
            return SimDuration::ZERO;
        }
        let ns = s * NANOS_PER_SEC as f64;
        if ns >= u64::MAX as f64 {
            SimDuration::MAX
        } else {
            SimDuration(ns as u64)
        }
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole microseconds (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / NANOS_PER_MICRO
    }

    /// Whole milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / NANOS_PER_MILLI
    }

    /// Whole seconds (truncating).
    pub const fn as_secs(self) -> u64 {
        self.0 / NANOS_PER_SEC
    }

    /// Seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// True if this span is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Checked addition, `None` on overflow.
    pub fn checked_add(self, other: SimDuration) -> Option<SimDuration> {
        self.0.checked_add(other.0).map(SimDuration)
    }

    /// Saturating subtraction (clamps at zero).
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Saturating multiplication by an integer factor.
    pub fn saturating_mul(self, k: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(k))
    }

    /// Scales the span by a float factor, saturating; non-finite or negative
    /// factors yield zero.
    pub fn mul_f64(self, k: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.as_secs_f64() * k)
    }

    /// How many times `other` fits in `self` (integer division).
    ///
    /// # Panics
    ///
    /// Panics if `other` is zero.
    pub fn div_duration(self, other: SimDuration) -> u64 {
        assert!(!other.is_zero(), "division by zero-length duration");
        self.0 / other.0
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0 + d.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        self.0 += d.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, d: SimDuration) -> SimTime {
        SimTime(self.0 - d.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, t: SimTime) -> SimDuration {
        SimDuration(self.0 - t.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, d: SimDuration) -> SimDuration {
        SimDuration(self.0 + d.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, d: SimDuration) {
        self.0 += d.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, d: SimDuration) -> SimDuration {
        SimDuration(self.0 - d.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, d: SimDuration) {
        self.0 -= d.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, k: u64) -> SimDuration {
        SimDuration(self.0 * k)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, k: u64) -> SimDuration {
        SimDuration(self.0 / k)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", SimDuration(self.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", SimDuration(self.0))
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns == u64::MAX {
            return write!(f, "forever");
        }
        if ns < NANOS_PER_MICRO {
            write!(f, "{ns}ns")
        } else if ns < NANOS_PER_MILLI {
            write!(f, "{:.3}us", ns as f64 / NANOS_PER_MICRO as f64)
        } else if ns < NANOS_PER_SEC {
            write!(f, "{:.3}ms", ns as f64 / NANOS_PER_MILLI as f64)
        } else if ns < 60 * NANOS_PER_SEC {
            write!(f, "{:.3}s", ns as f64 / NANOS_PER_SEC as f64)
        } else {
            let secs = ns / NANOS_PER_SEC;
            if secs < SECS_PER_HOUR {
                write!(f, "{}m{}s", secs / 60, secs % 60)
            } else if secs < SECS_PER_DAY {
                write!(
                    f,
                    "{}h{}m",
                    secs / SECS_PER_HOUR,
                    (secs % SECS_PER_HOUR) / 60
                )
            } else if secs < SECS_PER_YEAR {
                write!(
                    f,
                    "{}d{}h",
                    secs / SECS_PER_DAY,
                    (secs % SECS_PER_DAY) / SECS_PER_HOUR
                )
            } else {
                write!(f, "{:.2}y", secs as f64 / SECS_PER_YEAR as f64)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_roundtrips() {
        assert_eq!(SimDuration::from_secs(3).as_nanos(), 3 * NANOS_PER_SEC);
        assert_eq!(SimDuration::from_millis(5).as_micros(), 5_000);
        assert_eq!(SimDuration::from_hours(2).as_secs(), 7_200);
        assert_eq!(SimDuration::from_days(1).as_secs(), 86_400);
        assert_eq!(SimDuration::from_years(5).as_secs(), 5 * SECS_PER_YEAR);
    }

    #[test]
    fn five_year_lifetime_fits() {
        let five_years = SimDuration::from_years(5);
        let end = SimTime::ZERO + five_years;
        assert_eq!(end.as_secs(), 5 * SECS_PER_YEAR);
        // Plenty of headroom below u64::MAX nanoseconds (~584y).
        assert!(SimDuration::from_years(500).as_nanos() < u64::MAX);
    }

    #[test]
    fn instant_minus_instant_is_duration() {
        let a = SimTime::from_nanos(1_000);
        let b = SimTime::from_nanos(4_500);
        assert_eq!(b - a, SimDuration::from_nanos(3_500));
        assert_eq!(b.duration_since(a).as_nanos(), 3_500);
    }

    #[test]
    fn from_secs_f64_edge_cases() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::INFINITY), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(1.5).as_millis(), 1_500);
        assert_eq!(SimDuration::from_secs_f64(1e30), SimDuration::MAX);
    }

    #[test]
    fn mul_f64_scales() {
        let d = SimDuration::from_secs(10);
        assert_eq!(d.mul_f64(0.5).as_secs(), 5);
        assert_eq!(d.mul_f64(-1.0), SimDuration::ZERO);
    }

    #[test]
    fn div_duration_counts_refresh_intervals() {
        // 64 ms retention window, 7.8 us refresh interval: how many refreshes.
        let window = SimDuration::from_millis(64);
        let trefi = SimDuration::from_micros(7);
        assert_eq!(window.div_duration(trefi), 64_000 / 7);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_duration_panics() {
        let _ = SimDuration::from_secs(1).div_duration(SimDuration::ZERO);
    }

    #[test]
    fn display_formats_scale() {
        assert_eq!(SimDuration::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimDuration::from_micros(3).to_string(), "3.000us");
        assert_eq!(SimDuration::from_millis(64).to_string(), "64.000ms");
        assert_eq!(SimDuration::from_secs(90).to_string(), "1m30s");
        assert_eq!(SimDuration::from_hours(25).to_string(), "1d1h");
        assert_eq!(SimDuration::from_years(5).to_string(), "5.00y");
        assert_eq!(SimDuration::MAX.to_string(), "forever");
    }

    #[test]
    fn saturating_ops() {
        assert_eq!(
            SimTime::MAX.saturating_add(SimDuration::from_secs(1)),
            SimTime::MAX
        );
        assert_eq!(
            SimDuration::from_secs(1).saturating_sub(SimDuration::from_secs(5)),
            SimDuration::ZERO
        );
        assert_eq!(SimDuration::MAX.saturating_mul(3), SimDuration::MAX);
        assert!(SimTime::MAX
            .checked_add(SimDuration::from_nanos(1))
            .is_none());
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_nanos(1) < SimTime::from_nanos(2));
        assert!(SimDuration::from_secs(1) < SimDuration::from_mins(1));
        assert!(SimDuration::from_mins(1) < SimDuration::from_hours(1));
        assert!(SimDuration::from_hours(1) < SimDuration::from_days(1));
    }
}
