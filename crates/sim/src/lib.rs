//! # `mrm-sim` — discrete-event simulation kernel
//!
//! The substrate under every other crate in the `mrm` workspace: a
//! deterministic discrete-event simulation core with nanosecond-resolution
//! virtual time, a splittable pseudo-random number generator, the probability
//! distributions used by the workload generators, streaming statistics, and a
//! lightweight trace facility.
//!
//! Design goals:
//!
//! * **Determinism.** Given the same seed, every simulation in the workspace
//!   produces bit-identical results. The event queue breaks timestamp ties by
//!   insertion sequence, and the RNG supports stream splitting so concurrent
//!   components draw from independent substreams whose contents do not depend
//!   on interleaving.
//! * **No global state.** Everything is a value handed to the component that
//!   needs it.
//! * **No heavyweight dependencies.** The kernel implements its own RNG and
//!   distributions so simulation results cannot silently change when an
//!   external crate revs its algorithms.
//!
//! # Examples
//!
//! ```
//! use mrm_sim::event::EventQueue;
//! use mrm_sim::time::{SimDuration, SimTime};
//!
//! let mut q: EventQueue<&str> = EventQueue::new();
//! q.schedule(SimTime::ZERO + SimDuration::from_micros(3), "late");
//! q.schedule(SimTime::ZERO + SimDuration::from_micros(1), "early");
//! let (t, ev) = q.pop().unwrap();
//! assert_eq!(ev, "early");
//! assert_eq!(t.as_micros(), 1);
//! ```

pub mod dist;
pub mod event;
pub mod rng;
pub mod stats;
pub mod time;
pub mod trace;
pub mod units;

pub use dist::{Distribution, Empirical, Exponential, LogNormal, Zipf};
pub use event::{EventQueue, LegacyHeapQueue};
pub use rng::SimRng;
pub use stats::{LogHistogram, StreamingStats};
pub use time::{SimDuration, SimTime};

#[cfg(test)]
mod proptests;
