//! Streaming statistics: Welford moments, histograms, time-weighted averages.
//!
//! Simulations in this workspace run for billions of simulated events, so all
//! statistics are single-pass and constant-memory (histograms use fixed
//! logarithmic bucketing in the style of HDR histograms).

use serde::{Deserialize, Serialize};

use crate::time::{SimDuration, SimTime};

/// A sample was rejected by a checked recording path: non-finite (NaN or
/// ±∞), or negative where the collector requires non-negative values.
///
/// A single NaN folded into a Welford accumulator turns mean, variance,
/// min, and max all into NaN — and a merge then spreads the poison into
/// every downstream aggregate. The checked paths surface the rejection
/// instead.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InvalidSample;

impl std::fmt::Display for InvalidSample {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sample rejected: non-finite or out of range")
    }
}

impl std::error::Error for InvalidSample {}

/// Single-pass mean/variance/min/max accumulator (Welford's algorithm).
///
/// # Examples
///
/// ```
/// use mrm_sim::stats::StreamingStats;
///
/// let mut s = StreamingStats::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.record(x);
/// }
/// assert_eq!(s.count(), 8);
/// assert!((s.mean() - 5.0).abs() < 1e-12);
/// assert!((s.population_variance() - 4.0).abs() < 1e-12);
/// ```
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct StreamingStats {
    count: u64,
    mean: f64,
    m2: f64,
    // Absent until the first observation: the natural sentinels (±inf) are
    // not representable in JSON (they serialize as null and fail to
    // round-trip), so emptiness is explicit.
    min: Option<f64>,
    max: Option<f64>,
    sum: f64,
}

impl StreamingStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        StreamingStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: None,
            max: None,
            sum: 0.0,
        }
    }

    /// Records one observation. Non-finite values are silently ignored;
    /// use [`StreamingStats::try_record`] to observe the rejection.
    pub fn record(&mut self, x: f64) {
        let _ = self.try_record(x);
    }

    /// Records one observation, rejecting non-finite input with an error
    /// instead of poisoning the moments (see [`InvalidSample`]).
    pub fn try_record(&mut self, x: f64) -> Result<(), InvalidSample> {
        if !x.is_finite() {
            return Err(InvalidSample);
        }
        self.count += 1;
        self.sum += x;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = Some(self.min.map_or(x, |m| m.min(x)));
        self.max = Some(self.max.map_or(x, |m| m.max(x)));
        Ok(())
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Sample mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 if fewer than one observation).
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample variance with Bessel's correction (0 if fewer than two).
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Smallest observation (`+inf` if empty).
    pub fn min(&self) -> f64 {
        self.min.unwrap_or(f64::INFINITY)
    }

    /// Largest observation (`-inf` if empty).
    pub fn max(&self) -> f64 {
        self.max.unwrap_or(f64::NEG_INFINITY)
    }

    /// The accumulator's headline figures as one serializable struct, so
    /// telemetry snapshots and bench binaries don't hand-roll per-field
    /// extraction.
    pub fn summary(&self) -> StatsSummary {
        StatsSummary {
            count: self.count,
            mean: self.mean(),
            min: self.min,
            max: self.max,
            std_dev: self.std_dev(),
        }
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &StreamingStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.sum += other.sum;
        self.min = Some(self.min().min(other.min()));
        self.max = Some(self.max().max(other.max()));
    }
}

/// The headline figures of a [`StreamingStats`] accumulator, shaped for
/// serialization (see [`StreamingStats::summary`]).
///
/// `min`/`max` are `None` when no observation was recorded, mirroring the
/// accumulator's JSON-safe representation of emptiness.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct StatsSummary {
    /// Number of observations.
    pub count: u64,
    /// Sample mean (0 if empty).
    pub mean: f64,
    /// Smallest observation (`None` if empty).
    pub min: Option<f64>,
    /// Largest observation (`None` if empty).
    pub max: Option<f64>,
    /// Sample standard deviation (0 if fewer than two observations).
    pub std_dev: f64,
}

/// A log-scale histogram for positive values spanning many decades.
///
/// Values are bucketed by `log2` with `sub` sub-buckets per octave, giving a
/// bounded relative error of `2^(1/sub) - 1` on percentile queries. Suitable
/// for latencies (ns..hours) and endurance counts (1..1e18).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LogHistogram {
    /// `sub` buckets per power of two.
    sub: u32,
    /// Bucket counts, indexed by `octave * sub + sub_index`, octave offset 0
    /// corresponds to values in `[1, 2)`. Values below 1 go to bucket 0's
    /// underflow counter.
    counts: Vec<u64>,
    underflow: u64,
    total: u64,
    stats: StreamingStats,
}

impl LogHistogram {
    /// Maximum representable octave (`2^63`).
    const OCTAVES: u32 = 64;

    /// Creates a histogram with `sub` sub-buckets per octave.
    ///
    /// # Panics
    ///
    /// Panics if `sub` is zero or greater than 256.
    pub fn new(sub: u32) -> Self {
        assert!((1..=256).contains(&sub), "sub-bucket count out of range");
        LogHistogram {
            sub,
            counts: vec![0; (Self::OCTAVES * sub) as usize],
            underflow: 0,
            total: 0,
            stats: StreamingStats::new(),
        }
    }

    fn bucket_of(&self, x: f64) -> Option<usize> {
        if x < 1.0 {
            return None;
        }
        let lg = x.log2();
        let octave = lg.floor();
        let frac = lg - octave;
        let idx = octave as u32 * self.sub + (frac * f64::from(self.sub)) as u32;
        Some((idx as usize).min(self.counts.len() - 1))
    }

    /// Records one value. Non-finite or negative values are silently
    /// ignored; use [`LogHistogram::try_record`] to observe the rejection.
    pub fn record(&mut self, x: f64) {
        let _ = self.try_record(x);
    }

    /// Records one value, rejecting non-finite or negative input with an
    /// error instead of dropping it on the floor — a recovery-latency
    /// pipeline feeding NaN here is a bug worth surfacing, not averaging
    /// away (see [`InvalidSample`]).
    pub fn try_record(&mut self, x: f64) -> Result<(), InvalidSample> {
        if !x.is_finite() || x < 0.0 {
            return Err(InvalidSample);
        }
        self.total += 1;
        self.stats.record(x);
        match self.bucket_of(x) {
            Some(i) => self.counts[i] += 1,
            None => self.underflow += 1,
        }
        Ok(())
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Mean of recorded values.
    pub fn mean(&self) -> f64 {
        self.stats.mean()
    }

    /// Largest recorded value.
    pub fn max(&self) -> f64 {
        self.stats.max()
    }

    /// Smallest recorded value.
    pub fn min(&self) -> f64 {
        self.stats.min()
    }

    /// The value at percentile `p ∈ \[0, 100\]`, or `None` for an empty
    /// histogram — an empty percentile is "no data", not "zero
    /// milliseconds", and reporting 0 for it mislabels an idle system as
    /// an infinitely fast one (the same shape as the
    /// [`StreamingStats::min`]/[`StreamingStats::max`] `Option` fix).
    pub fn try_percentile(&self, p: f64) -> Option<f64> {
        (self.total > 0).then(|| self.percentile(p))
    }

    /// The value at percentile `p ∈ \[0, 100\]`, accurate to the bucket width.
    ///
    /// Returns 0 for an empty histogram; prefer
    /// [`LogHistogram::try_percentile`] anywhere "empty" and "zero" must
    /// not be conflated.
    pub fn percentile(&self, p: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let p = p.clamp(0.0, 100.0);
        let target = ((p / 100.0) * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = self.underflow;
        if seen >= target {
            return self.stats.min().max(0.0);
        }
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                // Geometric midpoint of the bucket.
                let octave = f64::from(i as u32 / self.sub);
                let subi = f64::from(i as u32 % self.sub);
                let lo = octave + subi / f64::from(self.sub);
                let hi = octave + (subi + 1.0) / f64::from(self.sub);
                return 2f64.powf(0.5 * (lo + hi));
            }
        }
        self.stats.max()
    }

    /// Summary of the recorded values (count/mean/min/max/stddev), see
    /// [`StreamingStats::summary`].
    pub fn summary(&self) -> StatsSummary {
        self.stats.summary()
    }

    /// Merges another histogram with identical bucketing.
    ///
    /// # Panics
    ///
    /// Panics if the sub-bucket counts differ.
    pub fn merge(&mut self, other: &LogHistogram) {
        assert_eq!(self.sub, other.sub, "histogram bucketing mismatch");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.underflow += other.underflow;
        self.total += other.total;
        self.stats.merge(&other.stats);
    }
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram::new(16)
    }
}

/// Time-weighted average of a piecewise-constant signal (e.g. queue depth,
/// power draw, occupied capacity).
#[derive(Clone, Debug)]
pub struct TimeWeighted {
    last_time: SimTime,
    last_value: f64,
    weighted_sum: f64,
    elapsed: SimDuration,
    max: f64,
}

impl TimeWeighted {
    /// Creates a tracker with initial value `v0` at time `t0`.
    pub fn new(t0: SimTime, v0: f64) -> Self {
        TimeWeighted {
            last_time: t0,
            last_value: v0,
            weighted_sum: 0.0,
            elapsed: SimDuration::ZERO,
            max: v0,
        }
    }

    /// Records that the signal changed to `v` at time `t`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `t` precedes the previous update.
    pub fn update(&mut self, t: SimTime, v: f64) {
        debug_assert!(t >= self.last_time, "time went backwards");
        let dt = t.duration_since(self.last_time);
        self.weighted_sum += self.last_value * dt.as_secs_f64();
        self.elapsed += dt;
        self.last_time = t;
        self.last_value = v;
        self.max = self.max.max(v);
    }

    /// The time-weighted average up to time `t` (the signal is assumed to
    /// have held its last value until `t`).
    pub fn average_at(&self, t: SimTime) -> f64 {
        let dt = t.duration_since(self.last_time);
        let total = self.elapsed + dt;
        if total.is_zero() {
            return self.last_value;
        }
        (self.weighted_sum + self.last_value * dt.as_secs_f64()) / total.as_secs_f64()
    }

    /// The current value of the signal.
    pub fn current(&self) -> f64 {
        self.last_value
    }

    /// The maximum value the signal has taken.
    pub fn max(&self) -> f64 {
        self.max
    }
}

/// A monotonically increasing named counter set, for cheap bulk accounting.
#[derive(Clone, Debug, Default, Serialize)]
pub struct Counters {
    entries: std::collections::BTreeMap<&'static str, u64>,
}

impl Counters {
    /// Creates an empty counter set.
    pub fn new() -> Self {
        Counters::default()
    }

    /// Adds `n` to counter `name`, creating it at zero if absent.
    pub fn add(&mut self, name: &'static str, n: u64) {
        *self.entries.entry(name).or_insert(0) += n;
    }

    /// Increments counter `name` by one.
    pub fn inc(&mut self, name: &'static str) {
        self.add(name, 1);
    }

    /// Reads counter `name` (0 if absent).
    pub fn get(&self, name: &str) -> u64 {
        self.entries.get(name).copied().unwrap_or(0)
    }

    /// Iterates `(name, value)` in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.entries.iter().map(|(k, v)| (*k, *v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_basics() {
        let mut s = StreamingStats::new();
        assert!(s.mean().abs() < f64::EPSILON);
        for x in 1..=100 {
            s.record(f64::from(x));
        }
        assert_eq!(s.count(), 100);
        assert!((s.mean() - 50.5).abs() < 1e-9);
        assert_eq!(s.min().to_bits(), 1.0f64.to_bits());
        assert_eq!(s.max().to_bits(), 100.0f64.to_bits());
        assert!((s.sample_variance() - 841.6666667).abs() < 1e-4);
    }

    #[test]
    fn welford_merge_equals_sequential() {
        let mut all = StreamingStats::new();
        let mut a = StreamingStats::new();
        let mut b = StreamingStats::new();
        for i in 0..1000 {
            let x = f64::from(i).sin() * 10.0 + 5.0;
            all.record(x);
            if i % 2 == 0 {
                a.record(x)
            } else {
                b.record(x)
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-9);
        assert!((a.sample_variance() - all.sample_variance()).abs() < 1e-9);
    }

    #[test]
    fn merge_with_empty() {
        let mut a = StreamingStats::new();
        let mut b = StreamingStats::new();
        b.record(3.0);
        a.merge(&b);
        assert_eq!(a.count(), 1);
        let empty = StreamingStats::new();
        a.merge(&empty);
        assert_eq!(a.count(), 1);
    }

    #[test]
    fn log_histogram_percentiles() {
        let mut h = LogHistogram::new(32);
        for x in 1..=10_000u64 {
            h.record(x as f64);
        }
        let p50 = h.percentile(50.0);
        let p99 = h.percentile(99.0);
        assert!((p50 / 5_000.0 - 1.0).abs() < 0.05, "p50 {p50}");
        assert!((p99 / 9_900.0 - 1.0).abs() < 0.05, "p99 {p99}");
        assert_eq!(h.count(), 10_000);
    }

    #[test]
    fn log_histogram_wide_dynamic_range() {
        let mut h = LogHistogram::new(16);
        // Endurance-style values spanning 15 decades.
        for exp in 0..=15 {
            h.record(10f64.powi(exp));
        }
        assert_eq!(h.count(), 16);
        let p100 = h.percentile(100.0);
        assert!(p100 > 5e14 && p100 < 2e15, "p100 {p100}");
    }

    #[test]
    fn log_histogram_ignores_garbage() {
        let mut h = LogHistogram::new(8);
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        h.record(-5.0);
        assert_eq!(h.count(), 0);
        h.record(0.5); // underflow bucket
        assert_eq!(h.count(), 1);
        assert_eq!(h.percentile(50.0).to_bits(), 0.5f64.to_bits());
    }

    #[test]
    fn log_histogram_merge() {
        let mut a = LogHistogram::new(16);
        let mut b = LogHistogram::new(16);
        for x in 1..=500u64 {
            a.record(x as f64);
        }
        for x in 501..=1000u64 {
            b.record(x as f64);
        }
        a.merge(&b);
        assert_eq!(a.count(), 1000);
        let p50 = a.percentile(50.0);
        assert!((p50 / 500.0 - 1.0).abs() < 0.1, "p50 {p50}");
    }

    #[test]
    fn time_weighted_average() {
        let t = SimTime::from_secs;
        let mut w = TimeWeighted::new(t(0), 0.0);
        w.update(t(10), 100.0); // 0 for 10 s
        w.update(t(20), 0.0); // 100 for 10 s
        let avg = w.average_at(t(20));
        assert!((avg - 50.0).abs() < 1e-9, "avg {avg}");
        assert_eq!(w.max().to_bits(), 100.0f64.to_bits());
        // Holding the last value extends the integral.
        let avg30 = w.average_at(t(40));
        assert!((avg30 - 25.0).abs() < 1e-9, "avg30 {avg30}");
    }

    #[test]
    fn time_weighted_empty_window() {
        let w = TimeWeighted::new(SimTime::from_secs(5), 7.0);
        assert_eq!(
            w.average_at(SimTime::from_secs(5)).to_bits(),
            7.0f64.to_bits()
        );
        assert_eq!(w.current().to_bits(), 7.0f64.to_bits());
    }

    #[test]
    fn empty_stats_round_trip_json() {
        // Regression: empty accumulators used to serialize their sentinel
        // min/max infinities, which JSON renders as null and which then
        // failed to deserialize back.
        let s = StreamingStats::new();
        let json = serde_json::to_string(&s).unwrap();
        assert!(!json.contains("inf"), "no non-finite leak: {json}");
        let mut back: StreamingStats = serde_json::from_str(&json).unwrap();
        assert_eq!(back.count(), 0);
        assert_eq!(back.min().to_bits(), f64::INFINITY.to_bits());
        assert_eq!(back.max().to_bits(), f64::NEG_INFINITY.to_bits());
        // A revived accumulator keeps working like a fresh one.
        back.record(2.0);
        assert_eq!(back.min().to_bits(), 2.0f64.to_bits());
        assert_eq!(back.max().to_bits(), 2.0f64.to_bits());
    }

    #[test]
    fn populated_stats_round_trip_json() {
        let mut s = StreamingStats::new();
        for x in [3.5, -1.25, 10.0] {
            s.record(x);
        }
        let back: StreamingStats =
            serde_json::from_str(&serde_json::to_string(&s).unwrap()).unwrap();
        assert_eq!(back.count(), 3);
        assert_eq!(back.min().to_bits(), (-1.25f64).to_bits());
        assert_eq!(back.max().to_bits(), 10.0f64.to_bits());
        assert!((back.mean() - s.mean()).abs() < 1e-12);
        assert!((back.sample_variance() - s.sample_variance()).abs() < 1e-12);
    }

    #[test]
    fn empty_histogram_round_trip_json() {
        // LogHistogram embeds StreamingStats, so an empty histogram hit the
        // same non-finite JSON problem.
        let h = LogHistogram::new(8);
        let json = serde_json::to_string(&h).unwrap();
        let back: LogHistogram = serde_json::from_str(&json).unwrap();
        assert_eq!(back.count(), 0);
        assert!(back.percentile(50.0).abs() < f64::EPSILON);
    }

    #[test]
    fn try_percentile_distinguishes_empty_from_zero() {
        let mut h = LogHistogram::new(8);
        assert_eq!(h.try_percentile(50.0), None);
        h.record(0.0);
        // A genuine zero-valued sample is Some(0-ish), not None.
        let p = h.try_percentile(50.0).unwrap();
        assert!(p >= 0.0);
        h.record(8.0);
        assert_eq!(h.try_percentile(99.0), Some(h.percentile(99.0)));
    }

    #[test]
    fn summary_round_trips_and_matches_accessors() {
        let mut s = StreamingStats::new();
        for x in [1.0, 2.0, 3.0, 4.0] {
            s.record(x);
        }
        let sum = s.summary();
        assert_eq!(sum.count, 4);
        assert_eq!(sum.min, Some(1.0));
        assert_eq!(sum.max, Some(4.0));
        assert!((sum.mean - s.mean()).abs() < 1e-12);
        assert!((sum.std_dev - s.std_dev()).abs() < 1e-12);
        let back: StatsSummary =
            serde_json::from_str(&serde_json::to_string(&sum).unwrap()).unwrap();
        assert_eq!(back, sum);
        // Empty summaries stay JSON-safe (no non-finite sentinels).
        let empty = StreamingStats::new().summary();
        assert_eq!(empty.count, 0);
        assert_eq!(empty.min, None);
        let json = serde_json::to_string(&empty).unwrap();
        assert!(!json.contains("inf"), "{json}");
        // A histogram's summary reflects its underlying accumulator.
        let mut h = LogHistogram::new(8);
        h.record(10.0);
        h.record(30.0);
        assert_eq!(h.summary().count, 2);
        assert_eq!(h.summary().min, Some(10.0));
        assert_eq!(h.summary().max, Some(30.0));
    }

    #[test]
    fn nan_sample_is_rejected_with_an_error() {
        let mut s = StreamingStats::new();
        s.record(10.0);
        assert_eq!(s.try_record(f64::NAN), Err(InvalidSample));
        assert_eq!(s.try_record(f64::INFINITY), Err(InvalidSample));
        assert_eq!(s.try_record(f64::NEG_INFINITY), Err(InvalidSample));
        // The rejection left the accumulator untouched and unpoisoned.
        assert_eq!(s.count(), 1);
        assert_eq!(s.mean().to_bits(), 10.0f64.to_bits());
        assert_eq!(s.min().to_bits(), 10.0f64.to_bits());
        // The unchecked path skips silently (back-compat).
        s.record(f64::NAN);
        assert_eq!(s.count(), 1);
        assert!(s.mean().is_finite());
        // The error is a real std error with a message.
        let msg = InvalidSample.to_string();
        assert!(msg.contains("rejected"), "{msg}");
    }

    #[test]
    fn nan_injection_does_not_poison_merged_percentiles() {
        // The ISSUE-5 regression scenario: a recovery-latency pipeline
        // produces one NaN sample on one shard; after the shards merge,
        // percentiles must still be finite and correct.
        let mut shard_a = LogHistogram::new(16);
        let mut shard_b = LogHistogram::new(16);
        for x in 1..=100u64 {
            shard_a.record(x as f64);
        }
        assert_eq!(shard_b.try_record(f64::NAN), Err(InvalidSample));
        assert_eq!(shard_b.try_record(-3.0), Err(InvalidSample));
        for x in 101..=200u64 {
            shard_b.record(x as f64);
        }
        shard_a.merge(&shard_b);
        assert_eq!(shard_a.count(), 200);
        let p50 = shard_a.percentile(50.0);
        assert!(p50.is_finite() && (p50 / 100.0 - 1.0).abs() < 0.1, "{p50}");
        assert!(shard_a.mean().is_finite());
        assert!(shard_a.summary().std_dev.is_finite());
    }

    #[test]
    fn counters() {
        let mut c = Counters::new();
        c.inc("reads");
        c.add("reads", 9);
        c.add("writes", 2);
        assert_eq!(c.get("reads"), 10);
        assert_eq!(c.get("writes"), 2);
        assert_eq!(c.get("absent"), 0);
        let names: Vec<_> = c.iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["reads", "writes"]);
    }
}
