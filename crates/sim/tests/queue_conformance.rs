//! Shared conformance suite for the two event-queue implementations.
//!
//! The calendar [`EventQueue`] and the retained [`LegacyHeapQueue`] oracle
//! promise the same contract: `(time, seq)` pop order with FIFO ties, a
//! clock that only advances on pop, and a `clear` that drops pending events
//! while the clock and the FIFO sequence counter survive. Every test here
//! runs against *both* implementations through one trait, so a contract
//! drift in either shows up as a named failure — and a seeded differential
//! replay drives random schedule/pop interleavings (same-instant bursts,
//! far-future overflow-ladder jumps) through both queues side by side.

use mrm_sim::event::{EventQueue, LegacyHeapQueue};
use mrm_sim::rng::SimRng;
use mrm_sim::time::{SimDuration, SimTime};

/// The common queue contract, implemented by both queues for the tests.
trait Queue<E>: Default {
    fn schedule(&mut self, at: SimTime, event: E);
    fn schedule_after(&mut self, delay: SimDuration, event: E);
    fn pop(&mut self) -> Option<(SimTime, E)>;
    fn peek_time(&self) -> Option<SimTime>;
    fn now(&self) -> SimTime;
    fn len(&self) -> usize;
    fn clear(&mut self);
}

macro_rules! impl_queue {
    ($ty:ident) => {
        impl<E> Queue<E> for $ty<E> {
            fn schedule(&mut self, at: SimTime, event: E) {
                $ty::schedule(self, at, event)
            }
            fn schedule_after(&mut self, delay: SimDuration, event: E) {
                $ty::schedule_after(self, delay, event)
            }
            fn pop(&mut self) -> Option<(SimTime, E)> {
                $ty::pop(self)
            }
            fn peek_time(&self) -> Option<SimTime> {
                $ty::peek_time(self)
            }
            fn now(&self) -> SimTime {
                $ty::now(self)
            }
            fn len(&self) -> usize {
                $ty::len(self)
            }
            fn clear(&mut self) {
                $ty::clear(self)
            }
        }
    };
}

impl_queue!(EventQueue);
impl_queue!(LegacyHeapQueue);

// ---------------------------------------------------------------------------
// clear contract (pinned for both implementations)
// ---------------------------------------------------------------------------

/// `clear` drops pending events but the clock survives: `now()` still
/// reports the last popped timestamp and post-clear scheduling is relative
/// to it.
fn clear_keeps_clock<Q: Queue<u32>>() {
    let mut q = Q::default();
    q.schedule(SimTime::from_secs(10), 1);
    q.schedule(SimTime::from_secs(20), 2);
    assert_eq!(q.pop().unwrap(), (SimTime::from_secs(10), 1));
    q.clear();
    assert_eq!(q.len(), 0);
    assert!(q.pop().is_none());
    assert_eq!(
        q.now(),
        SimTime::from_secs(10),
        "clear must not rewind time"
    );
    q.schedule_after(SimDuration::from_secs(5), 3);
    assert_eq!(q.pop().unwrap(), (SimTime::from_secs(15), 3));
}

/// `clear` preserves the FIFO sequence counter: events scheduled after a
/// clear tie-break *after* survivors of the same instant scheduled before
/// it would have — observable as plain FIFO order across the clear.
fn clear_keeps_seq_counter<Q: Queue<u32>>() {
    let mut q = Q::default();
    let t = SimTime::from_secs(1);
    q.schedule(t, 100);
    q.clear();
    // Same instant, scheduled after the clear: must pop in schedule order,
    // which requires the counter to have kept counting across the clear.
    q.schedule(t, 0);
    q.schedule(t, 1);
    q.schedule(t, 2);
    let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
    assert_eq!(order, vec![0, 1, 2]);
}

/// Scheduling and popping resumes cleanly after a clear mid-drain.
fn clear_mid_drain_then_reuse<Q: Queue<u64>>() {
    let mut q = Q::default();
    for i in 0..100u64 {
        q.schedule(SimTime::from_nanos(i * 3), i);
    }
    for _ in 0..50 {
        q.pop();
    }
    q.clear();
    assert!(q.peek_time().is_none());
    for i in 0..100u64 {
        q.schedule_after(SimDuration::from_nanos(i % 11), 1000 + i);
    }
    let mut last = q.now();
    let mut n = 0;
    while let Some((t, _)) = q.pop() {
        assert!(t >= last);
        last = t;
        n += 1;
    }
    assert_eq!(n, 100);
}

#[test]
fn clear_contract_calendar() {
    clear_keeps_clock::<EventQueue<u32>>();
    clear_keeps_seq_counter::<EventQueue<u32>>();
    clear_mid_drain_then_reuse::<EventQueue<u64>>();
}

#[test]
fn clear_contract_legacy_heap() {
    clear_keeps_clock::<LegacyHeapQueue<u32>>();
    clear_keeps_seq_counter::<LegacyHeapQueue<u32>>();
    clear_mid_drain_then_reuse::<LegacyHeapQueue<u64>>();
}

// ---------------------------------------------------------------------------
// seeded differential oracle
// ---------------------------------------------------------------------------

/// One differential step: both queues see the identical operation; every
/// observable (pop results, peeks, clocks, lengths) must agree.
fn differential_replay(seed: u64, ops: usize) {
    let mut rng = SimRng::seed_from(seed);
    let mut cal: EventQueue<u64> = EventQueue::new();
    let mut heap: LegacyHeapQueue<u64> = LegacyHeapQueue::new();
    let mut payload = 0u64;
    for step in 0..ops {
        assert_eq!(cal.peek_time(), heap.peek_time(), "seed {seed} step {step}");
        assert_eq!(cal.now(), heap.now(), "seed {seed} step {step}");
        assert_eq!(cal.len(), heap.len(), "seed {seed} step {step}");
        match rng.gen_range_u64(10) {
            // Near-future single event (dense steady-state pattern).
            0..=3 => {
                let d = SimDuration::from_nanos(rng.gen_range_u64(10_000));
                cal.schedule_after(d, payload);
                heap.schedule_after(d, payload);
                payload += 1;
            }
            // Same-instant FIFO burst.
            4 => {
                let d = SimDuration::from_nanos(rng.gen_range_u64(1_000));
                let burst = 2 + rng.gen_range_u64(14);
                for _ in 0..burst {
                    cal.schedule_after(d, payload);
                    heap.schedule_after(d, payload);
                    payload += 1;
                }
            }
            // Far-future event: lands in the calendar's overflow ladder
            // (hours-to-days beyond any density-derived window).
            5 => {
                let d = SimDuration::from_secs(60 + rng.gen_range_u64(180_000));
                cal.schedule_after(d, payload);
                heap.schedule_after(d, payload);
                payload += 1;
            }
            // Pop a few.
            6..=8 => {
                for _ in 0..=rng.gen_range_u64(4) {
                    let (a, b) = (cal.pop(), heap.pop());
                    assert_eq!(a, b, "seed {seed} step {step}: pop diverged");
                }
            }
            // Rare clear (the contract above keeps clocks aligned).
            _ => {
                if rng.gen_bool(0.05) {
                    cal.clear();
                    heap.clear();
                }
            }
        }
    }
    // Drain to the end: the tails must agree element for element.
    loop {
        let (a, b) = (cal.pop(), heap.pop());
        assert_eq!(a, b, "seed {seed}: drain diverged");
        if a.is_none() {
            break;
        }
    }
    assert_eq!(cal.now(), heap.now(), "seed {seed}: final clocks diverged");
}

#[test]
fn calendar_matches_heap_on_random_interleavings() {
    for seed in 0..8u64 {
        differential_replay(0xE0E0 + seed, 2_000);
    }
}

#[test]
fn calendar_matches_heap_on_long_dense_trace() {
    differential_replay(0xD1CE, 20_000);
}

/// Monotone-heavy trace: every pop reschedules into the near future, the
/// clock marches through many window rebuilds.
#[test]
fn calendar_matches_heap_under_sustained_advance() {
    let mut rng = SimRng::seed_from(42);
    let mut cal: EventQueue<u64> = EventQueue::new();
    let mut heap: LegacyHeapQueue<u64> = LegacyHeapQueue::new();
    for i in 0..256u64 {
        let t = SimTime::from_nanos(rng.gen_range_u64(1_000_000));
        cal.schedule(t, i);
        heap.schedule(t, i);
    }
    let mut payload = 256u64;
    for _ in 0..50_000 {
        let (a, b) = (cal.pop(), heap.pop());
        assert_eq!(a, b);
        let Some((t, _)) = a else { break };
        // Refresh-like reschedule plus an occasional expiry far ahead.
        let d = SimDuration::from_nanos(1 + rng.gen_range_u64(50_000));
        cal.schedule(t + d, payload);
        heap.schedule(t + d, payload);
        payload += 1;
        if rng.gen_bool(0.02) {
            let far = SimDuration::from_secs(600);
            cal.schedule(t + far, payload);
            heap.schedule(t + far, payload);
            payload += 1;
        }
        if rng.gen_bool(0.01) {
            // Same-instant burst at the current clock.
            for _ in 0..8 {
                cal.schedule(t, payload);
                heap.schedule(t, payload);
                payload += 1;
            }
        }
    }
    loop {
        let (a, b) = (cal.pop(), heap.pop());
        assert_eq!(a, b);
        if a.is_none() {
            break;
        }
    }
}

#[test]
fn clear_then_schedule_far_past_the_old_day_horizon() {
    // Regression (found by `mrm-fuzz queue`-shaped traces): `clear` keeps
    // the calendar's window placement while dropping its events, and the
    // very next schedule may land days past the old horizon. The rebuilt
    // window must re-center on the far-future event and still interleave
    // correctly with near events scheduled after it.
    let mut cal: EventQueue<u64> = EventQueue::new();
    let mut heap: LegacyHeapQueue<u64> = LegacyHeapQueue::new();
    let day = SimDuration::from_days(1);
    cal.schedule(SimTime::from_nanos(1_000), 0);
    heap.schedule(SimTime::from_nanos(1_000), 0);
    assert_eq!(cal.pop(), heap.pop());
    cal.clear();
    heap.clear();
    assert_eq!(cal.now(), heap.now(), "clock survives clear");
    let far = cal.now() + day * 3;
    cal.schedule(far, 1);
    heap.schedule(far, 1);
    cal.schedule_after(SimDuration::from_nanos(7), 2);
    heap.schedule_after(SimDuration::from_nanos(7), 2);
    cal.schedule(far + SimDuration::from_nanos(1), 3);
    heap.schedule(far + SimDuration::from_nanos(1), 3);
    for _ in 0..4 {
        assert_eq!(cal.pop(), heap.pop());
    }
    assert_eq!(cal.now(), heap.now());
}

#[test]
fn schedule_at_the_u64_horizon_terminates_and_drains() {
    // Regression: an event at exactly `SimTime::MAX` used to livelock the
    // calendar — the rebuilt window's horizon saturates at `u64::MAX`, so
    // a `t < horizon` placement test excluded the event forever and
    // `normalize` re-spilled it on every pass. Scheduling at the horizon
    // must terminate, order correctly against near events, and drain.
    let mut cal: EventQueue<u64> = EventQueue::new();
    let mut heap: LegacyHeapQueue<u64> = LegacyHeapQueue::new();
    cal.schedule(SimTime::from_nanos(1_000), 0);
    heap.schedule(SimTime::from_nanos(1_000), 0);
    assert_eq!(cal.pop(), heap.pop());
    cal.schedule(SimTime::MAX, 1);
    heap.schedule(SimTime::MAX, 1);
    cal.schedule_after(SimDuration::from_nanos(5), 2);
    heap.schedule_after(SimDuration::from_nanos(5), 2);
    cal.schedule(SimTime::MAX, 3);
    heap.schedule(SimTime::MAX, 3);
    assert_eq!(cal.peek_time(), heap.peek_time());
    loop {
        let (a, b) = (cal.pop(), heap.pop());
        assert_eq!(a, b);
        if a.is_none() {
            break;
        }
    }
    assert_eq!(cal.now(), SimTime::MAX, "clock lands on the horizon");
    assert_eq!(cal.now(), heap.now());
}

#[test]
fn clear_at_the_horizon_recovers_a_usable_queue() {
    // After draining to `SimTime::MAX` (or clearing events parked there),
    // the queue must remain schedulable at the clamped clock.
    let mut cal: EventQueue<u64> = EventQueue::new();
    let mut heap: LegacyHeapQueue<u64> = LegacyHeapQueue::new();
    cal.schedule(SimTime::MAX, 1);
    heap.schedule(SimTime::MAX, 1);
    cal.clear();
    heap.clear();
    assert_eq!(cal.len(), 0);
    cal.schedule(SimTime::MAX, 2);
    heap.schedule(SimTime::MAX, 2);
    assert_eq!(cal.pop(), heap.pop());
    assert_eq!(cal.pop(), heap.pop());
}
