//! `mrm-lint` CLI.
//!
//! ```text
//! cargo run -p mrm-lint                    # report, always exit 0
//! cargo run -p mrm-lint -- --deny          # CI gate: nonzero on violations
//! cargo run -p mrm-lint -- --format sarif  # SARIF 2.1.0 log on stdout
//! cargo run -p mrm-lint -- --explain D9
//! cargo run -p mrm-lint -- --dump-callgraph > callgraph.dot
//! cargo run -p mrm-lint -- --update-baseline
//! cargo run -p mrm-lint -- --rules
//! ```

use std::env;
use std::path::PathBuf;
use std::process::ExitCode;

use mrm_lint::baseline::Baseline;
use mrm_lint::rules::{RuleId, Severity};
use mrm_lint::{analyze_workspace, sarif, walk};

const USAGE: &str = "\
mrm-lint: workspace determinism & unit-safety auditor

USAGE: mrm-lint [OPTIONS]

OPTIONS:
  --deny               Exit nonzero when violations (or a stale baseline) remain
  --root <DIR>         Workspace root (default: nearest ancestor with [workspace])
  --baseline <FILE>    Baseline file (default: <root>/lint-baseline.txt)
  --update-baseline    Rewrite the baseline from the current D5 debt
                       (deletes the file when the debt is zero)
  --format <FMT>       Output format: text (default) or sarif (SARIF 2.1.0)
  --explain <RULE>     Print the extended explanation for one rule and exit
  --dump-callgraph     Print the sim-reachable call graph as DOT and exit
  --rules              Print the rule catalogue and exit
  -h, --help           Show this help

Suppression: `// mrm-lint: allow(RULE, ...) reason` on the offending line or
the line above; `// mrm-lint: allow-file(RULE) reason` anywhere in a file.
A reason is mandatory.";

enum Format {
    Text,
    Sarif,
}

struct Args {
    deny: bool,
    root: Option<PathBuf>,
    baseline: Option<PathBuf>,
    update_baseline: bool,
    rules: bool,
    format: Format,
    explain: Option<String>,
    dump_callgraph: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        deny: false,
        root: None,
        baseline: None,
        update_baseline: false,
        rules: false,
        format: Format::Text,
        explain: None,
        dump_callgraph: false,
    };
    let mut it = env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--deny" => args.deny = true,
            "--update-baseline" => args.update_baseline = true,
            "--rules" => args.rules = true,
            "--dump-callgraph" => args.dump_callgraph = true,
            "--root" => {
                args.root = Some(PathBuf::from(
                    it.next().ok_or("--root needs a directory argument")?,
                ))
            }
            "--baseline" => {
                args.baseline = Some(PathBuf::from(
                    it.next().ok_or("--baseline needs a file argument")?,
                ))
            }
            "--format" => {
                args.format = match it.next().as_deref() {
                    Some("text") => Format::Text,
                    Some("sarif") => Format::Sarif,
                    Some(other) => return Err(format!("unknown format `{other}` (text or sarif)")),
                    None => return Err("--format needs an argument (text or sarif)".to_string()),
                }
            }
            "--explain" => {
                args.explain = Some(it.next().ok_or("--explain needs a rule name (e.g. D9)")?)
            }
            "-h" | "--help" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("mrm-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if args.rules {
        for r in RuleId::ALL {
            let sev = match r.severity() {
                Severity::Error => "error",
                Severity::Warn => "warn ",
            };
            println!("{:4} [{sev}] {}", r.as_str(), r.describe());
        }
        return ExitCode::SUCCESS;
    }

    if let Some(name) = &args.explain {
        let rule = if name == "LINT" {
            Some(RuleId::Meta)
        } else {
            RuleId::parse(name)
        };
        return match rule {
            Some(r) => {
                println!("{}", r.explain());
                ExitCode::SUCCESS
            }
            None => {
                eprintln!("mrm-lint: unknown rule `{name}` (see --rules)");
                ExitCode::from(2)
            }
        };
    }

    let root = match args.root.or_else(|| {
        env::current_dir()
            .ok()
            .and_then(|d| walk::find_workspace_root(&d))
    }) {
        Some(r) => r,
        None => {
            eprintln!("mrm-lint: no workspace root found (pass --root)");
            return ExitCode::from(2);
        }
    };
    let baseline_path = args
        .baseline
        .unwrap_or_else(|| root.join("lint-baseline.txt"));

    let analysis = match analyze_workspace(&root) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("mrm-lint: walk failed: {e}");
            return ExitCode::from(2);
        }
    };

    if args.dump_callgraph {
        print!("{}", analysis.callgraph_dot());
        return ExitCode::SUCCESS;
    }
    let violations = analysis.violations;

    if args.update_baseline {
        let rendered = Baseline::render_from(&violations);
        let entries = rendered.lines().filter(|l| l.starts_with("D5 ")).count();
        if entries == 0 {
            // The backlog is gone: the baseline file's presence is optional
            // when empty, so remove it rather than leaving a husk behind.
            match std::fs::remove_file(&baseline_path) {
                Ok(()) => println!(
                    "mrm-lint: D5 debt is zero — removed {}",
                    baseline_path.display()
                ),
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                    println!("mrm-lint: D5 debt is zero — no baseline file needed")
                }
                Err(e) => {
                    eprintln!("mrm-lint: cannot remove {}: {e}", baseline_path.display());
                    return ExitCode::from(2);
                }
            }
        } else {
            if let Err(e) = std::fs::write(&baseline_path, &rendered) {
                eprintln!("mrm-lint: cannot write {}: {e}", baseline_path.display());
                return ExitCode::from(2);
            }
            println!(
                "mrm-lint: wrote {} ({entries} D5 entries)",
                baseline_path.display()
            );
        }
    }

    let baseline = match Baseline::load(&baseline_path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("mrm-lint: {e}");
            return ExitCode::from(2);
        }
    };
    let outcome = baseline.apply(violations);

    let mut kept = outcome.kept;
    kept.sort_by(|a, b| {
        (a.rule.severity(), &a.path, a.line, a.rule).cmp(&(
            b.rule.severity(),
            &b.path,
            b.line,
            b.rule,
        ))
    });

    match args.format {
        Format::Text => {
            for v in &kept {
                println!("{}", v.render());
            }
            for (file, allowed, actual) in &outcome.stale {
                println!(
                    "{file}: stale baseline: D5 allowance is {allowed} but only {actual} remain — \
                     run `cargo run -p mrm-lint -- --update-baseline` to tighten the ratchet"
                );
            }
            let errors = kept
                .iter()
                .filter(|v| v.rule.severity() == Severity::Error)
                .count();
            let warns = kept.len() - errors;
            println!(
                "mrm-lint: {} error(s), {} warning(s), {} baselined, {} stale baseline entr{}",
                errors,
                warns,
                outcome.suppressed,
                outcome.stale.len(),
                if outcome.stale.len() == 1 { "y" } else { "ies" }
            );
        }
        Format::Sarif => {
            // stdout carries pure JSON; human-facing notes go to stderr.
            print!("{}", sarif::render(&kept));
            for (file, allowed, actual) in &outcome.stale {
                eprintln!(
                    "{file}: stale baseline: D5 allowance is {allowed} but only {actual} remain"
                );
            }
        }
    }

    if args.deny && (!kept.is_empty() || !outcome.stale.is_empty()) {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
