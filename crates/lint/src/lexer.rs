//! A small hand-rolled Rust lexer.
//!
//! `mrm-lint` needs token-level structure — identifiers, literals, operators,
//! comments with line numbers — not a full parse. Rolling our own ~300-line
//! lexer keeps the crate dependency-free (the build environment has no
//! registry access; see `vendor/README.md`) and immune to its own inputs: a
//! lint that pulled in `syn` would stop compiling the day the workspace
//! adopts syntax `syn` cannot parse, while a token scan degrades gracefully.
//!
//! The lexer understands everything the rules need to be sound on this
//! workspace: line/block comments (nested), string/char/byte/raw-string
//! literals (so `"HashMap"` in a message is never confused with the type),
//! lifetimes vs char literals, numeric literals with underscores, radix
//! prefixes and type suffixes, and multi-character operators (`::`, `<<`,
//! `..=`, ...). Anything else passes through as single-character punctuation.

/// Lexical class of a token.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (raw identifiers `r#type` are unescaped).
    Ident,
    /// Lifetime such as `'a` (without the quote in `text`? no: includes it).
    Lifetime,
    /// Integer literal; `value` is `Some` when it fits `u128` after removing
    /// underscores, radix prefixes and type suffixes.
    Int { value: Option<u128> },
    /// Floating-point literal.
    Float,
    /// String, raw-string, byte-string or C-string literal. `text` is the
    /// *content* (delimiters stripped, escapes left as written).
    Str,
    /// Character or byte literal (content, delimiters stripped).
    Char,
    /// Operator or punctuation, possibly multi-character (`::`, `<<`, `->`).
    Punct,
    /// `// ...` comment (content after the slashes, including doc comments).
    LineComment,
    /// `/* ... */` comment (content between delimiters, nesting preserved).
    BlockComment,
}

/// One token with its source line (1-based).
#[derive(Clone, Debug)]
pub struct Token {
    pub kind: TokenKind,
    pub text: String,
    pub line: u32,
}

impl Token {
    /// True when this token is the identifier `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == name
    }

    /// True when this token is the punctuation `p`.
    pub fn is_punct(&self, p: &str) -> bool {
        self.kind == TokenKind::Punct && self.text == p
    }
}

/// Tokenizes `source`. The lexer is total: invalid input degrades to
/// single-character `Punct` tokens rather than failing, so a half-edited
/// file still gets linted.
pub fn lex(source: &str) -> Vec<Token> {
    Lexer {
        chars: source.chars().collect(),
        pos: 0,
        line: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    out: Vec<Token>,
}

/// Multi-character operators, longest first so greedy matching is correct.
const PUNCTS: [&str; 24] = [
    "..=", "...", "<<=", ">>=", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
    "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=", "..",
];

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied();
        if let Some(c) = c {
            self.pos += 1;
            if c == '\n' {
                self.line += 1;
            }
        }
        c
    }

    fn push(&mut self, kind: TokenKind, text: String, line: u32) {
        self.out.push(Token { kind, text, line });
    }

    fn run(mut self) -> Vec<Token> {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(line),
                '/' if self.peek(1) == Some('*') => self.block_comment(line),
                // Raw identifiers and raw strings: r#ident, r"..", r#".."#,
                // plus byte/C-string forms b".." br".." c"..".
                'r' | 'b' | 'c' if self.string_prefix() => {}
                c if c == '_' || c.is_alphabetic() => self.ident(line),
                c if c.is_ascii_digit() => self.number(line),
                '"' => {
                    self.bump();
                    self.string_body(0, line);
                }
                '\'' => self.lifetime_or_char(line),
                _ => self.punct(line),
            }
        }
        self.out
    }

    fn line_comment(&mut self, line: u32) {
        self.bump();
        self.bump();
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.push(TokenKind::LineComment, text, line);
    }

    fn block_comment(&mut self, line: u32) {
        self.bump();
        self.bump();
        let mut depth = 1u32;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                text.push_str("/*");
                self.bump();
                self.bump();
            } else if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                self.bump();
                self.bump();
                if depth == 0 {
                    break;
                }
                text.push_str("*/");
            } else {
                text.push(c);
                self.bump();
            }
        }
        self.push(TokenKind::BlockComment, text, line);
    }

    /// Handles `r#ident`, `r".."`, `r#".."#`, `b".."`, `br#".."#`, `b'x'`,
    /// `c".."`. Returns false (consuming nothing) when the `r`/`b`/`c` is
    /// just the start of an ordinary identifier.
    fn string_prefix(&mut self) -> bool {
        let line = self.line;
        let c0 = self.peek(0).unwrap_or(' ');
        // Longest prefixes first: br, cr (raw byte/C strings).
        let (skip, raw, quote) = match (c0, self.peek(1), self.peek(2)) {
            ('b', Some('r'), Some('"' | '#')) => (2, true, '"'),
            ('c', Some('r'), Some('"' | '#')) => (2, true, '"'),
            ('r', Some('"' | '#'), _) => (1, true, '"'),
            ('b' | 'c', Some('"'), _) => (1, false, '"'),
            ('b', Some('\''), _) => (1, false, '\''),
            _ => return false,
        };
        for _ in 0..skip {
            self.bump();
        }
        if raw {
            // Count hashes; `r#ident` (raw identifier) has no quote after them.
            let mut hashes = 0usize;
            while self.peek(hashes) == Some('#') {
                hashes += 1;
            }
            if self.peek(hashes) != Some('"') {
                // Raw identifier r#foo: consume hashes, lex as ident.
                for _ in 0..hashes {
                    self.bump();
                }
                self.ident(line);
                return true;
            }
            for _ in 0..=hashes {
                self.bump(); // hashes + opening quote
            }
            self.raw_string_body(hashes, line);
        } else if quote == '"' {
            self.bump();
            self.string_body(0, line);
        } else {
            self.bump();
            self.char_body(line);
        }
        true
    }

    fn string_body(&mut self, _hashes: usize, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.bump() {
            match c {
                '"' => break,
                '\\' => {
                    text.push('\\');
                    if let Some(e) = self.bump() {
                        text.push(e);
                    }
                }
                _ => text.push(c),
            }
        }
        self.push(TokenKind::Str, text, line);
    }

    fn raw_string_body(&mut self, hashes: usize, line: u32) {
        let mut text = String::new();
        'outer: while let Some(c) = self.bump() {
            if c == '"' {
                let mut matched = 0usize;
                while matched < hashes {
                    if self.peek(matched) == Some('#') {
                        matched += 1;
                    } else {
                        break;
                    }
                }
                if matched == hashes {
                    for _ in 0..hashes {
                        self.bump();
                    }
                    break 'outer;
                }
            }
            text.push(c);
        }
        self.push(TokenKind::Str, text, line);
    }

    fn char_body(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.bump() {
            match c {
                '\'' => break,
                '\\' => {
                    text.push('\\');
                    if let Some(e) = self.bump() {
                        text.push(e);
                    }
                }
                _ => text.push(c),
            }
        }
        self.push(TokenKind::Char, text, line);
    }

    fn lifetime_or_char(&mut self, line: u32) {
        // 'x' is a char; '\n' is a char; 'abc (no closing quote nearby with
        // ident chars) is a lifetime.
        let c1 = self.peek(1);
        let is_char = match c1 {
            Some('\\') => true,
            Some(c) if c == '_' || c.is_alphanumeric() => self.peek(2) == Some('\''),
            _ => true, // e.g. '(' — malformed; treat as char-ish and move on
        };
        self.bump(); // the opening quote
        if is_char {
            self.char_body(line);
        } else {
            let mut text = String::from("'");
            while let Some(c) = self.peek(0) {
                if c == '_' || c.is_alphanumeric() {
                    text.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
            self.push(TokenKind::Lifetime, text, line);
        }
    }

    fn ident(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '_' || c.is_alphanumeric() {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokenKind::Ident, text, line);
    }

    fn number(&mut self, line: u32) {
        let mut text = String::new();
        let mut is_float = false;
        // Radix prefix.
        let radix = if self.peek(0) == Some('0') {
            match self.peek(1) {
                Some('x' | 'X') => 16,
                Some('o' | 'O') => 8,
                Some('b' | 'B') => 2,
                _ => 10,
            }
        } else {
            10
        };
        if radix != 10 {
            text.push(self.bump().unwrap_or('0'));
            text.push(self.bump().unwrap_or('x'));
        }
        loop {
            match self.peek(0) {
                Some(c) if c.is_ascii_hexdigit() && radix == 16 => {
                    text.push(c);
                    self.bump();
                }
                Some(c) if c.is_ascii_digit() => {
                    text.push(c);
                    self.bump();
                }
                Some('_') => {
                    text.push('_');
                    self.bump();
                }
                // Decimal point: only if followed by a digit (so `1..10` and
                // `x.0.1` tuple chains stay punctuation) — `1.` at expression
                // end is rare enough to ignore.
                Some('.')
                    if radix == 10
                        && !is_float
                        && self.peek(1).is_some_and(|c| c.is_ascii_digit()) =>
                {
                    is_float = true;
                    text.push('.');
                    self.bump();
                }
                // Exponent.
                Some('e' | 'E')
                    if radix == 10
                        && self
                            .peek(1)
                            .is_some_and(|c| c.is_ascii_digit() || c == '+' || c == '-') =>
                {
                    is_float = true;
                    text.push('e');
                    self.bump();
                    if let Some(s) = self.peek(0) {
                        if s == '+' || s == '-' {
                            text.push(s);
                            self.bump();
                        }
                    }
                }
                // Type suffix (u64, f32, usize, ...).
                Some(c) if c.is_alphabetic() => {
                    if c == 'f' {
                        is_float = true;
                    }
                    while let Some(s) = self.peek(0) {
                        if s == '_' || s.is_alphanumeric() {
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    break;
                }
                _ => break,
            }
        }
        if is_float {
            self.push(TokenKind::Float, text, line);
        } else {
            let digits: String = text
                .chars()
                .filter(|c| *c != '_')
                .skip(if radix == 10 { 0 } else { 2 })
                .collect();
            let value = u128::from_str_radix(&digits, radix).ok();
            self.push(TokenKind::Int { value }, text, line);
        }
    }

    fn punct(&mut self, line: u32) {
        for p in PUNCTS {
            if p.len() > 1 && self.matches(p) {
                for _ in 0..p.len() {
                    self.bump();
                }
                self.push(TokenKind::Punct, p.to_string(), line);
                return;
            }
        }
        if let Some(c) = self.bump() {
            self.push(TokenKind::Punct, c.to_string(), line);
        }
    }

    fn matches(&self, p: &str) -> bool {
        p.chars().enumerate().all(|(i, c)| self.peek(i) == Some(c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_and_puncts() {
        let toks = kinds("use std::collections::BTreeMap;");
        assert_eq!(toks[0], (TokenKind::Ident, "use".into()));
        assert_eq!(toks[2], (TokenKind::Punct, "::".into()));
        assert_eq!(toks[5], (TokenKind::Ident, "BTreeMap".into()));
    }

    #[test]
    fn string_contents_are_not_idents() {
        let toks = kinds(r#"let s = "no HashMap here";"#);
        assert!(toks
            .iter()
            .all(|(k, t)| !(k == &TokenKind::Ident && t == "HashMap")));
        assert!(toks
            .iter()
            .any(|(k, t)| k == &TokenKind::Str && t.contains("HashMap")));
    }

    #[test]
    fn raw_strings_and_raw_idents() {
        let toks = kinds("let x = r#\"quote \" inside\"#; let r#type = 1;");
        assert!(toks
            .iter()
            .any(|(k, t)| k == &TokenKind::Str && t.contains("quote")));
        assert!(toks
            .iter()
            .any(|(k, t)| k == &TokenKind::Ident && t == "type"));
    }

    #[test]
    fn lifetimes_vs_chars() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        assert_eq!(
            toks.iter()
                .filter(|(k, _)| k == &TokenKind::Lifetime)
                .count(),
            2
        );
        assert_eq!(
            toks.iter().filter(|(k, _)| k == &TokenKind::Char).count(),
            2
        );
    }

    #[test]
    fn numbers_parse_values() {
        let toks = lex("1_000 0x1F 0b101 2e9 1.5 30u64");
        assert_eq!(toks[0].kind, TokenKind::Int { value: Some(1000) });
        assert_eq!(toks[1].kind, TokenKind::Int { value: Some(31) });
        assert_eq!(toks[2].kind, TokenKind::Int { value: Some(5) });
        assert_eq!(toks[3].kind, TokenKind::Float);
        assert_eq!(toks[4].kind, TokenKind::Float);
        assert_eq!(toks[5].kind, TokenKind::Int { value: Some(30) });
    }

    #[test]
    fn shift_sequence_survives() {
        let toks = lex("let g = 1u64 << 30;");
        let shift = toks
            .iter()
            .position(|t| t.is_punct("<<"))
            .expect("<< token");
        assert_eq!(toks[shift - 1].kind, TokenKind::Int { value: Some(1) });
        assert_eq!(toks[shift + 1].kind, TokenKind::Int { value: Some(30) });
    }

    #[test]
    fn nested_block_comments() {
        let toks = kinds("/* outer /* inner */ tail */ x");
        assert_eq!(toks.len(), 2);
        assert!(toks[0].1.contains("inner"));
        assert_eq!(toks[1], (TokenKind::Ident, "x".into()));
    }

    #[test]
    fn ranges_are_not_floats() {
        let toks = lex("for i in 1..10 {}");
        assert_eq!(toks[3].kind, TokenKind::Int { value: Some(1) });
        assert!(toks[4].is_punct(".."));
        assert_eq!(toks[5].kind, TokenKind::Int { value: Some(10) });
    }

    #[test]
    fn line_numbers_track_newlines() {
        let toks = lex("a\nb\n\"s1\ns2\"\nc");
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2);
        assert_eq!(toks[2].line, 3); // string starts on line 3
        assert_eq!(toks[3].line, 5); // newline inside the string counted
    }
}
