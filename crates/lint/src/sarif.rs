//! SARIF 2.1.0 output, hand-rolled (the lint crate is dependency-free by
//! design, so no serde).
//!
//! The shape follows the subset CI and code-review UIs actually consume:
//! `runs[0].tool.driver.rules` carries the catalogue (short description,
//! full description, long-form help from [`RuleId::explain`]), each result
//! carries a physical location, and multi-site diagnostics (D9 chains, U2
//! declaration sites) are emitted both as `relatedLocations` and — for D9,
//! whose `related` list is an ordered path — as a `codeFlows` thread flow,
//! which viewers render as a step-through of the call chain.

use crate::rules::{RuleId, Severity, Violation};

/// JSON string escaping per RFC 8259.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn location(path: &str, line: u32, message: Option<&str>) -> String {
    let msg = message
        .map(|m| format!(r#""message":{{"text":"{}"}},"#, esc(m)))
        .unwrap_or_default();
    format!(
        r#"{{{msg}"physicalLocation":{{"artifactLocation":{{"uri":"{}"}},"region":{{"startLine":{line}}}}}}}"#,
        esc(path)
    )
}

/// All rules that can appear in results, in catalogue order.
fn catalogue() -> Vec<RuleId> {
    let mut rules = RuleId::ALL.to_vec();
    rules.push(RuleId::Meta);
    rules
}

/// Renders one run's surviving violations as a SARIF 2.1.0 log.
pub fn render(violations: &[Violation]) -> String {
    let rules = catalogue();
    let rule_entries: Vec<String> = rules
        .iter()
        .map(|r| {
            let level = match r.severity() {
                Severity::Error => "error",
                Severity::Warn => "warning",
            };
            format!(
                r#"{{"id":"{}","shortDescription":{{"text":"{}"}},"help":{{"text":"{}"}},"defaultConfiguration":{{"level":"{level}"}}}}"#,
                r.as_str(),
                esc(r.describe()),
                esc(r.explain()),
            )
        })
        .collect();

    let results: Vec<String> = violations
        .iter()
        .map(|v| {
            let rule_index = rules
                .iter()
                .position(|r| *r == v.rule)
                .expect("catalogue covers every rule");
            let level = match v.rule.severity() {
                Severity::Error => "error",
                Severity::Warn => "warning",
            };
            let mut extra = String::new();
            if !v.related.is_empty() {
                let rel: Vec<String> = v
                    .related
                    .iter()
                    .map(|r| location(&r.path, r.line, Some(&r.note)))
                    .collect();
                extra.push_str(&format!(r#","relatedLocations":[{}]"#, rel.join(",")));
            }
            if v.rule == RuleId::D9 && !v.related.is_empty() {
                // The chain as a thread flow: anchor first, then each hop.
                let mut steps = vec![format!(
                    r#"{{"location":{}}}"#,
                    location(&v.path, v.line, Some("sim entry commits to the chain here"))
                )];
                steps.extend(v.related.iter().map(|r| {
                    format!(r#"{{"location":{}}}"#, location(&r.path, r.line, Some(&r.note)))
                }));
                extra.push_str(&format!(
                    r#","codeFlows":[{{"threadFlows":[{{"locations":[{}]}}]}}]"#,
                    steps.join(",")
                ));
            }
            format!(
                r#"{{"ruleId":"{}","ruleIndex":{rule_index},"level":"{level}","message":{{"text":"{}"}},"locations":[{}]{extra}}}"#,
                v.rule.as_str(),
                esc(&v.message),
                location(&v.path, v.line, None),
            )
        })
        .collect();

    format!(
        "{{\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\",\
         \"version\":\"2.1.0\",\
         \"runs\":[{{\"tool\":{{\"driver\":{{\
         \"name\":\"mrm-lint\",\
         \"version\":\"{}\",\
         \"informationUri\":\"https://example.invalid/mrm-lint\",\
         \"rules\":[{}]}}}},\
         \"results\":[{}]}}]}}\n",
        env!("CARGO_PKG_VERSION"),
        rule_entries.join(","),
        results.join(","),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::RelatedSite;

    fn v(rule: RuleId, related: Vec<RelatedSite>) -> Violation {
        Violation {
            rule,
            path: "crates/sim/src/lib.rs".into(),
            line: 7,
            message: "a \"quoted\" message\nwith a newline".into(),
            related,
        }
    }

    #[test]
    fn renders_schema_version_and_rules() {
        let s = render(&[]);
        assert!(s.contains("sarif-2.1.0.json"));
        assert!(s.contains(r#""version":"2.1.0""#));
        for r in RuleId::ALL {
            assert!(
                s.contains(&format!(r#""id":"{}""#, r.as_str())),
                "{}",
                r.as_str()
            );
        }
        assert!(s.contains(r#""id":"LINT""#));
    }

    #[test]
    fn escapes_messages_and_emits_locations() {
        let s = render(&[v(RuleId::D2, Vec::new())]);
        assert!(s.contains(r#"a \"quoted\" message\nwith a newline"#));
        assert!(s.contains(r#""uri":"crates/sim/src/lib.rs""#));
        assert!(s.contains(r#""startLine":7"#));
        assert!(!s.contains("codeFlows"), "no chain, no flow");
    }

    #[test]
    fn d9_chains_become_code_flows() {
        let related = vec![
            RelatedSite {
                path: "crates/util/src/lib.rs".into(),
                line: 3,
                note: "reached via call `helper` at line 9".into(),
            },
            RelatedSite {
                path: "crates/util/src/lib.rs".into(),
                line: 4,
                note: "wall-clock time via `Instant` here".into(),
            },
        ];
        let s = render(&[v(RuleId::D9, related)]);
        assert!(s.contains("relatedLocations"));
        assert!(s.contains("codeFlows"));
        assert!(s.contains("threadFlows"));
    }

    #[test]
    fn d5_is_warning_level() {
        let s = render(&[v(RuleId::D5, Vec::new())]);
        assert!(s.contains(r#""ruleId":"D5","ruleIndex":4,"level":"warning""#));
    }
}
