//! # `mrm-lint` — workspace determinism & unit-safety auditor
//!
//! The paper's quantitative claims are reproducible only because every
//! simulation in this workspace is bit-identical for a given seed at any
//! thread count. That contract (DESIGN.md §3.8) was previously enforced
//! only by runtime golden tests — `sweep_determinism.rs`,
//! `telemetry_determinism.rs` — which catch a violation long after it is
//! introduced. `mrm-lint` moves the check to the source level: a
//! dependency-free token scan over the workspace that names each invariant
//! as a severity-ranked rule, and fails CI the moment one is broken.
//!
//! Two layers of analysis (DESIGN.md §6):
//!
//! * **Lexical** (D1–D8, U1): per-line token scans, path-gated by
//!   [`rules::FileCtx`].
//! * **Interprocedural** (D9, D10, U2): an item parser ([`parse`]) feeds a
//!   workspace symbol table ([`symbols`]) and call graph ([`callgraph`]);
//!   [`dataflow`] then walks reachability from sim entry points (D9), runs
//!   a per-function RNG-taint pass (D10), and propagates unit-suffix
//!   dimensions through bindings and call boundaries (U2).
//!
//! See [`rules`] for the catalogue, [`baseline`] for the D5 adoption
//! ratchet, [`sarif`] for the SARIF 2.1.0 reporter, and the `mrm-lint`
//! binary for the CLI.
//!
//! ```
//! use mrm_lint::rules::{lint_source, FileCtx, RuleId};
//!
//! let ctx = FileCtx::classify("crates/tiering/src/prefix.rs");
//! let report = lint_source("use std::collections::HashMap;", &ctx);
//! assert_eq!(report.violations[0].rule, RuleId::D2);
//! ```

pub mod baseline;
pub mod callgraph;
pub mod dataflow;
pub mod lexer;
pub mod parse;
pub mod rules;
pub mod sarif;
pub mod symbols;
pub mod walk;

use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::io;
use std::path::Path;

use callgraph::CallGraph;
use rules::{scan_lexical, FileCtx, Violation};
use symbols::{FileEntry, SymbolTable};

/// The full result of analyzing a workspace: the merged diagnostics plus
/// the symbol table and call graph they were computed on (kept for
/// `--dump-callgraph` and the tests' oracles).
pub struct WorkspaceAnalysis {
    /// All violations, sorted by (path, line, rule), suppression applied.
    pub violations: Vec<Violation>,
    pub table: SymbolTable,
    pub graph: CallGraph,
}

impl WorkspaceAnalysis {
    /// DOT export of the sim-reachable subgraph (entry points render as
    /// boxes), for `--dump-callgraph` and DESIGN.md.
    pub fn callgraph_dot(&self) -> String {
        let entries = dataflow::entry_points(&self.table);
        let parent = self.graph.reachable_from(&entries);
        let keep: BTreeSet<symbols::FnId> = parent.keys().copied().collect();
        self.graph.to_dot(&self.table, &keep, &entries)
    }
}

/// Analyzes every auditable source file under `root`: lexical rules per
/// file, then the workspace-wide interprocedural pass.
///
/// The lexical layer runs in two passes: the first discovers
/// `#[cfg(test)] mod x;` declarations so the out-of-line module files they
/// point at (e.g. `crates/sim/src/proptests.rs`) are re-linted as test
/// code, where D5 does not apply. The same downgraded context feeds the
/// symbol table, so test-only modules contribute no callable definitions
/// either.
pub fn analyze_workspace(root: &Path) -> io::Result<WorkspaceAnalysis> {
    let files = walk::workspace_sources(root)?;
    let mut sources = Vec::with_capacity(files.len());
    let mut test_only_files: Vec<String> = Vec::new();
    for rel in &files {
        let source = fs::read_to_string(root.join(rel))?;
        let scan = scan_lexical(&source, &FileCtx::classify(rel));
        for m in &scan.test_only_modules {
            test_only_files.extend(test_module_candidates(rel, m));
        }
        sources.push((rel.clone(), source));
    }

    // Second pass with the effective (possibly downgraded) context, feeding
    // both the lexical scans and the symbol table.
    let mut scans = Vec::with_capacity(sources.len());
    let mut entries = Vec::with_capacity(sources.len());
    for (rel, source) in &sources {
        let mut ctx = FileCtx::classify(rel);
        if test_only_files.contains(rel) {
            ctx.library = false;
        }
        scans.push(scan_lexical(source, &ctx));
        entries.push(FileEntry {
            parsed: parse::parse_file(source),
            ctx,
        });
    }

    let table = SymbolTable::build(entries);
    let graph = CallGraph::build(&table);

    // Interprocedural findings, routed to their anchor file's suppression
    // state (an `allow(D9)` sits at the chain's first call site, etc.).
    let mut inter: BTreeMap<String, Vec<Violation>> = BTreeMap::new();
    let mut route = |vs: Vec<Violation>| {
        for v in vs {
            inter.entry(v.path.clone()).or_default().push(v);
        }
    };
    for file_idx in 0..table.files.len() {
        route(dataflow::analyze_file(&table, file_idx));
    }
    route(dataflow::analyze_d9(&table, &graph));

    let mut violations = Vec::new();
    for ((rel, _), mut scan) in sources.iter().zip(scans) {
        if let Some(vs) = inter.remove(rel.as_str()) {
            scan.raw.extend(vs);
        }
        violations.extend(scan.finish());
    }
    // Findings whose anchor fell outside the walked set (cannot happen for
    // well-formed tables, but never silently drop a diagnostic).
    for (_, vs) in inter {
        violations.extend(vs);
    }
    violations.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    Ok(WorkspaceAnalysis {
        violations,
        table,
        graph,
    })
}

/// Lints every auditable source file under `root`. Convenience wrapper
/// around [`analyze_workspace`] for callers that only need diagnostics.
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Violation>> {
    Ok(analyze_workspace(root)?.violations)
}

/// Paths (repo-relative) where `mod name;` declared in `decl_file` may live.
fn test_module_candidates(decl_file: &str, name: &str) -> Vec<String> {
    let (dir, stem) = match decl_file.rsplit_once('/') {
        Some((d, f)) => (d, f.trim_end_matches(".rs")),
        None => ("", decl_file.trim_end_matches(".rs")),
    };
    let base = if matches!(stem, "lib" | "mod" | "main") {
        dir.to_string()
    } else {
        format!("{dir}/{stem}")
    };
    vec![format!("{base}/{name}.rs"), format!("{base}/{name}/mod.rs")]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn module_candidates_resolve_siblings_and_subdirs() {
        assert_eq!(
            test_module_candidates("crates/sim/src/lib.rs", "proptests"),
            vec![
                "crates/sim/src/proptests.rs".to_string(),
                "crates/sim/src/proptests/mod.rs".to_string()
            ]
        );
        assert_eq!(
            test_module_candidates("crates/x/src/foo.rs", "inner"),
            vec![
                "crates/x/src/foo/inner.rs".to_string(),
                "crates/x/src/foo/inner/mod.rs".to_string()
            ]
        );
    }
}
