//! # `mrm-lint` — workspace determinism & unit-safety auditor
//!
//! The paper's quantitative claims are reproducible only because every
//! simulation in this workspace is bit-identical for a given seed at any
//! thread count. That contract (DESIGN.md §3.8) was previously enforced
//! only by runtime golden tests — `sweep_determinism.rs`,
//! `telemetry_determinism.rs` — which catch a violation long after it is
//! introduced. `mrm-lint` moves the check to the source level: a
//! dependency-free token scan over the workspace that names each invariant
//! as a severity-ranked rule (D1–D5, U1) and fails CI the moment one is
//! broken.
//!
//! See [`rules`] for the rule catalogue, [`baseline`] for the incremental
//! adoption ratchet, and the `mrm-lint` binary for the CLI.
//!
//! ```
//! use mrm_lint::rules::{lint_source, FileCtx, RuleId};
//!
//! let ctx = FileCtx::classify("crates/tiering/src/prefix.rs");
//! let report = lint_source("use std::collections::HashMap;", &ctx);
//! assert_eq!(report.violations[0].rule, RuleId::D2);
//! ```

pub mod baseline;
pub mod lexer;
pub mod rules;
pub mod walk;

use std::fs;
use std::io;
use std::path::Path;

use rules::{lint_source, FileCtx, Violation};

/// Lints every auditable source file under `root`.
///
/// Runs in two passes: the first discovers `#[cfg(test)] mod x;`
/// declarations so the out-of-line module files they point at (e.g.
/// `crates/sim/src/proptests.rs`) are re-linted as test code, where D5 does
/// not apply. Violations come back sorted by path then line.
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Violation>> {
    let files = walk::workspace_sources(root)?;
    let mut reports = Vec::with_capacity(files.len());
    let mut test_only_files: Vec<String> = Vec::new();
    for rel in &files {
        let source = fs::read_to_string(root.join(rel))?;
        let ctx = FileCtx::classify(rel);
        let report = lint_source(&source, &ctx);
        for m in &report.test_only_modules {
            test_only_files.extend(test_module_candidates(rel, m));
        }
        reports.push((rel.clone(), source, report));
    }
    let mut violations = Vec::new();
    for (rel, source, report) in reports {
        if test_only_files.contains(&rel) {
            let mut ctx = FileCtx::classify(&rel);
            if ctx.library {
                ctx.library = false;
                violations.extend(lint_source(&source, &ctx).violations);
                continue;
            }
        }
        violations.extend(report.violations);
    }
    violations.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    Ok(violations)
}

/// Paths (repo-relative) where `mod name;` declared in `decl_file` may live.
fn test_module_candidates(decl_file: &str, name: &str) -> Vec<String> {
    let (dir, stem) = match decl_file.rsplit_once('/') {
        Some((d, f)) => (d, f.trim_end_matches(".rs")),
        None => ("", decl_file.trim_end_matches(".rs")),
    };
    let base = if matches!(stem, "lib" | "mod" | "main") {
        dir.to_string()
    } else {
        format!("{dir}/{stem}")
    };
    vec![format!("{base}/{name}.rs"), format!("{base}/{name}/mod.rs")]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn module_candidates_resolve_siblings_and_subdirs() {
        assert_eq!(
            test_module_candidates("crates/sim/src/lib.rs", "proptests"),
            vec![
                "crates/sim/src/proptests.rs".to_string(),
                "crates/sim/src/proptests/mod.rs".to_string()
            ]
        );
        assert_eq!(
            test_module_candidates("crates/x/src/foo.rs", "inner"),
            vec![
                "crates/x/src/foo/inner.rs".to_string(),
                "crates/x/src/foo/inner/mod.rs".to_string()
            ]
        );
    }
}
