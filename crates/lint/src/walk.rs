//! Deterministic workspace walk.
//!
//! Collects the `.rs` files the lint audits: everything under `crates/`,
//! `src/`, `tests/`, `benches/` and `examples/` at the workspace root,
//! skipping `vendor/` (offline stand-ins for external crates are not held to
//! workspace invariants), `target/` (build output), `fixtures/` (the lint's
//! own violation corpora must not fail the lint), and VCS metadata. Files
//! come back sorted so diagnostics and the baseline are stable across runs
//! and machines.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Directory names never descended into.
const SKIP_DIRS: [&str; 5] = ["target", "vendor", "fixtures", ".git", "node_modules"];

/// Top-level entries under the root that contain auditable sources.
const ROOTS: [&str; 5] = ["crates", "src", "tests", "benches", "examples"];

/// Returns repo-relative (forward-slash) paths of every auditable `.rs`
/// file under `root`, sorted.
pub fn workspace_sources(root: &Path) -> io::Result<Vec<String>> {
    let mut out = Vec::new();
    for top in ROOTS {
        let dir = root.join(top);
        if dir.is_dir() {
            collect(&dir, &mut out)?;
        }
    }
    let mut rel: Vec<String> = out
        .iter()
        .filter_map(|p| p.strip_prefix(root).ok())
        .map(|p| {
            p.components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/")
        })
        .collect();
    rel.sort();
    Ok(rel)
}

fn collect(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            let name = path
                .file_name()
                .map(|n| n.to_string_lossy().to_string())
                .unwrap_or_default();
            if SKIP_DIRS.contains(&name.as_str()) {
                continue;
            }
            collect(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Finds the workspace root: the nearest ancestor of `start` containing a
/// `Cargo.toml` that declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn walk_skips_vendor_target_fixtures() {
        let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
            .expect("lint crate lives inside the workspace");
        let files = workspace_sources(&root).expect("workspace is readable");
        assert!(!files.is_empty());
        assert!(files.iter().all(|f| !f.starts_with("vendor/")));
        assert!(files.iter().all(|f| !f.contains("/target/")));
        assert!(files.iter().all(|f| !f.contains("/fixtures/")));
        assert!(files.iter().any(|f| f == "crates/sim/src/units.rs"));
        let mut sorted = files.clone();
        sorted.sort();
        assert_eq!(files, sorted, "walk order is deterministic");
    }
}
