//! A lightweight item parser on top of the lexer.
//!
//! The interprocedural rules (D9/D10/U2) need more structure than a token
//! scan: which functions a file defines, what `impl`/`mod` they sit in,
//! their parameter names, where their bodies start and end, and what the
//! file's `use` declarations resolve a bare name to. This module recovers
//! exactly that — nothing more. It is *not* a Rust parser: expressions stay
//! flat token runs, types are never interpreted beyond their identifiers,
//! and anything the scanner does not recognize is skipped. Like the lexer,
//! parsing is total: a half-edited file degrades to fewer recognized items,
//! never to a panic.
//!
//! Known limits (documented in DESIGN.md §6.2): nested functions are
//! recorded as their own items but their tokens also remain inside the
//! enclosing body (transitively sound for reachability, imprecise for
//! attribution); macro-generated items are invisible; `<T as Trait>::`
//! qualified paths are not resolved.

use crate::lexer::{lex, Token, TokenKind};
use crate::rules::{matching, test_regions};

/// One parameter of a function item. Only the binding name matters to the
/// analyses (U2 reads the unit suffix; call checks count positions).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Param {
    pub name: String,
}

/// One `fn` item (free function, inherent/trait method, or nested fn).
#[derive(Clone, Debug)]
pub struct FnItem {
    /// Bare name, e.g. `run`.
    pub name: String,
    /// The `impl`/`trait` self type this fn is a method of, if any.
    pub self_ty: Option<String>,
    /// Inline `mod` path within the file (out-of-line modules are separate
    /// files and carry their path in the file path itself).
    pub module: Vec<String>,
    /// 1-based source line of the `fn` keyword.
    pub line: u32,
    /// Parameters in declaration order (`self` included for methods).
    pub params: Vec<Param>,
    /// Code-token index range of the body *including* both braces; empty
    /// for bodyless trait-method declarations.
    pub body: std::ops::Range<usize>,
    /// True when the fn sits inside a `#[cfg(test)]` region or carries
    /// `#[test]`.
    pub is_test: bool,
}

impl FnItem {
    /// `Type::name` for methods, bare `name` for free functions.
    pub fn qual(&self) -> String {
        match &self.self_ty {
            Some(ty) => format!("{ty}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// One resolved `use` binding: `local` names `path` in this file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UseDecl {
    /// The name the file refers to (`*` for glob imports).
    pub local: String,
    /// Full path segments, e.g. `["mrm_core", "pool", "Pool"]`.
    pub path: Vec<String>,
}

/// Everything the parser recovered from one file.
#[derive(Clone, Debug, Default)]
pub struct ParsedFile {
    /// Code tokens (comments stripped) the `body` ranges index into.
    pub code: Vec<Token>,
    pub fns: Vec<FnItem>,
    pub uses: Vec<UseDecl>,
}

/// Parses one file's source. Never fails; unrecognized constructs are
/// skipped.
pub fn parse_file(source: &str) -> ParsedFile {
    let tokens = lex(source);
    let code: Vec<Token> = tokens
        .into_iter()
        .filter(|t| !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment))
        .collect();
    let refs: Vec<&Token> = code.iter().collect();
    let (in_test, _) = test_regions(&refs);
    let mut p = Parser {
        code: &refs,
        in_test: &in_test,
        fns: Vec::new(),
        uses: Vec::new(),
    };
    p.run();
    ParsedFile {
        fns: p.fns,
        uses: p.uses,
        code,
    }
}

/// An enclosing scope the scanner is currently inside, with the index of
/// its closing brace.
struct Scope {
    kind: ScopeKind,
    close: usize,
}

enum ScopeKind {
    Mod(String),
    Impl(String),
}

struct Parser<'a> {
    code: &'a [&'a Token],
    in_test: &'a [bool],
    fns: Vec<FnItem>,
    uses: Vec<UseDecl>,
}

impl<'a> Parser<'a> {
    fn run(&mut self) {
        let mut stack: Vec<Scope> = Vec::new();
        let mut i = 0usize;
        while i < self.code.len() {
            while stack.last().is_some_and(|s| s.close <= i) {
                stack.pop();
            }
            let t = self.code[i];
            if t.kind != TokenKind::Ident {
                i += 1;
                continue;
            }
            match t.text.as_str() {
                "mod" => {
                    // `mod name { ... }` contributes a path segment;
                    // `mod name;` is an out-of-line declaration — skip.
                    let name = self.code.get(i + 1).filter(|n| n.kind == TokenKind::Ident);
                    if let (Some(name), Some(open)) = (name, self.punct_at(i + 2, "{")) {
                        if let Some(close) = matching(self.code, open, "{", "}") {
                            stack.push(Scope {
                                kind: ScopeKind::Mod(name.text.clone()),
                                close,
                            });
                        }
                        i = open + 1;
                    } else {
                        i += 1;
                    }
                }
                "impl" | "trait" => {
                    let (self_ty, open) = self.impl_header(i);
                    match (self_ty, open) {
                        (Some(ty), Some(open)) => {
                            if let Some(close) = matching(self.code, open, "{", "}") {
                                stack.push(Scope {
                                    kind: ScopeKind::Impl(ty),
                                    close,
                                });
                            }
                            i = open + 1;
                        }
                        _ => i += 1,
                    }
                }
                "use" => {
                    i = self.use_decl(i);
                }
                "fn" => {
                    i = self.fn_item(i, &stack);
                }
                _ => i += 1,
            }
        }
    }

    fn punct_at(&self, idx: usize, p: &str) -> Option<usize> {
        self.code.get(idx).filter(|t| t.is_punct(p)).map(|_| idx)
    }

    /// Parses an `impl`/`trait` header starting at the keyword. Returns the
    /// self-type name (last path segment before the generics/brace; the type
    /// after `for` when present) and the body's opening-brace index.
    fn impl_header(&self, kw: usize) -> (Option<String>, Option<usize>) {
        let mut j = kw + 1;
        // Skip the generic parameter list directly after the keyword.
        if self.code.get(j).is_some_and(|t| t.is_punct("<")) {
            j = self.skip_angles(j);
        }
        let mut last_ident: Option<String> = None;
        let mut after_for: Option<String> = None;
        let mut saw_for = false;
        while let Some(t) = self.code.get(j) {
            if t.is_punct("{") {
                let ty = if saw_for { after_for } else { last_ident };
                return (ty, Some(j));
            }
            if t.is_punct(";") {
                return (None, None);
            }
            if t.is_ident("for") {
                saw_for = true;
            } else if t.is_ident("where") {
                // `where` clauses end the type path; keep scanning for `{`.
            } else if t.kind == TokenKind::Ident {
                if saw_for {
                    after_for = Some(t.text.clone());
                } else {
                    last_ident = Some(t.text.clone());
                }
            } else if t.is_punct("<") {
                j = self.skip_angles(j);
                continue;
            }
            j += 1;
        }
        (None, None)
    }

    /// Skips a balanced `<...>` run starting at an opening `<`. `<<`/`>>`
    /// count double; `->` and `=>` do not participate. Returns the index
    /// one past the closing `>`.
    fn skip_angles(&self, open: usize) -> usize {
        let mut depth = 0i32;
        let mut j = open;
        while let Some(t) = self.code.get(j) {
            match t.text.as_str() {
                "<" if t.kind == TokenKind::Punct => depth += 1,
                ">" if t.kind == TokenKind::Punct => depth -= 1,
                "<<" if t.kind == TokenKind::Punct => depth += 2,
                ">>" if t.kind == TokenKind::Punct => depth -= 2,
                ";" | "{" if t.kind == TokenKind::Punct => return j, // malformed; bail
                _ => {}
            }
            j += 1;
            if depth <= 0 {
                return j;
            }
        }
        j
    }

    /// Parses a `use` declaration starting at the keyword; returns the index
    /// one past its terminating `;`.
    fn use_decl(&mut self, kw: usize) -> usize {
        let mut end = kw + 1;
        while let Some(t) = self.code.get(end) {
            if t.is_punct(";") {
                break;
            }
            end += 1;
        }
        let mut prefix = Vec::new();
        self.use_tree(kw + 1, end, &mut prefix);
        end + 1
    }

    /// Recursively expands a use tree `a::b::{c, d as e, f::*}` within
    /// `[from, to)`.
    fn use_tree(&mut self, from: usize, to: usize, prefix: &mut Vec<String>) {
        let depth_before = prefix.len();
        let mut j = from;
        let mut last: Option<String> = None;
        while j < to {
            let t = self.code[j];
            if t.kind == TokenKind::Ident && t.text != "as" {
                last = Some(t.text.clone());
                j += 1;
            } else if t.is_ident("as") {
                // `path as rename`: bind the rename to the path so far.
                if let (Some(seg), Some(rename)) = (
                    last.take(),
                    self.code.get(j + 1).filter(|r| r.kind == TokenKind::Ident),
                ) {
                    prefix.push(seg);
                    self.uses.push(UseDecl {
                        local: rename.text.clone(),
                        path: prefix.clone(),
                    });
                    prefix.truncate(depth_before);
                }
                j += 2;
            } else if t.is_punct("::") {
                if let Some(seg) = last.take() {
                    prefix.push(seg);
                }
                j += 1;
            } else if t.is_punct("{") {
                let close = matching(self.code, j, "{", "}").unwrap_or(to).min(to);
                // Split the group at top-level commas and recurse.
                let mut part_start = j + 1;
                let mut depth = 0i32;
                for k in j + 1..close {
                    let p = self.code[k];
                    if p.is_punct("{") {
                        depth += 1;
                    } else if p.is_punct("}") {
                        depth -= 1;
                    } else if p.is_punct(",") && depth == 0 {
                        self.use_tree(part_start, k, prefix);
                        part_start = k + 1;
                    }
                }
                self.use_tree(part_start, close, prefix);
                prefix.truncate(depth_before);
                return;
            } else if t.is_punct("*") {
                prefix.push("*".to_string());
                self.uses.push(UseDecl {
                    local: "*".to_string(),
                    path: prefix.clone(),
                });
                prefix.truncate(depth_before);
                return;
            } else {
                j += 1;
            }
        }
        if let Some(seg) = last {
            prefix.push(seg);
            self.uses.push(UseDecl {
                local: prefix.last().cloned().unwrap_or_default(),
                path: prefix.clone(),
            });
        }
        prefix.truncate(depth_before);
    }

    /// Parses one `fn` item starting at the keyword; returns the index to
    /// resume scanning from (just *inside* the body, so nested items are
    /// seen too).
    fn fn_item(&mut self, kw: usize, stack: &[Scope]) -> usize {
        let Some(name) = self.code.get(kw + 1).filter(|t| t.kind == TokenKind::Ident) else {
            return kw + 1;
        };
        let mut j = kw + 2;
        if self.code.get(j).is_some_and(|t| t.is_punct("<")) {
            j = self.skip_angles(j);
        }
        let Some(open_paren) = self.punct_at(j, "(") else {
            return kw + 1;
        };
        let close_paren = match matching(self.code, open_paren, "(", ")") {
            Some(c) => c,
            None => return self.code.len(),
        };
        let params = self.params(open_paren + 1, close_paren);
        // Find the body's `{`, or `;` for a bodyless declaration. The
        // return type may contain braces only inside angle brackets or
        // parens, both of which we skip.
        let mut k = close_paren + 1;
        let mut body = 0..0;
        while let Some(t) = self.code.get(k) {
            if t.is_punct("{") {
                let close = matching(self.code, k, "{", "}").unwrap_or(self.code.len());
                body = k..(close + 1).min(self.code.len());
                break;
            }
            if t.is_punct(";") {
                break;
            }
            if t.is_punct("<") {
                k = self.skip_angles(k);
                continue;
            }
            k += 1;
        }
        let module: Vec<String> = stack
            .iter()
            .filter_map(|s| match &s.kind {
                ScopeKind::Mod(m) => Some(m.clone()),
                _ => None,
            })
            .collect();
        let self_ty = stack.iter().rev().find_map(|s| match &s.kind {
            ScopeKind::Impl(ty) => Some(ty.clone()),
            _ => None,
        });
        let resume = if body.is_empty() {
            k + 1
        } else {
            body.start + 1
        };
        self.fns.push(FnItem {
            name: name.text.clone(),
            self_ty,
            module,
            line: self.code[kw].line,
            params,
            body,
            is_test: self.in_test.get(kw).copied().unwrap_or(false),
        });
        resume
    }

    /// Extracts parameter names from `[from, to)` (the parenthesized list).
    /// Splits at commas outside `()`/`[]`/`{}` nesting; a piece's name is
    /// its first identifier before a top-level `:` (after `mut`/`ref`), or
    /// `self` for receivers. Pieces without a `:` that are not `self` are
    /// generic-argument spillover from the depth-blind comma split and are
    /// dropped.
    fn params(&self, from: usize, to: usize) -> Vec<Param> {
        let mut out = Vec::new();
        let mut depth = 0i32;
        let mut start = from;
        let flush = |lo: usize, hi: usize, out: &mut Vec<Param>| {
            let piece = &self.code[lo.min(hi)..hi];
            let is_self =
                piece.iter().any(|t| t.is_ident("self")) && !piece.iter().any(|t| t.is_punct(":"));
            if is_self {
                out.push(Param {
                    name: "self".to_string(),
                });
                return;
            }
            let colon = piece.iter().position(|t| t.is_punct(":"));
            let Some(colon) = colon else { return };
            let name = piece[..colon]
                .iter()
                .find(|t| t.kind == TokenKind::Ident && t.text != "mut" && t.text != "ref");
            if let Some(name) = name {
                out.push(Param {
                    name: name.text.clone(),
                });
            }
        };
        for k in from..to {
            let t = self.code[k];
            if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
                depth += 1;
            } else if t.is_punct(")") || t.is_punct("]") || t.is_punct("}") {
                depth -= 1;
            } else if t.is_punct(",") && depth == 0 {
                flush(start, k, &mut out);
                start = k + 1;
            }
        }
        if start < to {
            flush(start, to, &mut out);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(p: &ParsedFile) -> Vec<String> {
        p.fns.iter().map(|f| f.qual()).collect()
    }

    #[test]
    fn free_fns_and_methods() {
        let p = parse_file(
            "pub fn alpha(x: u64) -> u64 { x }\n\
             impl Widget { fn beta(&mut self, n_bytes: u64) {} }\n\
             impl Display for Widget { fn fmt(&self, f: &mut Formatter) -> Result { Ok(()) } }\n",
        );
        assert_eq!(names(&p), vec!["alpha", "Widget::beta", "Widget::fmt"]);
        assert_eq!(p.fns[0].params, vec![Param { name: "x".into() }]);
        assert_eq!(
            p.fns[1].params,
            vec![
                Param {
                    name: "self".into()
                },
                Param {
                    name: "n_bytes".into()
                }
            ]
        );
    }

    #[test]
    fn inline_modules_contribute_path() {
        let p = parse_file("mod outer { mod inner { fn deep() {} } fn shallow() {} }");
        assert_eq!(p.fns[0].module, vec!["outer", "inner"]);
        assert_eq!(p.fns[1].module, vec!["outer"]);
    }

    #[test]
    fn generic_fns_and_impls() {
        let p = parse_file(
            "impl<K: Ord, V> Store<K, V> { fn get_mut(&mut self, k: &K) -> Option<&mut V> { None } }\n\
             fn max_by<T, F: Fn(&T, &T) -> bool>(a: T, b: T, f: F) -> T { a }\n",
        );
        assert_eq!(names(&p), vec!["Store::get_mut", "max_by"]);
        assert_eq!(p.fns[1].params.len(), 3);
    }

    #[test]
    fn bodies_cover_braces_and_nested_fns_are_items() {
        let src = "fn outer() { fn inner(q: u8) {} inner(3); }";
        let p = parse_file(src);
        assert_eq!(names(&p), vec!["outer", "inner"]);
        let outer = &p.fns[0];
        assert!(p.code[outer.body.start].is_punct("{"));
        assert!(p.code[outer.body.end - 1].is_punct("}"));
        // The nested fn's tokens sit inside the outer body range.
        let inner = &p.fns[1];
        assert!(outer.body.start < inner.body.start && inner.body.end <= outer.body.end);
    }

    #[test]
    fn trait_decls_without_bodies() {
        let p = parse_file("trait Sink { fn observe(&mut self, v: f64); fn done(&mut self) {} }");
        assert_eq!(names(&p), vec!["Sink::observe", "Sink::done"]);
        assert!(p.fns[0].body.is_empty());
        assert!(!p.fns[1].body.is_empty());
    }

    #[test]
    fn use_trees_resolve() {
        let p = parse_file(
            "use std::collections::BTreeMap;\n\
             use mrm_core::pool::{Pool, PoolError as PErr};\n\
             use mrm_sim::prelude::*;\n",
        );
        assert!(p.uses.contains(&UseDecl {
            local: "BTreeMap".into(),
            path: vec!["std".into(), "collections".into(), "BTreeMap".into()],
        }));
        assert!(p.uses.contains(&UseDecl {
            local: "Pool".into(),
            path: vec!["mrm_core".into(), "pool".into(), "Pool".into()],
        }));
        assert!(p.uses.contains(&UseDecl {
            local: "PErr".into(),
            path: vec!["mrm_core".into(), "pool".into(), "PoolError".into()],
        }));
        assert!(p.uses.contains(&UseDecl {
            local: "*".into(),
            path: vec!["mrm_sim".into(), "prelude".into(), "*".into()],
        }));
    }

    #[test]
    fn test_regions_mark_fns() {
        let p = parse_file(
            "fn lib_code() {}\n#[cfg(test)]\nmod tests { fn helper() {} }\n#[test]\nfn t() {}\n",
        );
        assert!(!p.fns[0].is_test);
        assert!(p.fns[1].is_test);
        assert!(p.fns[2].is_test);
    }

    #[test]
    fn malformed_input_never_panics() {
        for src in [
            "fn",
            "fn (",
            "fn f(",
            "impl {",
            "impl for {}",
            "use ;",
            "use a::{b,",
            "mod m {",
            "fn f<T(x: T) {}",
            "trait T { fn",
        ] {
            let _ = parse_file(src);
        }
    }
}
