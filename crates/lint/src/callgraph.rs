//! Workspace call graph: name-based, conservative, over-approximate.
//!
//! Edges are discovered syntactically — an identifier directly followed by
//! `(` is a call site — and resolved by name against the symbol table
//! (class-hierarchy analysis without the hierarchy):
//!
//! * `recv.method(...)` resolves to **every** workspace method named
//!   `method`, unless the name sits on the [`METHOD_STOPLIST`] of
//!   ubiquitous std methods (`iter`, `push`, `len`, ...), which would
//!   otherwise connect everything to everything.
//! * `Type::method(...)` resolves via the qualified index; a `use`
//!   rename (`use a::B as C;`) is followed back to the original name.
//! * A bare `free_fn(...)` resolves to free functions named that,
//!   preferring same-file definitions, then same-crate, then workspace-wide.
//!
//! Over-approximation is the right default for D9: a spurious edge can at
//! worst produce a suppressible false positive, while a missed edge hides a
//! real nondeterminism leak. The stoplist is the one concession to noise —
//! names on it are std-library vocabulary that workspace types almost never
//! shadow with effectful code.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::lexer::{Token, TokenKind};
use crate::symbols::{FileEntry, FnId, SymbolTable};

/// Method names too generic to resolve: connecting `.iter()` to every
/// workspace `fn iter` drowns the graph. Kept deliberately to std-library
/// vocabulary — domain verbs like `tick`, `dispatch`, `schedule` stay
/// resolvable.
pub const METHOD_STOPLIST: [&str; 36] = [
    "as_mut",
    "as_ref",
    "clone",
    "cmp",
    "collect",
    "contains",
    "default",
    "drain",
    "entry",
    "eq",
    "expect",
    "extend",
    "filter",
    "fmt",
    "from",
    "get",
    "get_mut",
    "insert",
    "into",
    "into_iter",
    "is_empty",
    "iter",
    "iter_mut",
    "keys",
    "len",
    "map",
    "max",
    "min",
    "new",
    "next",
    "push",
    "remove",
    "sort",
    "to_string",
    "unwrap",
    "values",
];

/// Rust keywords that look like call heads when followed by `(`.
const KEYWORDS: [&str; 10] = [
    "if", "while", "for", "match", "return", "loop", "fn", "as", "in", "else",
];

/// One outgoing call edge.
#[derive(Clone, Debug)]
pub struct CallEdge {
    pub to: FnId,
    /// Source line of the call site in the caller's file.
    pub line: u32,
    /// How the call was spelled, e.g. `q.schedule` or `Baseline::load`.
    pub call_repr: String,
}

/// The workspace call graph: adjacency by caller `FnId`.
#[derive(Debug, Default)]
pub struct CallGraph {
    pub edges: Vec<Vec<CallEdge>>,
}

/// One syntactic call site inside a body, before resolution.
#[derive(Debug)]
pub struct CallSite {
    /// Token index of the called name within the file's code tokens.
    pub name_idx: usize,
    pub name: String,
    /// `Some(recv_repr)` for `recv.name(...)` method calls.
    pub method: bool,
    /// Path qualifier for `A::B::name(...)` calls (last segment before the
    /// name, with `use` renames already applied upstream).
    pub qualifier: Option<String>,
    pub line: u32,
}

/// Extracts syntactic call sites from `code[range]`.
pub fn call_sites(code: &[Token], range: std::ops::Range<usize>) -> Vec<CallSite> {
    let mut out = Vec::new();
    for i in range.clone() {
        let t = &code[i];
        if t.kind != TokenKind::Ident || KEYWORDS.contains(&t.text.as_str()) {
            continue;
        }
        let Some(next) = code.get(i + 1) else {
            continue;
        };
        if !next.is_punct("(") {
            continue;
        }
        // `fn name(` is a definition; `name!(` is a macro.
        if i > 0 && code[i - 1].is_ident("fn") {
            continue;
        }
        if i > 0 && code[i - 1].is_punct("!") {
            continue;
        }
        let method = i > 0 && code[i - 1].is_punct(".");
        let mut qualifier = None;
        if !method && i >= 2 && code[i - 1].is_punct("::") && code[i - 2].kind == TokenKind::Ident {
            qualifier = Some(code[i - 2].text.clone());
        }
        out.push(CallSite {
            name_idx: i,
            name: t.text.clone(),
            method,
            qualifier,
            line: t.line,
        });
    }
    out
}

impl CallGraph {
    /// Builds the graph: resolves every call site in every library fn body
    /// against the symbol table.
    pub fn build(table: &SymbolTable) -> CallGraph {
        let renames: Vec<BTreeMap<String, String>> = table.files.iter().map(renames_of).collect();

        let mut edges: Vec<Vec<CallEdge>> = vec![Vec::new(); table.fns.len()];
        for (caller, def) in table.fns.iter().enumerate() {
            let file = &table.files[def.file];
            let code = &file.parsed.code;
            for site in call_sites(code, def.item.body.clone()) {
                let targets = resolve(table, def.file, &renames[def.file], &site);
                let repr = if site.method {
                    format!(".{}", site.name)
                } else if let Some(q) = &site.qualifier {
                    format!("{q}::{}", site.name)
                } else {
                    site.name.clone()
                };
                for to in targets {
                    // Self-loops carry no reachability information.
                    if to == caller {
                        continue;
                    }
                    edges[caller].push(CallEdge {
                        to,
                        line: site.line,
                        call_repr: repr.clone(),
                    });
                }
            }
        }
        CallGraph { edges }
    }

    /// Multi-source BFS. Returns, for every reachable fn, the `(caller,
    /// edge)` it was first discovered through — `None` for the sources
    /// themselves — so a chain can be reconstructed by walking parents.
    pub fn reachable_from(&self, sources: &[FnId]) -> BTreeMap<FnId, Option<(FnId, CallEdge)>> {
        use std::collections::btree_map::Entry;
        let mut parent: BTreeMap<FnId, Option<(FnId, CallEdge)>> = BTreeMap::new();
        let mut queue: VecDeque<FnId> = VecDeque::new();
        for &s in sources {
            if let Entry::Vacant(slot) = parent.entry(s) {
                slot.insert(None);
                queue.push_back(s);
            }
        }
        while let Some(f) = queue.pop_front() {
            for e in &self.edges[f] {
                if let Entry::Vacant(slot) = parent.entry(e.to) {
                    slot.insert(Some((f, e.clone())));
                    queue.push_back(e.to);
                }
            }
        }
        parent
    }

    /// The call chain from some source to `target`: a list of `(FnId,
    /// Option<edge leading to it>)` from entry to target.
    pub fn chain_to(
        &self,
        parent: &BTreeMap<FnId, Option<(FnId, CallEdge)>>,
        target: FnId,
    ) -> Vec<(FnId, Option<CallEdge>)> {
        let mut chain = Vec::new();
        let mut cur = target;
        loop {
            match parent.get(&cur) {
                Some(Some((from, edge))) => {
                    chain.push((cur, Some(edge.clone())));
                    cur = *from;
                }
                Some(None) => {
                    chain.push((cur, None));
                    break;
                }
                None => break,
            }
        }
        chain.reverse();
        chain
    }

    /// DOT export of the subgraph induced by `keep`, for DESIGN.md and
    /// `--dump-callgraph`. Nodes are `crate::qual` labels; sim-path entry
    /// points render as boxes.
    pub fn to_dot(&self, table: &SymbolTable, keep: &BTreeSet<FnId>, entries: &[FnId]) -> String {
        let mut out = String::from(
            "digraph mrm_callgraph {\n  rankdir=LR;\n  node [fontname=\"monospace\", fontsize=10];\n",
        );
        let label = |id: FnId| {
            let d = &table.fns[id];
            format!("{}::{}", d.crate_name, d.item.qual())
        };
        for &id in keep {
            let shape = if entries.contains(&id) {
                "box"
            } else {
                "ellipse"
            };
            out.push_str(&format!(
                "  n{id} [label=\"{}\", shape={shape}];\n",
                label(id)
            ));
        }
        for &from in keep {
            let mut seen = BTreeSet::new();
            for e in &self.edges[from] {
                if keep.contains(&e.to) && seen.insert(e.to) {
                    out.push_str(&format!("  n{from} -> n{};\n", e.to));
                }
            }
        }
        out.push_str("}\n");
        out
    }
}

/// Per-file rename map from `use` declarations: local alias → original
/// last-segment name, for `Alias::method(...)` qualified calls.
pub(crate) fn renames_of(file: &FileEntry) -> BTreeMap<String, String> {
    file.parsed
        .uses
        .iter()
        .filter(|u| u.local != "*")
        .filter_map(|u| {
            let orig = u.path.last()?;
            (orig != &u.local).then_some((u.local.clone(), orig.clone()))
        })
        .collect()
}

/// Resolves one call site to candidate callee ids.
pub(crate) fn resolve(
    table: &SymbolTable,
    file_idx: usize,
    renames: &BTreeMap<String, String>,
    site: &CallSite,
) -> Vec<FnId> {
    if site.method {
        if METHOD_STOPLIST.contains(&site.name.as_str()) {
            return Vec::new();
        }
        return table.methods(&site.name).to_vec();
    }
    if let Some(q) = &site.qualifier {
        let q = renames.get(q.as_str()).map_or(q.as_str(), String::as_str);
        // `Type::method` via the qualified index; a lowercase qualifier is
        // a module path (`units::to_ns`), where the name is a free fn.
        let via_qual = table.qual_fns(q, &site.name);
        if !via_qual.is_empty() {
            return via_qual.to_vec();
        }
        return table.free_fns(&site.name).to_vec();
    }
    // Bare call: prefer same-file free fns, then same-crate, then all.
    let all = table.free_fns(&site.name);
    let same_file: Vec<FnId> = all
        .iter()
        .copied()
        .filter(|&id| table.fns[id].file == file_idx)
        .collect();
    if !same_file.is_empty() {
        return same_file;
    }
    let caller_crate = crate_of_file(table, file_idx);
    let same_crate: Vec<FnId> = all
        .iter()
        .copied()
        .filter(|&id| table.fns[id].crate_name == caller_crate)
        .collect();
    if !same_crate.is_empty() {
        return same_crate;
    }
    all.to_vec()
}

fn crate_of_file(table: &SymbolTable, file_idx: usize) -> String {
    crate::symbols::crate_of(&table.files[file_idx].ctx.path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_file;
    use crate::rules::FileCtx;
    use crate::symbols::FileEntry;

    fn table(files: &[(&str, &str)]) -> SymbolTable {
        SymbolTable::build(
            files
                .iter()
                .map(|(path, src)| FileEntry {
                    parsed: parse_file(src),
                    ctx: FileCtx::classify(path),
                })
                .collect(),
        )
    }

    fn id(t: &SymbolTable, qual: &str) -> FnId {
        t.fns
            .iter()
            .position(|d| d.item.qual() == qual)
            .unwrap_or_else(|| panic!("no fn {qual}"))
    }

    #[test]
    fn free_call_prefers_same_file_then_crate() {
        let t = table(&[
            (
                "crates/sim/src/a.rs",
                "pub fn go() { helper(); }\nfn helper() {}\n",
            ),
            ("crates/sim/src/b.rs", "pub fn helper() {}\n"),
            ("crates/util/src/lib.rs", "pub fn helper() {}\n"),
        ]);
        let g = CallGraph::build(&t);
        let go = id(&t, "go");
        let targets: Vec<FnId> = g.edges[go].iter().map(|e| e.to).collect();
        // Only the same-file helper.
        assert_eq!(targets.len(), 1);
        assert_eq!(t.fns[targets[0]].path, "crates/sim/src/a.rs");
    }

    #[test]
    fn method_calls_resolve_by_name_with_stoplist() {
        let t = table(&[
            (
                "crates/sim/src/a.rs",
                "impl Sim { pub fn step(&mut self) { self.q.advance(); self.v.push(1); } }",
            ),
            (
                "crates/sim/src/q.rs",
                "impl Queue { pub fn advance(&mut self) {} pub fn push(&mut self, x: u32) {} }",
            ),
        ]);
        let g = CallGraph::build(&t);
        let step = id(&t, "Sim::step");
        let reprs: Vec<&str> = g.edges[step].iter().map(|e| e.call_repr.as_str()).collect();
        assert_eq!(
            reprs,
            vec![".advance"],
            "push is stoplisted, advance is not"
        );
    }

    #[test]
    fn qualified_calls_follow_use_renames() {
        let t = table(&[
            (
                "crates/sim/src/a.rs",
                "use crate::q::Queue as Q;\nfn go() { Q::advance(); }\n",
            ),
            (
                "crates/sim/src/q.rs",
                "impl Queue { pub fn advance() {} }\n",
            ),
        ]);
        let g = CallGraph::build(&t);
        let go = id(&t, "go");
        assert_eq!(g.edges[go].len(), 1);
        assert_eq!(t.fns[g.edges[go][0].to].item.qual(), "Queue::advance");
    }

    #[test]
    fn bfs_parents_reconstruct_chains() {
        let t = table(&[(
            "crates/sim/src/a.rs",
            "fn entry() { mid(); }\nfn mid() { sink(); }\nfn sink() {}\nfn lonely() {}\n",
        )]);
        let g = CallGraph::build(&t);
        let (entry, sink, lonely) = (id(&t, "entry"), id(&t, "sink"), id(&t, "lonely"));
        let parent = g.reachable_from(&[entry]);
        assert!(parent.contains_key(&sink));
        assert!(!parent.contains_key(&lonely));
        let chain = g.chain_to(&parent, sink);
        let names: Vec<String> = chain
            .iter()
            .map(|(f, _)| t.fns[*f].item.name.clone())
            .collect();
        assert_eq!(names, vec!["entry", "mid", "sink"]);
        assert!(chain[0].1.is_none(), "entry has no incoming edge");
        assert_eq!(
            chain[1].1.as_ref().map(|e| e.call_repr.as_str()),
            Some("mid")
        );
    }

    #[test]
    fn macros_and_keywords_are_not_calls() {
        let code = parse_file("fn f(x: bool) { if (x) {} println!(\"{}\", x); g(); }\nfn g() {}");
        let sites = call_sites(&code.code, code.fns[0].body.clone());
        let names: Vec<&str> = sites.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["g"]);
    }
}
