//! The D5 debt baseline: incremental adoption with a one-way ratchet.
//!
//! `lint-baseline.txt` (workspace root) records, per file, how many bare
//! `unwrap()`/`expect("")` sites existed when the lint was introduced. A
//! file may never *exceed* its baseline count — new debt fails `--deny` —
//! and when debt is paid down the baseline must be tightened to match
//! (`--update-baseline`), so counts only ever shrink. Only D5 is
//! baseline-eligible: the determinism rules (D1–D4, U1) are hard invariants
//! with no pre-existing backlog.

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::Path;

use crate::rules::{RuleId, Violation};

/// Parsed baseline: `(file) -> allowed D5 count`.
#[derive(Clone, Debug, Default)]
pub struct Baseline {
    pub counts: BTreeMap<String, usize>,
}

/// Outcome of applying the baseline to a run's D5 violations.
#[derive(Debug, Default)]
pub struct BaselineOutcome {
    /// Violations that survive (files over their allowance emit all sites).
    pub kept: Vec<Violation>,
    /// Number of D5 sites absorbed by the baseline.
    pub suppressed: usize,
    /// Files whose count shrank below the baseline: the ratchet must be
    /// tightened. `(file, baseline, actual)`.
    pub stale: Vec<(String, usize, usize)>,
}

impl Baseline {
    /// Loads a baseline file. Missing file is an empty baseline. Lines are
    /// `D5 <path> <count>`; `#` starts a comment.
    pub fn load(path: &Path) -> io::Result<Baseline> {
        let text = match fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Baseline::default()),
            Err(e) => return Err(e),
        };
        let mut counts = BTreeMap::new();
        for (idx, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            let (rule, file, count) = (parts.next(), parts.next(), parts.next());
            let parsed = match (rule, file, count) {
                (Some("D5"), Some(f), Some(c)) => c.parse::<usize>().ok().map(|n| (f, n)),
                _ => None,
            };
            let Some((file, n)) = parsed else {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "{}:{}: baseline lines are `D5 <path> <count>` (only D5 is \
                         baseline-eligible), got: {line}",
                        path.display(),
                        idx + 1
                    ),
                ));
            };
            counts.insert(file.to_string(), n);
        }
        Ok(Baseline { counts })
    }

    /// Splits `violations` into suppressed and kept according to the
    /// allowance, and reports stale (shrunken) entries.
    pub fn apply(&self, violations: Vec<Violation>) -> BaselineOutcome {
        let mut per_file: BTreeMap<String, usize> = BTreeMap::new();
        for v in violations.iter().filter(|v| v.rule == RuleId::D5) {
            *per_file.entry(v.path.clone()).or_default() += 1;
        }
        let mut out = BaselineOutcome::default();
        for v in violations {
            if v.rule != RuleId::D5 {
                out.kept.push(v);
                continue;
            }
            let actual = per_file.get(&v.path).copied().unwrap_or(0);
            let allowed = self.counts.get(&v.path).copied().unwrap_or(0);
            if actual <= allowed {
                out.suppressed += 1;
            } else {
                out.kept.push(v);
            }
        }
        for (file, &allowed) in &self.counts {
            let actual = per_file.get(file).copied().unwrap_or(0);
            if actual < allowed {
                out.stale.push((file.clone(), allowed, actual));
            }
        }
        out
    }

    /// Renders a baseline from a run's D5 violations.
    pub fn render_from(violations: &[Violation]) -> String {
        let mut per_file: BTreeMap<&str, usize> = BTreeMap::new();
        for v in violations.iter().filter(|v| v.rule == RuleId::D5) {
            *per_file.entry(v.path.as_str()).or_default() += 1;
        }
        let mut out = String::from(
            "# mrm-lint baseline: pre-existing D5 (bare unwrap/expect(\"\")) debt.\n\
             # Counts may only shrink; regenerate with `cargo run -p mrm-lint -- --update-baseline`.\n",
        );
        for (file, n) in per_file {
            out.push_str(&format!("D5 {file} {n}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d5(path: &str, line: u32) -> Violation {
        Violation {
            rule: RuleId::D5,
            path: path.into(),
            line,
            message: "bare unwrap".into(),
            related: Vec::new(),
        }
    }

    #[test]
    fn baseline_absorbs_exact_count_and_flags_growth() {
        let mut b = Baseline::default();
        b.counts.insert("a.rs".into(), 2);
        // Exactly at the allowance: fully suppressed.
        let out = b.apply(vec![d5("a.rs", 1), d5("a.rs", 9)]);
        assert_eq!(out.suppressed, 2);
        assert!(out.kept.is_empty() && out.stale.is_empty());
        // One over: every site in the file reported (new debt blocks).
        let out = b.apply(vec![d5("a.rs", 1), d5("a.rs", 9), d5("a.rs", 12)]);
        assert_eq!(out.kept.len(), 3);
        assert_eq!(out.suppressed, 0);
    }

    #[test]
    fn shrunken_counts_are_stale() {
        let mut b = Baseline::default();
        b.counts.insert("a.rs".into(), 3);
        let out = b.apply(vec![d5("a.rs", 1)]);
        assert_eq!(out.suppressed, 1);
        assert_eq!(out.stale, vec![("a.rs".to_string(), 3, 1)]);
    }

    #[test]
    fn render_round_trips() {
        let rendered = Baseline::render_from(&[d5("b.rs", 1), d5("a.rs", 2), d5("b.rs", 7)]);
        assert!(rendered.contains("D5 a.rs 1\n"));
        assert!(rendered.contains("D5 b.rs 2\n"));
    }
}
