//! The workspace invariant rules and the token-level engine that checks them.
//!
//! Every rule exists because a runtime test already failed — or would fail,
//! hours of CI later — for the class of bug it catches statically:
//!
//! * **D1–D3** pin the determinism contract of the simulation kernel
//!   (DESIGN.md §3.8): results must be bit-identical for a given seed at any
//!   thread count. Wall-clock reads, unordered map iteration and ambient
//!   entropy are the three ways Rust code silently breaks that.
//! * **D4** pins PR 2's telemetry contract: sinks observe, they never draw
//!   randomness or schedule events.
//! * **D5** keeps panics out of library hot paths: a controller that
//!   `unwrap()`s mid-sweep takes out the whole parallel run.
//! * **D6** pins PR 5's fault-injection contract: error sampling draws only
//!   from the dedicated `FaultRng` stream, never the scheduling `SimRng` —
//!   otherwise enabling faults perturbs the schedule (and vice versa) and
//!   the same seed stops flipping the same bits.
//! * **D7** pins PR 6's control-plane contract: placement/expiry *decisions*
//!   (`retention_for`, `ExpiryTracker`, `ExpiryAction`) live in
//!   `mrm-control` and its two designated shims. Data-path crates that grow
//!   their own inline retention decisions bypass the registry and the audit
//!   log — exactly the drift the control plane exists to prevent.
//! * **D8** pins PR 7's observability contract: the causal tracer and
//!   profiler are observe-only, so their hook call sites must stay out of
//!   functions that draw randomness (`SimRng`/`FaultRng` draws) or mutate
//!   the event queue. A hook sitting on one of those paths is one refactor
//!   away from reordering a draw or a schedule — which would make the run's
//!   result depend on whether observation is attached.
//! * **U1** guards the unit conventions of `sim/src/units.rs`: the paper's
//!   cost-model conclusions die silently when `*_ns` meets `*_bytes` in an
//!   addition, or a capacity is re-derived as `1 << 30` with the wrong shift.
//! * **D9/D10/U2** are the *interprocedural* versions of the contracts
//!   above, computed in [`crate::dataflow`] on the workspace symbol table
//!   and call graph ([`crate::symbols`], [`crate::callgraph`]): D9 walks
//!   reachability from sim entry points to forbidden sinks hiding in
//!   non-sim helper crates, D10 taints `FaultRng`-derived values so the
//!   two-stream contract cannot be laundered through a local variable, and
//!   U2 propagates unit-suffix dimensions through let-bindings and call
//!   boundaries where U1's single-expression check goes blind.

use crate::lexer::{lex, Token, TokenKind};

/// Identifier of a lint rule.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RuleId {
    /// Wall-clock time (`Instant`, `SystemTime`) in a sim-path crate.
    D1,
    /// `HashMap`/`HashSet` in a sim-path crate (iteration order is
    /// nondeterministic; use `BTreeMap`/`BTreeSet` or sorted iteration).
    D2,
    /// Entropy source other than `SimRng` in a sim-path crate.
    D3,
    /// Telemetry referencing `SimRng` or the event-scheduling API.
    D4,
    /// Bare `unwrap()` or `expect("")` in non-test library code.
    D5,
    /// `SimRng` named in `crates/faults` outside `src/rng.rs`: fault
    /// injection must draw only from the dedicated `FaultRng` stream.
    D6,
    /// Placement/expiry decision API (`retention_for`, `ExpiryTracker`,
    /// `ExpiryAction`) named in sim-path library code outside `mrm-control`
    /// and its designated decision shims.
    D7,
    /// Obs hook (`tracer`/`profiler`) touched inside a function that draws
    /// randomness or mutates the event queue: observation must be confined
    /// to dedicated `obs_*` helpers off the RNG/scheduling paths.
    D8,
    /// Transitive determinism: a sim entry point (event handler,
    /// `ClusterSim::run*`, controller `tick`/`read`/`write` surface)
    /// reaches wall-clock, ambient entropy, or `HashMap`/`HashSet`
    /// iteration through a helper in a non-sim crate. Reported with the
    /// full call chain.
    D9,
    /// RNG stream separation: a `FaultRng`-derived value flows into
    /// `SimRng` seeding, event-queue scheduling, or `TraceId` derivation
    /// (or a `SimRng`-derived value into `FaultRng` seeding).
    D10,
    /// Unit-suffix mixing or raw capacity literal outside `sim/src/units.rs`.
    U1,
    /// Interprocedural units: a `_ns`/`_bytes`/`_pj` dimension propagated
    /// through a let-binding or across a call boundary meets a conflicting
    /// dimension.
    U2,
    /// Malformed `mrm-lint` annotation (cannot be allowed or baselined).
    Meta,
}

/// How bad a violation is. `Error` rules are hard invariants; `Warn` rules
/// (D5) carry a pre-existing backlog tracked in the baseline file.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    Error,
    Warn,
}

impl RuleId {
    pub const ALL: [RuleId; 12] = [
        RuleId::D1,
        RuleId::D2,
        RuleId::D3,
        RuleId::D4,
        RuleId::D5,
        RuleId::D6,
        RuleId::D7,
        RuleId::D8,
        RuleId::D9,
        RuleId::D10,
        RuleId::U1,
        RuleId::U2,
    ];

    pub fn as_str(self) -> &'static str {
        match self {
            RuleId::D1 => "D1",
            RuleId::D2 => "D2",
            RuleId::D3 => "D3",
            RuleId::D4 => "D4",
            RuleId::D5 => "D5",
            RuleId::D6 => "D6",
            RuleId::D7 => "D7",
            RuleId::D8 => "D8",
            RuleId::D9 => "D9",
            RuleId::D10 => "D10",
            RuleId::U1 => "U1",
            RuleId::U2 => "U2",
            RuleId::Meta => "LINT",
        }
    }

    pub fn parse(s: &str) -> Option<RuleId> {
        match s {
            "D1" => Some(RuleId::D1),
            "D2" => Some(RuleId::D2),
            "D3" => Some(RuleId::D3),
            "D4" => Some(RuleId::D4),
            "D5" => Some(RuleId::D5),
            "D6" => Some(RuleId::D6),
            "D7" => Some(RuleId::D7),
            "D8" => Some(RuleId::D8),
            "D9" => Some(RuleId::D9),
            "D10" => Some(RuleId::D10),
            "U1" => Some(RuleId::U1),
            "U2" => Some(RuleId::U2),
            _ => None,
        }
    }

    pub fn severity(self) -> Severity {
        match self {
            RuleId::D5 => Severity::Warn,
            _ => Severity::Error,
        }
    }

    /// One-line description, shown by `--rules`.
    pub fn describe(self) -> &'static str {
        match self {
            RuleId::D1 => "no wall-clock time (Instant/SystemTime) in sim-path crates; use SimTime",
            RuleId::D2 => {
                "no HashMap/HashSet in sim-path crates; use BTreeMap/BTreeSet or sorted iteration"
            }
            RuleId::D3 => "no entropy source other than SimRng in sim-path crates",
            RuleId::D4 => "telemetry is observe-only: no SimRng, no event scheduling",
            RuleId::D5 => "no bare unwrap()/expect(\"\") in non-test library code",
            RuleId::D6 => {
                "fault injection draws only from the dedicated FaultRng; \
                 SimRng may be named in crates/faults only inside src/rng.rs"
            }
            RuleId::D7 => {
                "placement/expiry decisions (retention_for, ExpiryTracker, ExpiryAction) \
                 are confined to mrm-control and its designated shims"
            }
            RuleId::D8 => {
                "obs hooks (tracer/profiler) may not be touched inside functions that \
                 draw randomness or mutate the event queue; confine them to obs_* helpers"
            }
            RuleId::D9 => {
                "no sim entry point may transitively reach wall-clock, ambient \
                 entropy, or HashMap/HashSet iteration through non-sim helper crates"
            }
            RuleId::D10 => {
                "FaultRng-derived values must not flow into SimRng seeding, \
                 event scheduling, or TraceId derivation (nor SimRng draws into FaultRng)"
            }
            RuleId::U1 => {
                "no arithmetic mixing *_ns/*_bytes/*_pj identifiers; \
                 no raw capacity literals outside sim/src/units.rs"
            }
            RuleId::U2 => {
                "unit-suffix dimensions propagate through let-bindings and call \
                 boundaries; mixed-dimension arithmetic across them is an error"
            }
            RuleId::Meta => "malformed mrm-lint annotation",
        }
    }

    /// Extended explanation shown by `--explain RULE`: what the rule
    /// catches, why the invariant exists, and how to fix or suppress a
    /// finding.
    pub fn explain(self) -> &'static str {
        match self {
            RuleId::D1 => {
                "D1 — no wall-clock time in sim-path crates.\n\n\
                 Simulated results must be a pure function of (config, seed). A read\n\
                 of `Instant::now()`, `SystemTime`, or `UNIX_EPOCH` couples the run to\n\
                 the host machine, so two runs of the same experiment stop being\n\
                 byte-identical. Use `SimTime` / `EventQueue::now` for anything the\n\
                 simulation can observe. Benchmarks and the test harness may time\n\
                 things — D1 is scoped to the sim-path crates only.\n\n\
                 Fix: thread the event-queue clock through the call; if the read is\n\
                 provably observation-only, annotate `// mrm-lint: allow(D1) reason`."
            }
            RuleId::D2 => {
                "D2 — no HashMap/HashSet in sim-path crates.\n\n\
                 `RandomState` hashing randomizes iteration order per process, so any\n\
                 loop over a HashMap can reorder events, allocations, or report rows\n\
                 between runs. Use `BTreeMap`/`BTreeSet` (deterministic order) or an\n\
                 index-keyed Vec. If a map is provably never iterated, annotate\n\
                 `// mrm-lint: allow(D2) reason` — and see D9, which catches the\n\
                 same hazard hiding behind a helper in a non-sim crate."
            }
            RuleId::D3 => {
                "D3 — no entropy source other than SimRng in sim-path crates.\n\n\
                 All randomness flows from the experiment seed through the seeded,\n\
                 splittable `SimRng`. `thread_rng`, `from_entropy`, `OsRng`,\n\
                 `getrandom`, and `RandomState` pull ambient entropy that cannot be\n\
                 replayed. Fix: accept a `&mut SimRng` (or split a child stream)\n\
                 instead of constructing a generator locally."
            }
            RuleId::D4 => {
                "D4 — telemetry is observe-only.\n\n\
                 Attaching a metrics sink must never change what a simulation does:\n\
                 reports are byte-identical with and without telemetry. The telemetry\n\
                 crate therefore may not name `SimRng` or the event-scheduling API.\n\
                 Fix: move the decision into the simulation and publish the outcome."
            }
            RuleId::D5 => {
                "D5 — no bare unwrap()/expect(\"\") in non-test library code.\n\n\
                 A panic mid-sweep takes out the whole parallel run with no\n\
                 actionable message. Return a typed error, or use\n\
                 `expect(\"which invariant failed and why it cannot\")`. D5 is a\n\
                 warning with a shrink-only baseline (`lint-baseline.txt`); new debt\n\
                 fails `--deny`, paid-down debt must tighten the ratchet via\n\
                 `--update-baseline` (the file is deleted when the debt hits zero)."
            }
            RuleId::D6 => {
                "D6 — fault injection draws only from the dedicated FaultRng.\n\n\
                 The fault stream is the scheduling seed XOR a fixed salt, so enabling\n\
                 faults cannot move arrival times and the same seed flips the same\n\
                 bits. Only `crates/faults/src/rng.rs` (the wrapper) may name\n\
                 `SimRng`; everything else draws through `FaultRng`. See also D10,\n\
                 which tracks the *values* across the two streams."
            }
            RuleId::D7 => {
                "D7 — placement/expiry decisions are confined to mrm-control.\n\n\
                 `retention_for`, `ExpiryTracker`, and `ExpiryAction` route every\n\
                 store/drop/retire decision through the RetentionRegistry and the\n\
                 append-only audit log. A data-path crate naming the decision API has\n\
                 grown an inline retention decision that bypasses both. Fix: call\n\
                 through `mrm-control` (or one of the two designated tiering shims)."
            }
            RuleId::D8 => {
                "D8 — obs hooks stay off the RNG and scheduling paths.\n\n\
                 A function that both draws randomness (or mutates the event queue)\n\
                 and touches `tracer`/`profiler` directly is one refactor away from\n\
                 making results depend on whether observation is attached. Fix: move\n\
                 the hook into a dedicated `obs_*` helper that only observes."
            }
            RuleId::D9 => {
                "D9 — transitive determinism (interprocedural D1/D2/D3).\n\n\
                 D1–D3 are lexical and scoped to sim-path crates, so a wall-clock\n\
                 read or HashMap iteration wrapped in a helper function in a non-sim\n\
                 crate sails straight through them. D9 closes the gap: it builds the\n\
                 workspace call graph, walks reachability from sim entry points\n\
                 (event handlers `on_*`/`dispatch`, `ClusterSim::run*`, controller\n\
                 `tick`/`read*`/`write*`/`step` surfaces), and reports any path that\n\
                 reaches wall-clock, ambient entropy, or HashMap/HashSet iteration in\n\
                 a non-sim crate — with the full call chain, entry to sink.\n\n\
                 The observe-only crates (`telemetry`, `obs`) are excluded as sinks:\n\
                 their own contracts (D4, D8, byte-identity CI smokes) pin that they\n\
                 cannot perturb a run, and the wall profiler reads wall-clock by\n\
                 design. Suppress a false positive with `// mrm-lint: allow(D9)\n\
                 reason` at the reported call site (the chain's first edge)."
            }
            RuleId::D10 => {
                "D10 — RNG stream separation, value-level.\n\n\
                 PR 5's contract keeps the fault stream and the scheduling stream\n\
                 independent; D6 pins the *types* but cannot see a `FaultRng` draw\n\
                 stored in a local and later fed to `SimRng::seed_from`, an event\n\
                 `schedule*` call, or `TraceId` derivation (which would couple which\n\
                 bits flip to when requests arrive, or to trace identity). D10 runs an\n\
                 intraprocedural taint pass: values drawn from a fault generator are\n\
                 fault-tainted, assignments propagate the taint, and tainted atoms in\n\
                 a sink call's arguments are errors. The reverse direction (a SimRng\n\
                 draw seeding a FaultRng) is flagged the same way."
            }
            RuleId::U1 => {
                "U1 — unit-suffix hygiene, single expression.\n\n\
                 Identifiers carry dimension via suffix: `*_ns`/`*_us`/`*_ms` (time),\n\
                 `*_bytes` (bytes), `*_pj`/`*_nj` (energy). Adding or comparing across\n\
                 classes is meaningless and silently poisons the cost model. Raw\n\
                 capacity literals (`1 << 30`, `1024 * 1024`) belong in\n\
                 `sim/src/units.rs` as named constants. Multiplication and division\n\
                 legitimately combine dimensions and are not flagged."
            }
            RuleId::U2 => {
                "U2 — unit-suffix hygiene, interprocedural.\n\n\
                 U1 dies at the first let-binding: `let total = a_ns + b_ns;` strips\n\
                 the suffix, and `total + size_bytes` passes. U2 propagates dimensions\n\
                 through single-ident let-bindings (additive expressions preserve the\n\
                 class; any `*`//`/` makes it unknown), checks suffixed binding names\n\
                 against the dimension of their initializer, and checks call\n\
                 boundaries: an argument with a known dimension passed to a workspace\n\
                 function whose parameter name carries a different suffix is an\n\
                 error. Resolution is name-based and conservative — when multiple\n\
                 candidate callees disagree about a parameter's dimension the call is\n\
                 not checked."
            }
            RuleId::Meta => {
                "LINT — malformed mrm-lint annotation.\n\n\
                 `// mrm-lint: allow(RULE, ...) reason` and\n\
                 `// mrm-lint: allow-file(RULE) reason` must name known rules and\n\
                 carry a non-empty reason; anything else is an error so a typo can\n\
                 never silently disable a rule."
            }
        }
    }
}

/// Where a file sits in the workspace, which decides which rules apply.
#[derive(Clone, Debug, Default)]
pub struct FileCtx {
    /// Repo-relative path with forward slashes (used in diagnostics).
    pub path: String,
    /// True for crates whose code runs on the simulated timeline:
    /// sim, device, controller, tiering, workload, ecc.
    pub sim_path: bool,
    /// True for `crates/telemetry`.
    pub telemetry: bool,
    /// True for `crates/faults` (D6's scope).
    pub faults: bool,
    /// True for `crates/faults/src/rng.rs`, the one file allowed to name
    /// `SimRng` (it is the `FaultRng` wrapper that salts away from it).
    pub faults_rng_file: bool,
    /// True for library code: under `src/`, not `src/bin/`, not a
    /// test-only module file. D5 only fires here.
    pub library: bool,
    /// True for `crates/sim/src/units.rs`, the one place capacity
    /// literals are allowed to be spelled raw.
    pub units_file: bool,
    /// True for `crates/control`, the home of placement/expiry decisions.
    pub control: bool,
    /// True for the designated decision shims — the two tiering files that
    /// are allowed to name the decision API because they *forward* to
    /// `mrm-control` for compatibility (D7's scope excludes them).
    pub decision_shim: bool,
}

/// Crates whose simulation results must be bit-identical for a given seed.
pub const SIM_PATH_CRATES: [&str; 8] = [
    "sim",
    "device",
    "controller",
    "control",
    "tiering",
    "workload",
    "ecc",
    "faults",
];

/// The tiering files that forward to the `mrm-control` decision API (D7).
pub const DECISION_SHIMS: [&str; 2] = [
    "crates/tiering/src/refresh.rs",
    "crates/tiering/src/placement.rs",
];

impl FileCtx {
    /// Classifies a repo-relative path (forward slashes).
    pub fn classify(rel_path: &str) -> FileCtx {
        let parts: Vec<&str> = rel_path.split('/').collect();
        let crate_name = if parts.len() >= 2 && parts[0] == "crates" {
            Some(parts[1])
        } else {
            None
        };
        let in_src = parts.contains(&"src");
        let in_bin = rel_path.contains("/src/bin/");
        // Library code: a crate's (or the root package's) src/ tree, minus
        // binary targets. tests/, benches/ and examples/ are not libraries.
        let library = in_src
            && !in_bin
            && !parts
                .iter()
                .any(|p| *p == "tests" || *p == "benches" || *p == "examples");
        FileCtx {
            path: rel_path.to_string(),
            sim_path: crate_name.is_some_and(|c| SIM_PATH_CRATES.contains(&c)),
            telemetry: crate_name == Some("telemetry"),
            faults: crate_name == Some("faults"),
            faults_rng_file: rel_path == "crates/faults/src/rng.rs",
            library,
            units_file: rel_path == "crates/sim/src/units.rs",
            control: crate_name == Some("control"),
            decision_shim: DECISION_SHIMS.contains(&rel_path),
        }
    }
}

/// A secondary location attached to a diagnostic — one hop of a D9 call
/// chain, or the declaration a U2 dimension was propagated from. Rendered
/// as `relatedLocations`/`codeFlows` in SARIF output.
#[derive(Clone, Debug)]
pub struct RelatedSite {
    pub path: String,
    pub line: u32,
    pub note: String,
}

/// One diagnostic.
#[derive(Clone, Debug)]
pub struct Violation {
    pub rule: RuleId,
    pub path: String,
    pub line: u32,
    pub message: String,
    /// Supporting locations (empty for single-site rules).
    pub related: Vec<RelatedSite>,
}

impl Violation {
    /// The canonical `file:line RULE message` diagnostic line.
    pub fn render(&self) -> String {
        format!(
            "{}:{} {} {}",
            self.path,
            self.line,
            self.rule.as_str(),
            self.message
        )
    }
}

/// Everything the engine learned from one file.
#[derive(Debug, Default)]
pub struct FileReport {
    pub violations: Vec<Violation>,
    /// Module names declared as `#[cfg(test)] mod name;` — the walker marks
    /// the corresponding files (`name.rs` / `name/mod.rs`) as test-only so
    /// D5 skips them (e.g. `crates/sim/src/proptests.rs`).
    pub test_only_modules: Vec<String>,
}

/// Lints one file's source under the given context: the lexical rules plus
/// the single-file slice of the interprocedural analyses (D10 and U2 run on
/// a symbol table built from just this file; D9 needs the workspace — see
/// [`crate::analyze_workspace`](crate::analyze_workspace)).
pub fn lint_source(source: &str, ctx: &FileCtx) -> FileReport {
    let mut scan = scan_lexical(source, ctx);
    let table = crate::symbols::SymbolTable::build(vec![crate::symbols::FileEntry {
        parsed: crate::parse::parse_file(source),
        ctx: ctx.clone(),
    }]);
    scan.raw.extend(crate::dataflow::analyze_file(&table, 0));
    let test_only_modules = std::mem::take(&mut scan.test_only_modules);
    FileReport {
        violations: scan.finish(),
        test_only_modules,
    }
}

/// The lexical rules (D1–D8, U1) for one file, with suppression *not yet
/// applied* — the caller may add interprocedural findings to `raw` before
/// calling [`LexicalScan::finish`].
pub(crate) fn scan_lexical(source: &str, ctx: &FileCtx) -> LexicalScan {
    let tokens = lex(source);
    let allows = parse_allows(&tokens, ctx);
    let code: Vec<&Token> = tokens
        .iter()
        .filter(|t| !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment))
        .collect();
    let (in_test, test_only_modules) = test_regions(&code);

    let mut raw = Vec::new();
    scan_d1_d2_d3(&code, ctx, &mut raw);
    scan_d4(&code, ctx, &mut raw);
    scan_d5(&code, &in_test, ctx, &mut raw);
    scan_d6(&code, ctx, &mut raw);
    scan_d7(&code, ctx, &mut raw);
    scan_d8(&code, &in_test, ctx, &mut raw);
    scan_u1(&code, ctx, &mut raw);

    LexicalScan {
        raw,
        allows,
        test_only_modules,
    }
}

/// One file's lexical findings plus its suppression state.
pub(crate) struct LexicalScan {
    pub(crate) raw: Vec<Violation>,
    pub(crate) allows: Allows,
    pub(crate) test_only_modules: Vec<String>,
}

impl LexicalScan {
    /// Applies suppression, appends malformed-annotation diagnostics, and
    /// returns the file's violations sorted by (line, rule).
    pub(crate) fn finish(self) -> Vec<Violation> {
        let mut violations: Vec<Violation> = self
            .raw
            .into_iter()
            .filter(|v| !self.allows.suppresses(v.rule, v.line))
            .collect();
        violations.extend(self.allows.malformed);
        violations.sort_by_key(|a| (a.line, a.rule));
        violations
    }
}

// ---------------------------------------------------------------------------
// allow annotations
// ---------------------------------------------------------------------------

pub(crate) struct Allows {
    /// (rule, line) pairs: the annotation suppresses matches on its own line
    /// and the line directly below (so it can sit above the offending code).
    sites: Vec<(RuleId, u32)>,
    file_wide: Vec<RuleId>,
    pub(crate) malformed: Vec<Violation>,
}

impl Allows {
    pub(crate) fn suppresses(&self, rule: RuleId, line: u32) -> bool {
        self.file_wide.contains(&rule)
            || self
                .sites
                .iter()
                .any(|&(r, l)| r == rule && (l == line || l + 1 == line))
    }
}

/// Parses `// mrm-lint: allow(D2, U1) reason...` and
/// `// mrm-lint: allow-file(D5) reason...` comments.
pub(crate) fn parse_allows(tokens: &[Token], ctx: &FileCtx) -> Allows {
    let mut allows = Allows {
        sites: Vec::new(),
        file_wide: Vec::new(),
        malformed: Vec::new(),
    };
    for t in tokens {
        if !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment) {
            continue;
        }
        let Some(rest) = t.text.trim().strip_prefix("mrm-lint:") else {
            continue;
        };
        let rest = rest.trim();
        let (file_wide, rest) = if let Some(r) = rest.strip_prefix("allow-file") {
            (true, r)
        } else if let Some(r) = rest.strip_prefix("allow") {
            (false, r)
        } else {
            allows.malformed.push(Violation {
                rule: RuleId::Meta,
                path: ctx.path.clone(),
                line: t.line,
                message: format!("unknown mrm-lint directive: `{}`", rest),
                related: Vec::new(),
            });
            continue;
        };
        let bad = |msg: &str| Violation {
            rule: RuleId::Meta,
            path: ctx.path.clone(),
            line: t.line,
            message: msg.to_string(),
            related: Vec::new(),
        };
        let rest = rest.trim_start();
        let Some(inner_end) = rest.strip_prefix('(').and_then(|r| r.find(')')) else {
            allows
                .malformed
                .push(bad("allow annotation needs a rule list: allow(D2) reason"));
            continue;
        };
        let inner = &rest[1..=inner_end];
        let reason = rest[inner_end + 2..].trim();
        if reason.is_empty() {
            allows.malformed.push(bad(
                "allow annotation needs a reason: // mrm-lint: allow(RULE) why it is safe",
            ));
            continue;
        }
        let mut rules = Vec::new();
        let mut ok = true;
        for part in inner.trim_end_matches(')').split(',') {
            match RuleId::parse(part.trim()) {
                Some(r) => rules.push(r),
                None => {
                    allows.malformed.push(bad(&format!(
                        "unknown rule `{}` in allow annotation",
                        part.trim()
                    )));
                    ok = false;
                }
            }
        }
        if !ok {
            continue;
        }
        for r in rules {
            if file_wide {
                allows.file_wide.push(r);
            } else {
                allows.sites.push((r, t.line));
            }
        }
    }
    allows
}

// ---------------------------------------------------------------------------
// test-region detection
// ---------------------------------------------------------------------------

/// Returns, per code token, whether it sits inside a `#[cfg(test)]` item or a
/// `#[test]` function — plus the names of test-only out-of-line modules
/// (`#[cfg(test)] mod foo;`).
pub(crate) fn test_regions(code: &[&Token]) -> (Vec<bool>, Vec<String>) {
    let mut in_test = vec![false; code.len()];
    let mut test_mods = Vec::new();
    let mut i = 0usize;
    while i < code.len() {
        if code[i].is_punct("#") && i + 1 < code.len() && code[i + 1].is_punct("[") {
            let attr_end = match matching(code, i + 1, "[", "]") {
                Some(e) => e,
                None => break,
            };
            let is_test_attr = {
                let inner = &code[i + 2..attr_end];
                let cfg_test = inner.first().is_some_and(|t| t.is_ident("cfg"))
                    && inner.iter().any(|t| t.is_ident("test"));
                let plain_test = inner.len() == 1 && inner[0].is_ident("test");
                cfg_test || plain_test
            };
            if is_test_attr {
                // Skip any further attributes, then the item they decorate.
                let mut j = attr_end + 1;
                while j + 1 < code.len() && code[j].is_punct("#") && code[j + 1].is_punct("[") {
                    match matching(code, j + 1, "[", "]") {
                        Some(e) => j = e + 1,
                        None => break,
                    }
                }
                let item_end = item_extent(code, j, &mut test_mods);
                for flag in in_test.iter_mut().take(item_end.min(code.len())).skip(i) {
                    *flag = true;
                }
                i = item_end;
                continue;
            }
            i = attr_end + 1;
            continue;
        }
        i += 1;
    }
    (in_test, test_mods)
}

/// Index of the token matching the opener at `open_idx` (same nesting level).
pub(crate) fn matching(code: &[&Token], open_idx: usize, open: &str, close: &str) -> Option<usize> {
    let mut depth = 0i32;
    for (k, t) in code.iter().enumerate().skip(open_idx) {
        if t.is_punct(open) {
            depth += 1;
        } else if t.is_punct(close) {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

/// One past the end of the item starting at `start`: the matching `}` of its
/// first top-level brace, or its terminating `;`. Records `mod name;`
/// declarations in `test_mods`.
fn item_extent(code: &[&Token], mut start: usize, test_mods: &mut Vec<String>) -> usize {
    // Skip a `pub` / `pub(crate)` visibility prefix.
    if code.get(start).is_some_and(|t| t.is_ident("pub")) {
        start += 1;
        if code.get(start).is_some_and(|t| t.is_punct("(")) {
            start = match matching(code, start, "(", ")") {
                Some(e) => e + 1,
                None => return code.len(),
            };
        }
    }
    if start + 2 < code.len() && code[start].is_ident("mod") && code[start + 2].is_punct(";") {
        test_mods.push(code[start + 1].text.clone());
        return start + 3;
    }
    let mut k = start;
    while k < code.len() {
        if code[k].is_punct(";") {
            return k + 1;
        }
        if code[k].is_punct("{") {
            return match matching(code, k, "{", "}") {
                Some(e) => e + 1,
                None => code.len(),
            };
        }
        k += 1;
    }
    code.len()
}

// ---------------------------------------------------------------------------
// rule scanners
// ---------------------------------------------------------------------------

fn push(out: &mut Vec<Violation>, rule: RuleId, ctx: &FileCtx, line: u32, message: String) {
    out.push(Violation {
        rule,
        path: ctx.path.clone(),
        line,
        message,
        related: Vec::new(),
    });
}

/// D1 wall clock, D2 unordered maps, D3 ambient entropy — sim-path crates.
fn scan_d1_d2_d3(code: &[&Token], ctx: &FileCtx, out: &mut Vec<Violation>) {
    if !ctx.sim_path {
        return;
    }
    for t in code {
        if t.kind != TokenKind::Ident {
            continue;
        }
        match t.text.as_str() {
            "Instant" | "SystemTime" | "UNIX_EPOCH" => push(
                out,
                RuleId::D1,
                ctx,
                t.line,
                format!(
                    "wall-clock `{}` in a sim-path crate; simulations must read \
                     time from `SimTime`/`EventQueue::now` only",
                    t.text
                ),
            ),
            "HashMap" | "HashSet" => push(
                out,
                RuleId::D2,
                ctx,
                t.line,
                format!(
                    "`{}` in a sim-path crate: iteration order is nondeterministic \
                     and breaks bit-identical replay; use `BTree{}` or iterate in \
                     sorted order (annotate `// mrm-lint: allow(D2) ...` if iteration \
                     order provably never escapes)",
                    t.text,
                    &t.text[4..]
                ),
            ),
            "thread_rng" | "from_entropy" | "RandomState" | "OsRng" | "getrandom" => push(
                out,
                RuleId::D3,
                ctx,
                t.line,
                format!(
                    "`{}` is an entropy source outside `SimRng`; all randomness \
                     must come from the seeded, splittable `SimRng`",
                    t.text
                ),
            ),
            _ => {}
        }
    }
}

/// D4: telemetry is observe-only (DESIGN.md §3.8).
fn scan_d4(code: &[&Token], ctx: &FileCtx, out: &mut Vec<Violation>) {
    if !ctx.telemetry {
        return;
    }
    for t in code {
        if t.kind != TokenKind::Ident {
            continue;
        }
        if matches!(
            t.text.as_str(),
            "SimRng" | "EventQueue" | "schedule" | "schedule_after"
        ) {
            push(
                out,
                RuleId::D4,
                ctx,
                t.line,
                format!(
                    "telemetry references `{}`: sinks are observe-only — they must \
                     never draw randomness or schedule events (§3.8 determinism \
                     contract: reports are bit-identical with a sink attached)",
                    t.text
                ),
            );
        }
    }
}

/// D5: bare `unwrap()` / `expect("")` in non-test library code.
fn scan_d5(code: &[&Token], in_test: &[bool], ctx: &FileCtx, out: &mut Vec<Violation>) {
    if !ctx.library {
        return;
    }
    for i in 0..code.len() {
        if in_test[i] || !code[i].is_punct(".") {
            continue;
        }
        let Some(name) = code.get(i + 1) else {
            continue;
        };
        if !code.get(i + 2).is_some_and(|t| t.is_punct("(")) {
            continue;
        }
        if name.is_ident("unwrap") && code.get(i + 3).is_some_and(|t| t.is_punct(")")) {
            push(
                out,
                RuleId::D5,
                ctx,
                name.line,
                "bare `unwrap()` in library code: return a typed error or use \
                 `expect(\"actionable message\")`"
                    .to_string(),
            );
        } else if name.is_ident("expect")
            && code
                .get(i + 3)
                .is_some_and(|t| t.kind == TokenKind::Str && t.text.is_empty())
            && code.get(i + 4).is_some_and(|t| t.is_punct(")"))
        {
            push(
                out,
                RuleId::D5,
                ctx,
                name.line,
                "`expect(\"\")` carries no information: say what invariant failed".to_string(),
            );
        }
    }
}

/// D6: fault injection draws only from the dedicated `FaultRng` stream.
/// Inside `crates/faults`, the only file allowed to name `SimRng` is
/// `src/rng.rs` — the wrapper that derives the salted fault stream. Anywhere
/// else, naming `SimRng` means fault sampling is (or is about to be) coupled
/// to the scheduling stream, which breaks both the differential chaos test
/// (fault-rate 0 ≡ faults off) and seed-stable bit flips.
fn scan_d6(code: &[&Token], ctx: &FileCtx, out: &mut Vec<Violation>) {
    if !ctx.faults || ctx.faults_rng_file {
        return;
    }
    for t in code {
        if t.kind == TokenKind::Ident && t.text == "SimRng" {
            push(
                out,
                RuleId::D6,
                ctx,
                t.line,
                "`SimRng` named in crates/faults outside src/rng.rs: fault \
                 injection must draw from the dedicated `FaultRng` stream only \
                 (the scheduling stream must not move when faults are enabled)"
                    .to_string(),
            );
        }
    }
}

/// D7: placement/expiry decisions are confined to `mrm-control`. Sim-path
/// library code outside `crates/control` and the designated shims must not
/// name the decision API: a data-path crate spelling `retention_for` or
/// embedding an `ExpiryTracker` has grown an inline retention decision that
/// bypasses the declared-policy registry and the audit log.
fn scan_d7(code: &[&Token], ctx: &FileCtx, out: &mut Vec<Violation>) {
    if !ctx.sim_path || !ctx.library || ctx.control || ctx.decision_shim {
        return;
    }
    for t in code {
        if t.kind != TokenKind::Ident {
            continue;
        }
        if matches!(
            t.text.as_str(),
            "retention_for" | "ExpiryTracker" | "ExpiryAction"
        ) {
            push(
                out,
                RuleId::D7,
                ctx,
                t.line,
                format!(
                    "`{}` named outside mrm-control: placement/expiry decisions \
                     route through the RetentionRegistry/Reconciler so every \
                     store/drop/retire lands in the audit log",
                    t.text
                ),
            );
        }
    }
}

/// Identifiers that draw from a `SimRng`/`FaultRng` stream. A function
/// whose body names one of these is on the randomness path.
const D8_DRAW_TOKENS: [&str; 11] = [
    "next_u64",
    "next_u32",
    "next_f64",
    "gen_bool",
    "gen_range",
    "gen_range_u64",
    "gen_index",
    "shuffle",
    "sample_request",
    "next_interarrival",
    "inject_read",
];

/// Identifiers that mutate the event queue. A function whose body names
/// one of these is on the scheduling path.
const D8_QUEUE_TOKENS: [&str; 3] = ["schedule", "schedule_after", "pop"];

/// The obs hook surface: any direct touch of the tracer or profiler.
const D8_HOOK_TOKENS: [&str; 2] = ["tracer", "profiler"];

/// D8: obs hook call sites are confined off the RNG/event-queue paths.
/// Within sim-path library code, any function whose body both (a) draws
/// randomness or mutates the event queue and (b) names `tracer` or
/// `profiler` directly is a violation — handlers must observe through
/// named `obs_*` helper calls instead, so the determinism-sensitive code
/// cannot interleave observation with draws or scheduling.
fn scan_d8(code: &[&Token], in_test: &[bool], ctx: &FileCtx, out: &mut Vec<Violation>) {
    if !ctx.sim_path || !ctx.library {
        return;
    }
    let mut i = 0usize;
    while i < code.len() {
        if !code[i].is_ident("fn") || in_test.get(i).copied().unwrap_or(false) {
            i += 1;
            continue;
        }
        let name = code
            .get(i + 1)
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text.clone())
            .unwrap_or_default();
        // Find the body's opening brace; a `;` first means a bodyless
        // trait-method declaration.
        let mut j = i + 1;
        let mut open = None;
        while j < code.len() {
            if code[j].is_punct("{") {
                open = Some(j);
                break;
            }
            if code[j].is_punct(";") {
                break;
            }
            j += 1;
        }
        let Some(open) = open else {
            i = j + 1;
            continue;
        };
        let close = matching(code, open, "{", "}").unwrap_or(code.len());
        let body = &code[open..close.min(code.len())];
        let perturbs = body.iter().find(|t| {
            t.kind == TokenKind::Ident
                && (D8_DRAW_TOKENS.contains(&t.text.as_str())
                    || D8_QUEUE_TOKENS.contains(&t.text.as_str()))
        });
        if let Some(perturb) = perturbs {
            let verb = if D8_DRAW_TOKENS.contains(&perturb.text.as_str()) {
                "draws randomness"
            } else {
                "mutates the event queue"
            };
            for t in body {
                if t.kind == TokenKind::Ident && D8_HOOK_TOKENS.contains(&t.text.as_str()) {
                    push(
                        out,
                        RuleId::D8,
                        ctx,
                        t.line,
                        format!(
                            "obs hook `{}` touched inside `fn {}`, which {} via `{}`: \
                             observation is observe-only — move the hook into a \
                             dedicated obs_* helper off this path",
                            t.text, name, verb, perturb.text
                        ),
                    );
                }
            }
        }
        // Resume after the body: nested fns are rare and a second pass
        // over them would only duplicate diagnostics.
        i = close.min(code.len()) + 1;
    }
}

/// Unit-suffix class of an identifier, per the `sim/src/units.rs` conventions.
pub(crate) fn unit_class(ident: &str) -> Option<&'static str> {
    if ident.ends_with("_ns") || ident.ends_with("_us") || ident.ends_with("_ms") {
        Some("time")
    } else if ident.ends_with("_bytes") {
        Some("bytes")
    } else if ident.ends_with("_pj") || ident.ends_with("_nj") {
        Some("energy")
    } else {
        None
    }
}

pub(crate) const MIXING_OPS: [&str; 8] = ["+", "-", "<", ">", "<=", ">=", "==", "!="];
const CAPACITY_SHIFTS: [u128; 5] = [10, 20, 30, 40, 50];

/// U1: unit-suffix mixing across additive/comparison operators, and raw
/// capacity literals (`1 << 30`, `1024 * 1024`) outside `sim/src/units.rs`.
fn scan_u1(code: &[&Token], ctx: &FileCtx, out: &mut Vec<Violation>) {
    for i in 0..code.len() {
        let t = code[i];
        if t.kind != TokenKind::Punct {
            continue;
        }
        // (a) `a_ns + b_bytes`: the identifier immediately left of the
        // operator vs the last identifier of the postfix chain on the right
        // (`x.total_bytes`, `y.stats.sum_pj()`).
        if MIXING_OPS.contains(&t.text.as_str()) && i > 0 {
            let lhs = code[i - 1];
            if lhs.kind == TokenKind::Ident {
                if let (Some(lc), Some((rc, rt))) =
                    (unit_class(&lhs.text), rhs_unit_class(code, i + 1))
                {
                    if lc != rc {
                        push(
                            out,
                            RuleId::U1,
                            ctx,
                            t.line,
                            format!(
                                "`{}` ({}) {} `{}` ({}) mixes unit classes; convert \
                                 explicitly via `sim::units` before combining",
                                lhs.text, lc, t.text, rt, rc
                            ),
                        );
                    }
                }
            }
        }
        // (b) capacity literals.
        if ctx.units_file {
            continue;
        }
        if t.is_punct("<<") && i > 0 {
            if let (TokenKind::Int { .. }, TokenKind::Int { value: Some(sh) }) = (
                &code[i - 1].kind,
                code.get(i + 1)
                    .map(|t| t.kind.clone())
                    .unwrap_or(TokenKind::Punct),
            ) {
                if CAPACITY_SHIFTS.contains(&sh) {
                    push(
                        out,
                        RuleId::U1,
                        ctx,
                        t.line,
                        format!(
                            "raw capacity literal `{} << {}`: use the named constants \
                             in `mrm_sim::units` (KIB/MIB/GIB/TIB)",
                            code[i - 1].text,
                            sh
                        ),
                    );
                }
            }
        }
        if t.is_punct("*") && i > 0 {
            let is_1024 = |k: &TokenKind| matches!(k, TokenKind::Int { value: Some(1024) });
            if is_1024(&code[i - 1].kind) && code.get(i + 1).is_some_and(|r| is_1024(&r.kind)) {
                push(
                    out,
                    RuleId::U1,
                    ctx,
                    t.line,
                    "raw capacity literal `1024 * 1024`: use the named constants in \
                     `mrm_sim::units` (KIB/MIB/GIB/TIB)"
                        .to_string(),
                );
            }
        }
    }
}

/// Unit class of the right operand: walks the postfix chain
/// (`ident (:: | .) ident ...`) and returns the last identifier's class.
/// Stops at `as` so `lat_ns as f64` resolves to `lat_ns`, not `f64`.
fn rhs_unit_class(code: &[&Token], mut j: usize) -> Option<(&'static str, String)> {
    let mut last: Option<&Token> = None;
    while j < code.len() {
        let t = code[j];
        if t.is_ident("as") {
            break;
        }
        if t.kind == TokenKind::Ident {
            last = Some(t);
            j += 1;
        } else if t.is_punct(".") || t.is_punct("::") {
            j += 1;
        } else {
            break;
        }
    }
    let t = last?;
    unit_class(&t.text).map(|c| (c, t.text.clone()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx_sim() -> FileCtx {
        FileCtx {
            path: "crates/sim/src/x.rs".into(),
            sim_path: true,
            library: true,
            ..FileCtx::default()
        }
    }

    fn rules_of(report: &FileReport) -> Vec<RuleId> {
        report.violations.iter().map(|v| v.rule).collect()
    }

    #[test]
    fn classify_paths() {
        let c = FileCtx::classify("crates/tiering/src/prefix.rs");
        assert!(c.sim_path && c.library && !c.telemetry);
        let c = FileCtx::classify("crates/telemetry/src/sink.rs");
        assert!(c.telemetry && !c.sim_path);
        let c = FileCtx::classify("crates/bench/src/bin/e7_dcm.rs");
        assert!(!c.library);
        let c = FileCtx::classify("crates/sim/src/units.rs");
        assert!(c.units_file);
        let c = FileCtx::classify("tests/determinism.rs");
        assert!(!c.library && !c.sim_path);
    }

    #[test]
    fn d2_fires_on_hashmap_not_string() {
        let r = lint_source("use std::collections::HashMap;", &ctx_sim());
        assert_eq!(rules_of(&r), vec![RuleId::D2]);
        let r = lint_source(r#"let s = "HashMap";"#, &ctx_sim());
        assert!(r.violations.is_empty());
    }

    #[test]
    fn allow_suppresses_same_and_next_line() {
        let src = "// mrm-lint: allow(D2) sorted before iteration\n\
                   use std::collections::HashMap;\n";
        let r = lint_source(src, &ctx_sim());
        assert!(r.violations.is_empty(), "{:?}", r.violations);
        // Wrong rule in the annotation does not suppress.
        let src = "// mrm-lint: allow(D1) wrong rule\nuse std::collections::HashMap;\n";
        let r = lint_source(src, &ctx_sim());
        assert_eq!(rules_of(&r), vec![RuleId::D2]);
    }

    #[test]
    fn allow_without_reason_is_malformed() {
        let src = "// mrm-lint: allow(D2)\nuse std::collections::HashMap;\n";
        let r = lint_source(src, &ctx_sim());
        assert!(rules_of(&r).contains(&RuleId::Meta));
        assert!(
            rules_of(&r).contains(&RuleId::D2),
            "malformed allow must not suppress"
        );
    }

    #[test]
    fn d5_skips_cfg_test_and_records_test_mods() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n\
                   #[cfg(test)]\nmod tests {\n  fn g() { None::<u32>.unwrap(); }\n}\n\
                   #[cfg(test)]\nmod proptests;\n";
        let r = lint_source(src, &ctx_sim());
        assert_eq!(rules_of(&r), vec![RuleId::D5]);
        assert_eq!(r.violations[0].line, 1);
        assert_eq!(r.test_only_modules, vec!["proptests".to_string()]);
    }

    #[test]
    fn d5_expect_empty_vs_actionable() {
        let r = lint_source("fn f() { o().expect(\"\"); }", &ctx_sim());
        assert_eq!(rules_of(&r), vec![RuleId::D5]);
        let r = lint_source(
            "fn f() { o().expect(\"queue non-empty by invariant\"); }",
            &ctx_sim(),
        );
        assert!(r.violations.is_empty());
    }

    #[test]
    fn u1_mixing_and_literals() {
        let r = lint_source("let x = lat_ns + size_bytes;", &ctx_sim());
        assert_eq!(rules_of(&r), vec![RuleId::U1]);
        let r = lint_source("let x = read_ns + decode_ns;", &ctx_sim());
        assert!(r.violations.is_empty(), "same class is fine");
        let r = lint_source("let x = lat_ns * per_ns_pj;", &ctx_sim());
        assert!(
            r.violations.is_empty(),
            "multiplication legitimately mixes units"
        );
        let r = lint_source("let e_pj = total_pj + dev.stats.sum_bytes;", &ctx_sim());
        assert_eq!(rules_of(&r), vec![RuleId::U1], "postfix chain rhs");
        let r = lint_source("let g = 1u64 << 30;", &ctx_sim());
        assert_eq!(rules_of(&r), vec![RuleId::U1]);
        let r = lint_source("let m = 1024 * 1024;", &ctx_sim());
        assert_eq!(rules_of(&r), vec![RuleId::U1]);
        let r = lint_source("let flags = 1 << 3;", &ctx_sim());
        assert!(r.violations.is_empty(), "small shifts are not capacities");
        let units = FileCtx::classify("crates/sim/src/units.rs");
        let r = lint_source("pub const GIB: u64 = 1 << 30;", &units);
        assert!(r.violations.is_empty(), "units.rs is the one allowed home");
    }

    #[test]
    fn d4_in_telemetry_only() {
        let tele = FileCtx::classify("crates/telemetry/src/sink.rs");
        let r = lint_source("use mrm_sim::SimRng;", &tele);
        assert_eq!(rules_of(&r), vec![RuleId::D4]);
        let r = lint_source(
            "use mrm_sim::SimRng;",
            &FileCtx::classify("crates/bench/src/lib.rs"),
        );
        assert!(r.violations.is_empty());
    }

    #[test]
    fn d6_in_faults_crate_outside_rng_file() {
        let model = FileCtx::classify("crates/faults/src/model.rs");
        assert!(model.faults && model.sim_path && !model.faults_rng_file);
        let r = lint_source("use mrm_sim::rng::SimRng;", &model);
        assert_eq!(rules_of(&r), vec![RuleId::D6]);
        // The FaultRng wrapper is the one allowed home.
        let rng = FileCtx::classify("crates/faults/src/rng.rs");
        assert!(rng.faults_rng_file);
        let r = lint_source("use mrm_sim::rng::SimRng;", &rng);
        assert!(r.violations.is_empty());
        // Other crates are out of D6's scope.
        let r = lint_source(
            "use mrm_sim::rng::SimRng;",
            &FileCtx::classify("crates/sweep/src/lib.rs"),
        );
        assert!(r.violations.is_empty());
    }

    #[test]
    fn d7_confines_decision_api_to_control_and_shims() {
        // Data-path crate naming the decision API: violation.
        let r = lint_source("let t = ExpiryTracker::new();", &ctx_sim());
        assert_eq!(rules_of(&r), vec![RuleId::D7]);
        let r = lint_source("let r = policy.retention_for(c, h, n, m);", &ctx_sim());
        assert_eq!(rules_of(&r), vec![RuleId::D7]);
        // The control crate is the decision API's home.
        let control = FileCtx::classify("crates/control/src/expiry.rs");
        assert!(control.control && control.sim_path);
        let r = lint_source("pub struct ExpiryTracker;", &control);
        assert!(r.violations.is_empty());
        // The designated shims forward to it.
        for shim in DECISION_SHIMS {
            let c = FileCtx::classify(shim);
            assert!(c.decision_shim, "{shim}");
            let r = lint_source("pub use mrm_control::expiry::ExpiryTracker;", &c);
            assert!(r.violations.is_empty(), "{shim}");
        }
        // Tests and bins sit outside D7's library scope.
        let r = lint_source(
            "use mrm::tiering::refresh::ExpiryTracker;",
            &FileCtx::classify("tests/fault_invariants.rs"),
        );
        assert!(r.violations.is_empty());
    }

    #[test]
    fn d8_confines_obs_hooks_off_rng_and_queue_paths() {
        // Hook inside an RNG-drawing function: violation.
        let r = lint_source(
            "fn h(&mut self) { let x = self.rng.gen_bool(0.5); \
             if let Some(o) = self.obs.as_mut() { o.tracer.instant(); } }",
            &ctx_sim(),
        );
        assert_eq!(rules_of(&r), vec![RuleId::D8]);
        // Hook inside a queue-mutating function: violation.
        let r = lint_source(
            "fn h(&mut self) { self.queue.schedule(t, ev); o.profiler.enter(\"x\"); }",
            &ctx_sim(),
        );
        assert_eq!(rules_of(&r), vec![RuleId::D8]);
        // Observing through a named obs_* helper is the sanctioned pattern.
        let r = lint_source(
            "fn h(&mut self) { self.queue.schedule(t, ev); self.obs_admit(now, acc); }",
            &ctx_sim(),
        );
        assert!(r.violations.is_empty(), "{:?}", r.violations);
        // A helper that only observes may name the tracer freely.
        let r = lint_source(
            "fn obs_admit(&mut self) { if let Some(o) = self.obs.as_mut() { o.tracer.begin(); } }",
            &ctx_sim(),
        );
        assert!(r.violations.is_empty(), "{:?}", r.violations);
        // Test regions are out of scope (assertions, not hot paths).
        let r = lint_source(
            "#[cfg(test)]\nmod tests {\n fn t() { q.pop(); obs.tracer.total(); }\n}\n",
            &ctx_sim(),
        );
        assert!(r.violations.is_empty(), "{:?}", r.violations);
        // Non-sim-path crates are out of D8's scope.
        let r = lint_source(
            "fn h() { q.pop(); o.tracer.finish(t); }",
            &FileCtx::classify("crates/bench/src/lib.rs"),
        );
        assert!(r.violations.is_empty());
    }

    #[test]
    fn d1_d3_fire_in_sim_path() {
        let r = lint_source("let t = Instant::now();", &ctx_sim());
        assert_eq!(rules_of(&r), vec![RuleId::D1]);
        let r = lint_source("let mut rng = thread_rng();", &ctx_sim());
        assert_eq!(rules_of(&r), vec![RuleId::D3]);
        let bench = FileCtx::classify("crates/bench/benches/device_ops.rs");
        let r = lint_source("let t = Instant::now();", &bench);
        assert!(r.violations.is_empty(), "bench harness may time things");
    }
}
