//! The workspace symbol table: every `fn` item from every file, flattened
//! into one arena with name-based indexes.
//!
//! Resolution in [`crate::callgraph`] is conservative class-hierarchy
//! analysis over names — no type inference — so the table's job is just to
//! answer "which workspace functions could this name refer to" quickly:
//! free functions by bare name, methods by method name, and `Type::method`
//! pairs by qualified name. Only *library* files contribute definitions
//! (tests, benches, examples, and bins call into the workspace but are not
//! called from it); entry-point discovery for D9 also reads this table.

use std::collections::BTreeMap;

use crate::parse::{FnItem, ParsedFile};
use crate::rules::FileCtx;

/// Index of a function in the [`SymbolTable`] arena.
pub type FnId = usize;

/// One function definition with its file of origin.
#[derive(Clone, Debug)]
pub struct FnDef {
    pub item: FnItem,
    /// Repo-relative path of the defining file.
    pub path: String,
    /// Crate the file belongs to (`crates/<name>/…` → `name`; the root
    /// package's own `src`/`tests` trees → `root`).
    pub crate_name: String,
    /// Arena index of the file this fn came from, for body-token access.
    pub file: usize,
}

/// One parsed file plus its lint context.
#[derive(Debug)]
pub struct FileEntry {
    pub parsed: ParsedFile,
    pub ctx: FileCtx,
}

/// The flattened workspace symbol table.
#[derive(Debug, Default)]
pub struct SymbolTable {
    pub files: Vec<FileEntry>,
    pub fns: Vec<FnDef>,
    /// Free functions (no self type) by bare name.
    by_free_name: BTreeMap<String, Vec<FnId>>,
    /// Methods (fns with a self type) by method name.
    by_method_name: BTreeMap<String, Vec<FnId>>,
    /// `(self_ty, name)` pairs for `Type::method` path calls.
    by_qual: BTreeMap<(String, String), Vec<FnId>>,
}

/// Crate name for a repo-relative path.
pub fn crate_of(rel_path: &str) -> String {
    let mut parts = rel_path.split('/');
    match (parts.next(), parts.next()) {
        (Some("crates"), Some(name)) => name.to_string(),
        _ => "root".to_string(),
    }
}

impl SymbolTable {
    /// Builds the table from parsed files. Definitions are taken only from
    /// library files; every file is retained for body access.
    pub fn build(files: Vec<FileEntry>) -> SymbolTable {
        let mut table = SymbolTable {
            files,
            ..SymbolTable::default()
        };
        for file_idx in 0..table.files.len() {
            let entry = &table.files[file_idx];
            if !entry.ctx.library {
                continue;
            }
            let path = entry.ctx.path.clone();
            let crate_name = crate_of(&path);
            for item in entry.parsed.fns.clone() {
                let id = table.fns.len();
                match &item.self_ty {
                    Some(ty) => {
                        table
                            .by_method_name
                            .entry(item.name.clone())
                            .or_default()
                            .push(id);
                        table
                            .by_qual
                            .entry((ty.clone(), item.name.clone()))
                            .or_default()
                            .push(id);
                    }
                    None => {
                        table
                            .by_free_name
                            .entry(item.name.clone())
                            .or_default()
                            .push(id);
                    }
                }
                table.fns.push(FnDef {
                    item,
                    path: path.clone(),
                    crate_name: crate_name.clone(),
                    file: file_idx,
                });
            }
        }
        table
    }

    /// Free functions named `name`, workspace-wide.
    pub fn free_fns(&self, name: &str) -> &[FnId] {
        self.by_free_name.get(name).map_or(&[], |v| v)
    }

    /// Methods named `name` on any type, workspace-wide.
    pub fn methods(&self, name: &str) -> &[FnId] {
        self.by_method_name.get(name).map_or(&[], |v| v)
    }

    /// Methods matching a `Type::name` qualified path.
    pub fn qual_fns(&self, self_ty: &str, name: &str) -> &[FnId] {
        self.by_qual
            .get(&(self_ty.to_string(), name.to_string()))
            .map_or(&[], |v| v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_file;

    fn entry(path: &str, src: &str) -> FileEntry {
        FileEntry {
            parsed: parse_file(src),
            ctx: FileCtx::classify(path),
        }
    }

    #[test]
    fn crate_names() {
        assert_eq!(crate_of("crates/sim/src/event.rs"), "sim");
        assert_eq!(crate_of("src/lib.rs"), "root");
        assert_eq!(crate_of("tests/determinism.rs"), "root");
    }

    #[test]
    fn indexes_split_free_fns_and_methods() {
        let t = SymbolTable::build(vec![
            entry(
                "crates/sim/src/lib.rs",
                "pub fn run() {}\nimpl Sim { pub fn run(&mut self) {} }\n",
            ),
            entry("crates/util/src/lib.rs", "pub fn helper() {}\n"),
        ]);
        assert_eq!(t.fns.len(), 3);
        assert_eq!(t.free_fns("run").len(), 1);
        assert_eq!(t.methods("run").len(), 1);
        assert_eq!(t.qual_fns("Sim", "run").len(), 1);
        assert_eq!(t.qual_fns("Sim", "helper").len(), 0);
        assert_eq!(t.fns[t.free_fns("helper")[0]].crate_name, "util");
    }

    #[test]
    fn non_library_files_contribute_no_definitions() {
        let t = SymbolTable::build(vec![entry("tests/smoke.rs", "fn helper() {}\n")]);
        assert_eq!(t.fns.len(), 0);
        assert_eq!(t.files.len(), 1, "file is still retained");
    }
}
