//! The interprocedural analyses: D9 (transitive determinism over the call
//! graph), D10 (RNG stream-separation taint), and U2 (unit-dimension
//! propagation).
//!
//! All three are deliberately conservative over-approximations driven by
//! names, not types (DESIGN.md §6.2 spells out the limits):
//!
//! * **D9** walks the call graph from sim entry points and flags paths
//!   that reach a forbidden-sink function in a non-sim crate. Sinks inside
//!   sim-path crates are excluded — the lexical D1–D3 already own those —
//!   as are the observe-only crates (`obs`, `telemetry`), whose contracts
//!   (D4/D8 plus the byte-identity smokes) pin that they cannot perturb a
//!   run and whose wall profiler reads wall-clock *by design*.
//! * **D10** runs per function: values drawn from a `FaultRng` are
//!   fault-tainted, single-assignment propagation carries the taint
//!   through locals, and a tainted atom inside a sink call (`SimRng`
//!   seeding, event scheduling, `TraceId` derivation) is an error. The
//!   symmetric direction (a `SimRng` draw seeding a `FaultRng`) is flagged
//!   the same way.
//! * **U2** seeds a per-function dimension environment from parameter-name
//!   suffixes, propagates through single-ident let-bindings (additive
//!   expressions preserve the class; `*`, `/`, `%`, or an unresolved call
//!   make it unknown), and checks mixing operators and call boundaries.

use std::collections::{BTreeMap, BTreeSet};

use crate::callgraph::{call_sites, renames_of, resolve, CallGraph, CallSite};
use crate::lexer::{Token, TokenKind};
use crate::rules::{unit_class, RelatedSite, RuleId, Violation, MIXING_OPS};
use crate::symbols::{FnDef, FnId, SymbolTable};

// ---------------------------------------------------------------------------
// shared token helpers
// ---------------------------------------------------------------------------

/// Index of the token matching the opener at `open_idx` (owned-token slice
/// counterpart of `rules::matching`).
fn matching(code: &[Token], open_idx: usize, open: &str, close: &str) -> Option<usize> {
    let mut depth = 0i32;
    for (k, t) in code.iter().enumerate().skip(open_idx) {
        if t.is_punct(open) {
            depth += 1;
        } else if t.is_punct(close) {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

/// End (exclusive) of the statement starting at `from`: the first `;` at
/// bracket depth zero, or `to` if none.
fn stmt_end(code: &[Token], from: usize, to: usize) -> usize {
    let mut depth = 0i32;
    for (k, t) in code.iter().enumerate().take(to).skip(from) {
        if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
            depth += 1;
        } else if t.is_punct(")") || t.is_punct("]") || t.is_punct("}") {
            if depth == 0 {
                return k;
            }
            depth -= 1;
        } else if t.is_punct(";") && depth == 0 {
            return k;
        }
    }
    to
}

fn seq3(code: &[Token], i: usize, a: &str, b: &str, c: &str) -> bool {
    code.get(i).is_some_and(|t| t.is_ident(a))
        && code.get(i + 1).is_some_and(|t| t.is_punct(b))
        && code.get(i + 2).is_some_and(|t| t.is_ident(c))
}

// ---------------------------------------------------------------------------
// D9 — transitive determinism
// ---------------------------------------------------------------------------

/// Sim entry-point names: the surfaces the event loop and the harness call
/// into. Anything transitively reachable from one of these runs on the
/// simulated timeline.
fn is_entry_name(name: &str) -> bool {
    name.starts_with("run")
        || name.starts_with("on_")
        || name.starts_with("handle")
        || name.starts_with("read")
        || name.starts_with("write")
        || matches!(name, "dispatch" | "tick" | "step")
}

/// Sim-path functions D9 treats as roots of the reachability walk.
pub fn entry_points(table: &SymbolTable) -> Vec<FnId> {
    table
        .fns
        .iter()
        .enumerate()
        .filter(|(_, d)| {
            table.files[d.file].ctx.sim_path && !d.item.is_test && is_entry_name(&d.item.name)
        })
        .map(|(id, _)| id)
        .collect()
}

#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
enum SinkKind {
    WallClock,
    Entropy,
    UnorderedIter,
}

impl SinkKind {
    fn describe(self) -> &'static str {
        match self {
            SinkKind::WallClock => "wall-clock time",
            SinkKind::Entropy => "ambient entropy",
            SinkKind::UnorderedIter => "unordered HashMap/HashSet iteration",
        }
    }
}

const WALL_CLOCK_IDENTS: [&str; 3] = ["Instant", "SystemTime", "UNIX_EPOCH"];
const ENTROPY_IDENTS: [&str; 5] = [
    "thread_rng",
    "from_entropy",
    "OsRng",
    "getrandom",
    "RandomState",
];
const ITER_IDENTS: [&str; 8] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "retain",
];

/// Forbidden sinks inside one function's body — only in non-sim,
/// non-observe-only crates (see the module doc for why those are excluded).
/// Returns at most one site per kind.
fn sinks_in(table: &SymbolTable, id: FnId) -> Vec<(SinkKind, u32, String)> {
    let def = &table.fns[id];
    let ctx = &table.files[def.file].ctx;
    if ctx.sim_path || matches!(def.crate_name.as_str(), "obs" | "telemetry") {
        return Vec::new();
    }
    let code = &table.files[def.file].parsed.code;
    let body = &code[def.item.body.clone()];
    let mut out: Vec<(SinkKind, u32, String)> = Vec::new();
    let mut push = |kind: SinkKind, line: u32, tok: &str| {
        if !out.iter().any(|(k, _, _)| *k == kind) {
            out.push((kind, line, tok.to_string()));
        }
    };
    let has_unordered_map = body
        .iter()
        .any(|t| t.is_ident("HashMap") || t.is_ident("HashSet"));
    for t in body {
        if t.kind != TokenKind::Ident {
            continue;
        }
        let name = t.text.as_str();
        if WALL_CLOCK_IDENTS.contains(&name) {
            push(SinkKind::WallClock, t.line, name);
        } else if ENTROPY_IDENTS.contains(&name) {
            push(SinkKind::Entropy, t.line, name);
        } else if has_unordered_map && ITER_IDENTS.contains(&name) {
            push(SinkKind::UnorderedIter, t.line, name);
        }
    }
    out.sort_by_key(|(k, _, _)| *k);
    out
}

/// D9: reachability from sim entry points to forbidden sinks, reported with
/// the full call chain. The diagnostic anchors on the *first edge out of
/// the entry point* — the commitment point where the sim path leaves the
/// entry function — so an `allow(D9)` annotation sits next to the call that
/// starts the chain.
pub fn analyze_d9(table: &SymbolTable, graph: &CallGraph) -> Vec<Violation> {
    let entries = entry_points(table);
    let parent = graph.reachable_from(&entries);
    let mut out = Vec::new();
    for &id in parent.keys() {
        for (kind, sink_line, sink_tok) in sinks_in(table, id) {
            let chain = graph.chain_to(&parent, id);
            // Entries live in sim-path crates and sinks are excluded there,
            // so a chain always has an entry distinct from the sink.
            let Some((entry_id, _)) = chain.first() else {
                continue;
            };
            let Some((_, Some(first_edge))) = chain.get(1) else {
                continue;
            };
            let entry = &table.fns[*entry_id];
            let sink = &table.fns[id];
            let mut hops = format!("`{}`", entry.item.qual());
            let mut related = Vec::new();
            for (hop_id, edge) in chain.iter().skip(1) {
                let hop = &table.fns[*hop_id];
                let edge = edge.as_ref().expect("non-root chain hops have an edge");
                hops.push_str(&format!(
                    " -> `{}` ({}:{})",
                    hop.item.qual(),
                    hop.path,
                    hop.item.line
                ));
                related.push(RelatedSite {
                    path: table.fns[*hop_id].path.clone(),
                    line: hop.item.line,
                    note: format!(
                        "reached via call `{}` at line {}",
                        edge.call_repr, edge.line
                    ),
                });
            }
            related.push(RelatedSite {
                path: sink.path.clone(),
                line: sink_line,
                note: format!("{} via `{sink_tok}` here", kind.describe()),
            });
            out.push(Violation {
                rule: RuleId::D9,
                path: entry.path.clone(),
                line: first_edge.line,
                message: format!(
                    "sim entry `{}` transitively reaches {} (`{}` in `{}`, {}:{}): {} — \
                     results stop being a pure function of (config, seed)",
                    entry.item.qual(),
                    kind.describe(),
                    sink_tok,
                    sink.item.qual(),
                    sink.path,
                    sink_line,
                    hops
                ),
                related,
            });
        }
    }
    out
}

// ---------------------------------------------------------------------------
// D10 — RNG stream-separation taint
// ---------------------------------------------------------------------------

#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
enum Stream {
    Fault,
    Sim,
}

impl Stream {
    fn name(self) -> &'static str {
        match self {
            Stream::Fault => "FaultRng",
            Stream::Sim => "SimRng",
        }
    }
}

/// Methods that draw a value from a generator.
const DRAW_METHODS: [&str; 7] = [
    "next_u64",
    "next_u32",
    "next_f64",
    "gen_range",
    "gen_range_u64",
    "gen_index",
    "gen_bool",
];

/// Which stream an identifier names a generator of: tracked bindings first,
/// then the naming convention (`fault_rng` / `sim_rng`).
fn gen_of(name: &str, gens: &BTreeMap<String, Stream>) -> Option<Stream> {
    if let Some(&k) = gens.get(name) {
        return Some(k);
    }
    if name.contains("fault_rng") {
        return Some(Stream::Fault);
    }
    if name.contains("sim_rng") {
        return Some(Stream::Sim);
    }
    None
}

/// Streams whose values appear in `expr`: tainted locals, plus direct
/// draws (`gen.next_u64()` inside the expression). Returns each stream with
/// the identifier that carried it, for diagnostics.
fn expr_taint(
    expr: &[Token],
    gens: &BTreeMap<String, Stream>,
    taints: &BTreeMap<String, Stream>,
) -> BTreeMap<Stream, String> {
    let mut found = BTreeMap::new();
    for (j, t) in expr.iter().enumerate() {
        if t.kind != TokenKind::Ident {
            continue;
        }
        if let Some(&k) = taints.get(&t.text) {
            found.entry(k).or_insert_with(|| t.text.clone());
        }
        let is_draw = expr.get(j + 1).is_some_and(|d| d.is_punct("."))
            && expr
                .get(j + 2)
                .is_some_and(|m| DRAW_METHODS.contains(&m.text.as_str()));
        if is_draw {
            if let Some(k) = gen_of(&t.text, gens) {
                found
                    .entry(k)
                    .or_insert_with(|| format!("{}.{}", t.text, expr[j + 2].text));
            }
        }
    }
    found
}

/// D10 for one function: forward single-pass taint over statements.
fn d10_fn(table: &SymbolTable, def: &FnDef, out: &mut Vec<Violation>) {
    let file = &table.files[def.file];
    let code = &file.parsed.code;
    let body = def.item.body.clone();
    let mut gens: BTreeMap<String, Stream> = BTreeMap::new();
    let mut taints: BTreeMap<String, Stream> = BTreeMap::new();

    let mut sink = |line: u32, what: &str, stream: Stream, carrier: &str| {
        out.push(Violation {
            rule: RuleId::D10,
            path: file.ctx.path.clone(),
            line,
            message: format!(
                "{}-derived value `{carrier}` flows into {what} in `{}`: the fault \
                 stream and the scheduling stream must stay independent (same seed, \
                 same schedule, same flipped bits)",
                stream.name(),
                def.item.qual(),
            ),
            related: Vec::new(),
        });
    };

    let mut i = body.start;
    while i < body.end {
        let t = &code[i];
        // Sink heads. Args run from the `(` after the head to its match.
        let args_of = |open: usize| -> &[Token] {
            match matching(code, open, "(", ")") {
                Some(close) if close <= body.end => &code[open + 1..close],
                _ => &code[open + 1..body.end.min(code.len())],
            }
        };
        if seq3(code, i, "SimRng", "::", "seed_from")
            && code.get(i + 3).is_some_and(|p| p.is_punct("("))
        {
            let found = expr_taint(args_of(i + 3), &gens, &taints);
            if let Some(carrier) = found.get(&Stream::Fault) {
                sink(
                    code[i + 2].line,
                    "`SimRng::seed_from`",
                    Stream::Fault,
                    carrier,
                );
            }
        } else if seq3(code, i, "FaultRng", "::", "for_seed")
            && code.get(i + 3).is_some_and(|p| p.is_punct("("))
        {
            let found = expr_taint(args_of(i + 3), &gens, &taints);
            if let Some(carrier) = found.get(&Stream::Sim) {
                sink(
                    code[i + 2].line,
                    "`FaultRng::for_seed`",
                    Stream::Sim,
                    carrier,
                );
            }
        } else if (t.is_ident("schedule") || t.is_ident("schedule_after"))
            && i > body.start
            && code[i - 1].is_punct(".")
            && code.get(i + 1).is_some_and(|p| p.is_punct("("))
        {
            let found = expr_taint(args_of(i + 1), &gens, &taints);
            if let Some(carrier) = found.get(&Stream::Fault) {
                sink(
                    t.line,
                    &format!("event scheduling (`{}`)", t.text),
                    Stream::Fault,
                    carrier,
                );
            }
        } else if t.is_ident("TraceId")
            && (code.get(i + 1).is_some_and(|p| p.is_punct("("))
                || (code.get(i + 1).is_some_and(|p| p.is_punct("::"))
                    && code.get(i + 2).is_some_and(|m| m.is_ident("derive"))
                    && code.get(i + 3).is_some_and(|p| p.is_punct("("))))
        {
            let open = if code[i + 1].is_punct("(") {
                i + 1
            } else {
                i + 3
            };
            let found = expr_taint(args_of(open), &gens, &taints);
            if let Some(carrier) = found.get(&Stream::Fault) {
                sink(t.line, "`TraceId` derivation", Stream::Fault, carrier);
            }
        }

        // Bindings: `let [mut] name [: ty] = expr ;` and `name = expr ;`.
        let binding = if t.is_ident("let") {
            let mut j = i + 1;
            if code.get(j).is_some_and(|m| m.is_ident("mut")) {
                j += 1;
            }
            code.get(j)
                .filter(|n| n.kind == TokenKind::Ident)
                .map(|n| (n.text.clone(), j + 1))
        } else if t.kind == TokenKind::Ident
            && code.get(i + 1).is_some_and(|e| e.is_punct("="))
            && (i == body.start || !code[i - 1].is_punct("."))
        {
            Some((t.text.clone(), i + 1))
        } else {
            None
        };
        if let Some((name, after_name)) = binding {
            let end = stmt_end(code, after_name, body.end);
            let eq = (after_name..end).find(|&k| code[k].is_punct("="));
            if let Some(eq) = eq {
                let rhs = &code[eq + 1..end];
                let has = |k: usize, a: &str, b: &str, c: &str| seq3(rhs, k, a, b, c);
                let mut new_gen = None;
                for k in 0..rhs.len() {
                    if has(k, "FaultRng", "::", "for_seed") {
                        new_gen = Some(Stream::Fault);
                        break;
                    }
                    if has(k, "SimRng", "::", "seed_from") {
                        new_gen = Some(Stream::Sim);
                        break;
                    }
                    // `let child = parent.split();` forks the same stream.
                    if rhs[k].kind == TokenKind::Ident
                        && rhs.get(k + 1).is_some_and(|d| d.is_punct("."))
                        && rhs.get(k + 2).is_some_and(|m| m.is_ident("split"))
                    {
                        if let Some(g) = gen_of(&rhs[k].text, &gens) {
                            new_gen = Some(g);
                            break;
                        }
                    }
                }
                gens.remove(&name);
                taints.remove(&name);
                if let Some(g) = new_gen {
                    gens.insert(name, g);
                } else {
                    let found = expr_taint(rhs, &gens, &taints);
                    // A value touched by the fault stream stays fault-
                    // tainted even if sim values are mixed in.
                    if let Some((&k, _)) = found.iter().next() {
                        taints.insert(name, k);
                    }
                }
            }
        }
        i += 1;
    }
}

// ---------------------------------------------------------------------------
// U2 — interprocedural units
// ---------------------------------------------------------------------------

/// Dimension class of a single atom: a bare local (tracked dims apply), a
/// suffixed postfix chain (`dev.stats.sum_pj`), a whole-expression call
/// (`to_ns(...)`, `x.total_bytes()`), or a cast (`lat_ns as f64`). `None`
/// when the expression is anything more compound.
fn single_atom_class(
    expr: &[Token],
    dims: &BTreeMap<String, &'static str>,
) -> Option<(&'static str, String)> {
    let mut j = 0;
    // Leading borrows do not change the dimension.
    while expr
        .get(j)
        .is_some_and(|t| t.is_punct("&") || t.is_ident("mut"))
    {
        j += 1;
    }
    let first = expr.get(j).filter(|t| t.kind == TokenKind::Ident)?;
    let mut last = first;
    let mut chain_len = 1usize;
    j += 1;
    while j + 1 < expr.len()
        && (expr[j].is_punct(".") || expr[j].is_punct("::"))
        && expr[j + 1].kind == TokenKind::Ident
    {
        last = &expr[j + 1];
        chain_len += 1;
        j += 2;
    }
    let whole = if j == expr.len() {
        true
    } else if expr[j].is_punct("(") {
        // A call spanning the rest of the expression: dimension comes from
        // the called name's suffix (`to_ns(...)` returns time).
        matching(expr, j, "(", ")") == Some(expr.len() - 1)
    } else {
        // A cast: `lat_ns as f64` keeps lat_ns's dimension.
        expr[j].is_ident("as")
    };
    if !whole {
        return None;
    }
    if let Some(c) = unit_class(&last.text) {
        return Some((c, last.text.clone()));
    }
    if chain_len == 1 && j == expr.len() {
        if let Some(&c) = dims.get(&first.text) {
            return Some((c, first.text.clone()));
        }
    }
    None
}

/// Dimension of a let-initializer. `None` (unknown) as soon as the
/// expression multiplies/divides or calls something unresolved; otherwise
/// the single class its atoms agree on.
fn infer_dim(expr: &[Token], dims: &BTreeMap<String, &'static str>) -> Option<&'static str> {
    if let Some((c, _)) = single_atom_class(expr, dims) {
        return Some(c);
    }
    let mut classes: BTreeSet<&'static str> = BTreeSet::new();
    for (j, t) in expr.iter().enumerate() {
        if t.is_punct("*") || t.is_punct("/") || t.is_punct("%") {
            return None;
        }
        if t.kind == TokenKind::Ident && expr.get(j + 1).is_some_and(|p| p.is_punct("(")) {
            return None;
        }
        if t.kind == TokenKind::Ident {
            if let Some(c) = unit_class(&t.text).or_else(|| dims.get(&t.text).copied()) {
                classes.insert(c);
            }
        }
    }
    if classes.len() == 1 {
        classes.into_iter().next()
    } else {
        None
    }
}

/// Class of the operand ending at `i` (the token left of an operator):
/// suffix of the identifier, or a tracked local. Returns (class, name,
/// from_suffix).
fn operand_class_left(
    code: &[Token],
    i: usize,
    dims: &BTreeMap<String, &'static str>,
) -> Option<(&'static str, String, bool)> {
    let t = code.get(i)?;
    if t.kind != TokenKind::Ident {
        return None;
    }
    if let Some(c) = unit_class(&t.text) {
        return Some((c, t.text.clone(), true));
    }
    dims.get(&t.text).map(|&c| (c, t.text.clone(), false))
}

/// Class of the operand starting at `j` (right of an operator): walks the
/// postfix chain for a suffixed tail, falling back to a tracked single
/// local.
fn operand_class_right(
    code: &[Token],
    mut j: usize,
    end: usize,
    dims: &BTreeMap<String, &'static str>,
) -> Option<(&'static str, String, bool)> {
    let first = code.get(j).filter(|t| t.kind == TokenKind::Ident)?;
    let mut last = first;
    let mut chain_len = 1usize;
    j += 1;
    while j + 1 < end
        && (code[j].is_punct(".") || code[j].is_punct("::"))
        && code[j + 1].kind == TokenKind::Ident
    {
        last = &code[j + 1];
        chain_len += 1;
        j += 2;
    }
    if let Some(c) = unit_class(&last.text) {
        return Some((c, last.text.clone(), true));
    }
    if chain_len == 1 {
        if let Some(&c) = dims.get(&first.text) {
            return Some((c, first.text.clone(), false));
        }
    }
    None
}

/// Splits a call's argument tokens at top-level commas.
fn split_args(args: &[Token]) -> Vec<&[Token]> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut start = 0usize;
    for (k, t) in args.iter().enumerate() {
        if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
            depth += 1;
        } else if t.is_punct(")") || t.is_punct("]") || t.is_punct("}") {
            depth -= 1;
        } else if t.is_punct(",") && depth == 0 {
            out.push(&args[start..k]);
            start = k + 1;
        }
    }
    if start < args.len() {
        out.push(&args[start..]);
    }
    out
}

/// U2 for one function.
fn u2_fn(
    table: &SymbolTable,
    def: &FnDef,
    renames: &BTreeMap<String, String>,
    out: &mut Vec<Violation>,
) {
    let file = &table.files[def.file];
    let code = &file.parsed.code;
    let body = def.item.body.clone();
    // Dimension environment, seeded from suffixed parameter names (their
    // suffix already speaks for itself; tracking them would only duplicate
    // U1) — so the map holds *propagated* classes for unsuffixed locals.
    let mut dims: BTreeMap<String, &'static str> = BTreeMap::new();
    let sites: BTreeMap<usize, CallSite> = call_sites(code, body.clone())
        .into_iter()
        .map(|s| (s.name_idx, s))
        .collect();

    let mut i = body.start;
    while i < body.end {
        let t = &code[i];
        // (a) let-binding propagation and suffixed-binding checks.
        if t.is_ident("let") {
            let mut j = i + 1;
            if code.get(j).is_some_and(|m| m.is_ident("mut")) {
                j += 1;
            }
            if let Some(name) = code.get(j).filter(|n| n.kind == TokenKind::Ident) {
                let end = stmt_end(code, j + 1, body.end);
                if let Some(eq) = (j + 1..end).find(|&k| code[k].is_punct("=")) {
                    let rhs = &code[eq + 1..end];
                    let d = infer_dim(rhs, &dims);
                    match (unit_class(&name.text), d) {
                        (Some(nc), Some(c)) if nc != c => out.push(Violation {
                            rule: RuleId::U2,
                            path: file.ctx.path.clone(),
                            line: name.line,
                            message: format!(
                                "binding `{}` is named as {nc} but its initializer has \
                                 dimension {c}; rename the binding or convert via `sim::units`",
                                name.text
                            ),
                            related: Vec::new(),
                        }),
                        (None, Some(c)) => {
                            dims.insert(name.text.clone(), c);
                        }
                        (None, None) => {
                            dims.remove(&name.text);
                        }
                        _ => {}
                    }
                }
            }
        }
        // (b) mixing operators where at least one side's class is propagated.
        if t.kind == TokenKind::Punct && MIXING_OPS.contains(&t.text.as_str()) && i > body.start {
            let lhs = operand_class_left(code, i - 1, &dims);
            let rhs = operand_class_right(code, i + 1, body.end, &dims);
            if let (Some((lc, ln, ls)), Some((rc, rn, rs))) = (lhs, rhs) {
                // Both-suffixed is U1's finding; U2 owns the propagated cases.
                if lc != rc && !(ls && rs) {
                    out.push(Violation {
                        rule: RuleId::U2,
                        path: file.ctx.path.clone(),
                        line: t.line,
                        message: format!(
                            "`{ln}` ({lc}{}) {} `{rn}` ({rc}{}) mixes unit classes through \
                             a propagated dimension; convert explicitly via `sim::units`",
                            if ls { "" } else { ", propagated" },
                            t.text,
                            if rs { "" } else { ", propagated" },
                        ),
                        related: Vec::new(),
                    });
                }
            }
        }
        // (c) call-boundary checks against callee parameter-name suffixes.
        if let Some(site) = sites.get(&i) {
            let targets = resolve(table, def.file, renames, site);
            if !targets.is_empty() {
                if let Some(close) = matching(code, i + 1, "(", ")") {
                    let args = split_args(&code[i + 2..close]);
                    check_call_dims(table, def, site, &targets, &args, &dims, out);
                }
            }
        }
        i += 1;
    }
}

/// Checks one call site's argument dimensions against the callee's
/// parameter-name suffixes. Conservative: a position is checked only when
/// every resolution candidate has a matching arity and agrees on that
/// parameter's class.
fn check_call_dims(
    table: &SymbolTable,
    caller: &FnDef,
    site: &CallSite,
    targets: &[FnId],
    args: &[&[Token]],
    dims: &BTreeMap<String, &'static str>,
    out: &mut Vec<Violation>,
) {
    let file = &table.files[caller.file];
    for (p, arg) in args.iter().enumerate() {
        let Some((ac, an)) = single_atom_class(arg, dims) else {
            continue;
        };
        let mut agreed: Option<(&'static str, String, FnId)> = None;
        let mut ok = true;
        for &tid in targets {
            let callee = &table.fns[tid].item;
            let offset =
                usize::from(site.method && callee.params.first().is_some_and(|s| s.name == "self"));
            let Some(param) = callee.params.get(p + offset) else {
                ok = false;
                break;
            };
            if callee.params.len() - offset != args.len() {
                ok = false;
                break;
            }
            let Some(pc) = unit_class(&param.name) else {
                ok = false;
                break;
            };
            match &agreed {
                None => agreed = Some((pc, param.name.clone(), tid)),
                Some((prev, _, _)) if *prev == pc => {}
                Some(_) => {
                    ok = false;
                    break;
                }
            }
        }
        let Some((pc, pname, tid)) = agreed else {
            continue;
        };
        if !ok || pc == ac {
            continue;
        }
        let callee = &table.fns[tid];
        out.push(Violation {
            rule: RuleId::U2,
            path: file.ctx.path.clone(),
            line: site.line,
            message: format!(
                "argument `{an}` ({ac}) passed to parameter `{pname}` ({pc}) of \
                 `{}`; convert explicitly via `sim::units` at the call site",
                callee.item.qual()
            ),
            related: vec![RelatedSite {
                path: callee.path.clone(),
                line: callee.item.line,
                note: format!("`{}` declared here", callee.item.qual()),
            }],
        });
    }
}

// ---------------------------------------------------------------------------
// per-file driver
// ---------------------------------------------------------------------------

/// Runs the intraprocedural analyses (D10, U2) over every non-test function
/// defined in `file_idx`. D9 is workspace-level — see [`analyze_d9`].
pub fn analyze_file(table: &SymbolTable, file_idx: usize) -> Vec<Violation> {
    let mut out = Vec::new();
    let renames = renames_of(&table.files[file_idx]);
    for def in table.fns.iter().filter(|d| d.file == file_idx) {
        if def.item.is_test || def.item.body.is_empty() {
            continue;
        }
        d10_fn(table, def, &mut out);
        u2_fn(table, def, &renames, &mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_file;
    use crate::rules::FileCtx;
    use crate::symbols::FileEntry;

    fn table(files: &[(&str, &str)]) -> SymbolTable {
        SymbolTable::build(
            files
                .iter()
                .map(|(path, src)| FileEntry {
                    parsed: parse_file(src),
                    ctx: FileCtx::classify(path),
                })
                .collect(),
        )
    }

    fn rules_of(vs: &[Violation]) -> Vec<RuleId> {
        vs.iter().map(|v| v.rule).collect()
    }

    #[test]
    fn d9_flags_transitive_wall_clock_with_chain() {
        let t = table(&[
            (
                "crates/sim/src/lib.rs",
                "pub fn run_sim(n: u64) { helper(n); }\n",
            ),
            (
                "crates/util/src/lib.rs",
                "pub fn helper(n: u64) { let _ = Instant::now(); }\n",
            ),
        ]);
        let g = CallGraph::build(&t);
        let vs = analyze_d9(&t, &g);
        assert_eq!(rules_of(&vs), vec![RuleId::D9]);
        let v = &vs[0];
        assert_eq!(v.path, "crates/sim/src/lib.rs");
        assert!(v.message.contains("run_sim"), "{}", v.message);
        assert!(v.message.contains("helper"), "{}", v.message);
        assert!(v.message.contains("wall-clock"), "{}", v.message);
        assert!(!v.related.is_empty());
    }

    #[test]
    fn d9_ignores_sinks_in_sim_and_observe_only_crates() {
        // Sink in a sim-path crate: D1's territory, not D9's.
        let t = table(&[(
            "crates/sim/src/lib.rs",
            "pub fn run_sim() { let _ = Instant::now(); }\n",
        )]);
        let g = CallGraph::build(&t);
        assert!(analyze_d9(&t, &g).is_empty());
        // Sink in obs: the wall profiler is wall-clock by design.
        let t = table(&[
            ("crates/sim/src/lib.rs", "pub fn run_sim() { observe(); }\n"),
            (
                "crates/obs/src/lib.rs",
                "pub fn observe() { let _ = Instant::now(); }\n",
            ),
        ]);
        let g = CallGraph::build(&t);
        assert!(analyze_d9(&t, &g).is_empty());
    }

    #[test]
    fn d9_unreachable_sinks_do_not_fire() {
        let t = table(&[
            ("crates/sim/src/lib.rs", "pub fn run_sim() {}\n"),
            (
                "crates/util/src/lib.rs",
                "pub fn unused() { let _ = Instant::now(); }\n",
            ),
        ]);
        let g = CallGraph::build(&t);
        assert!(analyze_d9(&t, &g).is_empty());
    }

    #[test]
    fn d10_taints_fault_draw_into_schedule_and_seed() {
        let t = table(&[(
            "crates/sim/src/lib.rs",
            "pub fn go(fault_rng: &mut FaultRng, q: &mut EventQueue) {\n\
             let delay = fault_rng.next_u64();\n\
             q.schedule_after(delay, Ev::Tick);\n\
             let mut r = SimRng::seed_from(delay);\n\
             }\n",
        )]);
        let vs = analyze_file(&t, 0);
        assert_eq!(rules_of(&vs), vec![RuleId::D10, RuleId::D10]);
        assert!(
            vs[0].message.contains("schedule_after"),
            "{}",
            vs[0].message
        );
        assert!(vs[1].message.contains("seed_from"), "{}", vs[1].message);
    }

    #[test]
    fn d10_sim_values_may_schedule_and_fault_values_may_not_trace() {
        let t = table(&[(
            "crates/sim/src/lib.rs",
            "pub fn ok(sim_rng: &mut SimRng, q: &mut EventQueue) {\n\
             let jitter = sim_rng.next_u64();\n\
             q.schedule_after(jitter, Ev::Tick);\n\
             }\n\
             pub fn bad(fault_rng: &mut FaultRng) -> TraceId {\n\
             let salt = fault_rng.next_u64();\n\
             TraceId::derive(salt)\n\
             }\n",
        )]);
        let vs = analyze_file(&t, 0);
        assert_eq!(rules_of(&vs), vec![RuleId::D10]);
        assert!(vs[0].message.contains("TraceId"), "{}", vs[0].message);
    }

    #[test]
    fn d10_reverse_direction_sim_into_fault_seed() {
        let t = table(&[(
            "crates/faults/src/lib.rs",
            "pub fn bad(sim_rng: &mut SimRng) -> FaultRng {\n\
             let s = sim_rng.next_u64();\n\
             FaultRng::for_seed(s)\n\
             }\n",
        )]);
        let vs = analyze_file(&t, 0);
        assert_eq!(rules_of(&vs), vec![RuleId::D10]);
        assert!(vs[0].message.contains("for_seed"), "{}", vs[0].message);
    }

    #[test]
    fn d10_rebinding_clears_taint() {
        let t = table(&[(
            "crates/sim/src/lib.rs",
            "pub fn go(fault_rng: &mut FaultRng, q: &mut EventQueue, now: u64) {\n\
             let mut x = fault_rng.next_u64();\n\
             x = now + 1;\n\
             q.schedule_after(x, Ev::Tick);\n\
             }\n",
        )]);
        assert!(analyze_file(&t, 0).is_empty());
    }

    #[test]
    fn u2_propagates_through_lets() {
        let t = table(&[(
            "crates/sim/src/lib.rs",
            "pub fn f(a_ns: u64, b_ns: u64, size_bytes: u64) {\n\
             let total = a_ns + b_ns;\n\
             let _bad = total + size_bytes;\n\
             }\n",
        )]);
        let vs = analyze_file(&t, 0);
        assert_eq!(rules_of(&vs), vec![RuleId::U2]);
        assert!(vs[0].message.contains("total"), "{}", vs[0].message);
    }

    #[test]
    fn u2_checks_suffixed_binding_names() {
        let t = table(&[(
            "crates/sim/src/lib.rs",
            "pub fn f(a_ns: u64, b_ns: u64) { let sum_bytes = a_ns + b_ns; }\n",
        )]);
        let vs = analyze_file(&t, 0);
        assert_eq!(rules_of(&vs), vec![RuleId::U2]);
    }

    #[test]
    fn u2_checks_call_boundaries() {
        let t = table(&[(
            "crates/sim/src/lib.rs",
            "pub fn caller(lat_ns: u64) { book(lat_ns); }\n\
             pub fn book(cost_pj: u64) {}\n",
        )]);
        let vs = analyze_file(&t, 0);
        assert_eq!(rules_of(&vs), vec![RuleId::U2]);
        assert!(vs[0].message.contains("cost_pj"), "{}", vs[0].message);
        assert_eq!(vs[0].related.len(), 1);
    }

    #[test]
    fn u2_multiplication_and_ambiguity_stop_propagation() {
        let t = table(&[(
            "crates/sim/src/lib.rs",
            "pub fn f(a_ns: u64, w: u64, size_bytes: u64) {\n\
             let rate = a_ns * w;\n\
             let _x = rate + size_bytes;\n\
             let both = a_ns + size_bytes_to_ns(size_bytes);\n\
             }\n",
        )]);
        // `rate` has unknown dimension (multiplication); the call in `both`'s
        // initializer makes it unknown too. (`a_ns + size_bytes…` inside is
        // not flagged: the rhs atom is a call, not an ident.)
        let vs = analyze_file(&t, 0);
        assert!(rules_of(&vs).is_empty(), "{vs:?}");
    }

    #[test]
    fn entry_points_cover_run_on_tick_surfaces() {
        let t = table(&[
            (
                "crates/tiering/src/cluster.rs",
                "impl ClusterSim { pub fn run(&mut self) {} fn on_arrival(&mut self) {} }\n\
                 pub fn helper() {}\n",
            ),
            ("crates/bench/src/lib.rs", "pub fn run_bench() {}\n"),
        ]);
        let e = entry_points(&t);
        let names: Vec<&str> = e.iter().map(|&id| t.fns[id].item.name.as_str()).collect();
        assert_eq!(names, vec!["run", "on_arrival"], "bench is not sim-path");
    }
}
