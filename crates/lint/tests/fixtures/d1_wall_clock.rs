//! D1 fixture: wall-clock reads in a sim-path crate.
//! Not compiled — consumed as text by `lint_tests.rs`.

pub fn bad_instant() -> u64 {
    let t0 = Instant::now();
    t0.elapsed().as_nanos() as u64
}

pub fn bad_wall() {
    let _ = SystemTime::now().duration_since(UNIX_EPOCH);
}

pub fn suppressed() {
    // mrm-lint: allow(D1) fixture: demonstrates a justified suppression
    let _ = SystemTime::now();
}
