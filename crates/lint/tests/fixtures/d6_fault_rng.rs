//! D6 corpus: fault injection must draw only from the dedicated `FaultRng`
//! stream. This file pretends to live at `crates/faults/src/fixture.rs`.

use mrm_sim::rng::SimRng; // D6: scheduling stream named in the faults crate

pub struct BadSampler {
    rng: SimRng, // D6: the field type couples sampling to the schedule
}

impl BadSampler {
    pub fn draw(&mut self) -> u64 {
        self.rng.next_u64()
    }
}

// mrm-lint: allow(D6) exercising the suppression path for the golden file
pub fn explicitly_allowed(rng: &mut SimRng) -> u64 {
    rng.next_u64()
}
