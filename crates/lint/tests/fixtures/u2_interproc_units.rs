//! U2 corpus: unit-suffix dimensions propagate through let-bindings and
//! call boundaries where U1's single-expression check goes blind. This
//! file pretends to live at `crates/sim/src/fixture.rs`.

/// U1 dies at the first binding: `total` has no suffix. U2 remembers that
/// it carries time and flags the later mix with a byte count.
pub fn mix_through_binding(read_ns: u64, decode_ns: u64, size_bytes: u64) -> u64 {
    let total = read_ns + decode_ns;
    total + size_bytes // U2: time (propagated) + bytes
}

/// A binding whose *name* claims one dimension while its initializer has
/// another is a lie waiting to be believed.
pub fn misnamed_binding(read_ns: u64, decode_ns: u64) -> u64 {
    let sum_bytes = read_ns + decode_ns; // U2: named bytes, initialized as time
    sum_bytes
}

/// Dimension checks cross call boundaries via parameter-name suffixes.
pub fn book_energy(cost_pj: f64) -> f64 {
    cost_pj * 2.0
}

pub fn calls_with_wrong_dimension(lat_ns: f64) -> f64 {
    book_energy(lat_ns) // U2: time passed to an energy parameter
}

/// Comparisons count as mixing too.
pub fn compares_through_binding(a_ns: u64, b_ns: u64, cap_bytes: u64) -> bool {
    let budget = a_ns + b_ns;
    budget < cap_bytes // U2: time (propagated) compared against bytes
}

/// Multiplication legitimately changes dimension: propagation stops.
pub fn rates_are_fine(a_ns: u64, weight: u64, size_bytes: u64) -> u64 {
    let rate = a_ns * weight;
    rate + size_bytes // no finding: rate's dimension is unknown
}

/// Suppression path for the golden file: the annotated mix stays silent.
pub fn explicitly_allowed(read_ns: u64, decode_ns: u64, size_bytes: u64) -> u64 {
    let total = read_ns + decode_ns;
    // mrm-lint: allow(U2) fixture exercising the suppression path
    total + size_bytes
}
