//! D3 fixture: ambient entropy in a sim-path crate.
//! Not compiled — consumed as text by `lint_tests.rs`.

pub fn bad() {
    let mut rng = thread_rng();
    let seeded = SmallRng::from_entropy();
    let state = RandomState::new();
}
