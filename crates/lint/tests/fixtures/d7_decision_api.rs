//! D7 corpus: inline placement/expiry decisions in a data-path crate.
//! The decision API lives in `mrm-control`; naming it here means this
//! crate grew its own retention decision that bypasses the registry and
//! the audit log.

use mrm_control::expiry::{ExpiryAction, ExpiryTracker};

pub struct Accel {
    tracker: ExpiryTracker,
}

pub fn sweep(tracker: &mut ExpiryTracker, now: SimTime) -> Option<ExpiryAction> {
    tracker.decide(7, now)
}

pub fn retention(policy: PlacementPolicy) -> SimDuration {
    policy.retention_for(DataClass::KvCache, hint(), native(), 1.25)
}

// mrm-lint: allow(D7) compatibility re-export; the decision still routes through mrm-control
pub use mrm_control::expiry::ExpiryTracker as Tracker;
