//! D4 fixture: telemetry reaching for randomness or the scheduler.
//! Not compiled — consumed as text by `lint_tests.rs`.

use mrm_sim::SimRng;

pub fn bad_sink(queue: &mut EventQueue<u32>) {
    queue.schedule_after(delay, 7);
}
