//! D5 fixture: bare unwraps in library code, none in test code.
//! Not compiled — consumed as text by `lint_tests.rs`.

pub fn bad(x: Option<u32>) -> u32 {
    x.unwrap()
}

pub fn bad_expect(x: Option<u32>) -> u32 {
    x.expect("")
}

pub fn fine(x: Option<u32>) -> u32 {
    x.expect("caller guarantees a queued event")
}

pub fn suppressed(x: Option<u32>) -> u32 {
    // mrm-lint: allow(D5) fixture: invariant documented one line up
    x.unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        Some(1u32).unwrap();
    }
}
