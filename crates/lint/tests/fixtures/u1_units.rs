//! U1 fixture: unit-suffix mixing and raw capacity literals.
//! Not compiled — consumed as text by `lint_tests.rs`.

pub fn bad_mix(lat_ns: u64, size_bytes: u64, energy_pj: f64) {
    let a = lat_ns + size_bytes;
    let b = energy_pj < lat_ns as f64;
    let c = total_pj - dev.stats.sum_bytes;
}

pub fn fine_mix(read_ns: u64, decode_ns: u64, size_bytes: u64, per_byte_pj: f64) {
    let a = read_ns + decode_ns;
    let e = size_bytes as f64 * per_byte_pj;
}

pub fn bad_literals() -> u64 {
    let zone = 16 << 20;
    let meg = 1024 * 1024;
    zone + meg
}

pub fn fine_literals() -> u64 {
    let flags = 1 << 3;
    flags
}

pub fn suppressed() -> u64 {
    // mrm-lint: allow(U1) fixture: a shift that is genuinely not a capacity
    1 << 30
}
