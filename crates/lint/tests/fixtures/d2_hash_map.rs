//! D2 fixture: unordered collections in a sim-path crate.
//! Not compiled — consumed as text by `lint_tests.rs`.

use std::collections::HashMap;
use std::collections::HashSet;

pub struct Index {
    by_zone: HashMap<u64, u32>,
}

// A string mention is not a violation:
pub const DOC: &str = "HashMap is banned here";

// mrm-lint: allow(D2) iteration is sorted into a Vec before any draw
pub fn suppressed(m: &HashMap<u64, u32>) -> usize {
    m.len()
}
