//! D10 corpus: FaultRng-derived values must not flow into SimRng seeding,
//! event scheduling, or TraceId derivation (nor SimRng draws into FaultRng
//! seeding). This file pretends to live at `crates/sim/src/fixture.rs`.

/// Direct draw into a scheduling call: fault timing perturbs the schedule.
pub fn schedule_from_fault_draw(fault_rng: &mut FaultRng, q: &mut EventQueue) {
    let delay = fault_rng.next_u64(); // fault-tainted
    q.schedule_after(delay, Ev::Tick); // D10: fault value decides arrival time
}

/// Taint survives a chain of let-bindings before reaching the sink.
pub fn laundered_through_locals(fault_rng: &mut FaultRng) -> SimRng {
    let raw = fault_rng.next_u64();
    let cooked = raw ^ 0xDEAD_BEEF;
    SimRng::seed_from(cooked) // D10: fault value seeds the scheduling stream
}

/// Trace identity must derive from the experiment seed, not fault bits.
pub fn trace_from_fault(fault_rng: &mut FaultRng) -> TraceId {
    let salt = fault_rng.gen_range_u64(0, 1 << 16);
    TraceId::derive(salt) // D10: fault value decides trace identity
}

/// The reverse direction: a scheduling draw must not seed the fault stream.
pub fn fault_seed_from_sim(sim_rng: &mut SimRng) -> FaultRng {
    let s = sim_rng.next_u64();
    FaultRng::for_seed(s) // D10: sim value seeds the fault stream
}

/// Sim-stream values may schedule freely — that is their job.
pub fn sim_jitter_is_fine(sim_rng: &mut SimRng, q: &mut EventQueue) {
    let jitter = sim_rng.next_u64();
    q.schedule_after(jitter, Ev::Tick);
}

/// Rebinding with an untainted value clears the taint.
pub fn rebinding_clears(fault_rng: &mut FaultRng, q: &mut EventQueue, now: u64) {
    let mut x = fault_rng.next_u64();
    x = now + 1;
    q.schedule_after(x, Ev::Tick);
}

/// Suppression path for the golden file: the annotated sink stays silent.
pub fn explicitly_allowed(fault_rng: &mut FaultRng, q: &mut EventQueue) {
    // mrm-lint: allow(D10) fixture exercising the suppression path
    q.schedule_after(fault_rng.next_u64(), Ev::Tick);
}
