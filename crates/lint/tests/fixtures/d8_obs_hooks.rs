// D8 fixture: obs hook call sites must stay off the RNG/event-queue paths.
// Linted as if it lived at crates/tiering/src/fixture.rs.

struct Sim {
    rng: SimRng,
    queue: EventQueue<Ev>,
    obs: Option<&'static mut Obs>,
}

impl Sim {
    // VIOLATION: the handler draws randomness and touches the tracer inline.
    fn on_arrival(&mut self, now: SimTime) {
        let output = self.rng.gen_range_u64(512);
        if let Some(o) = self.obs.as_mut() {
            o.tracer.instant(now, SpanKind::Admission, 0, output, Detail::default());
        }
    }

    // VIOLATION: the handler schedules an event and brackets it with the
    // profiler directly.
    fn start_iteration(&mut self, now: SimTime) {
        if let Some(o) = self.obs.as_mut() {
            o.profiler.enter("decode_iter");
        }
        self.queue.schedule_after(now, ITER, Ev::IterDone);
    }

    // OK: the handler observes through a named obs_* helper; the helper
    // itself neither draws nor schedules.
    fn on_followup(&mut self, now: SimTime) {
        let hit = self.rng.gen_bool(0.5);
        self.obs_followup(now, hit);
        if hit {
            self.queue.schedule_after(now, WINDOW, Ev::CacheExpire);
        }
    }

    // OK: an observe-only helper may name the tracer and profiler freely.
    fn obs_followup(&mut self, now: SimTime, hit: bool) {
        if let Some(o) = self.obs.as_mut() {
            o.profiler.sim_cost("followup", SimDuration::ZERO);
            o.tracer
                .instant(now, SpanKind::Placement, 0, u64::from(hit), Detail::default());
        }
    }
}

#[cfg(test)]
mod tests {
    // OK: test assertions over the tracer are not hot-path hooks.
    #[test]
    fn drains_queue_and_counts_spans() {
        let mut sim = Sim::new();
        while sim.queue.pop().is_some() {}
        assert!(sim.obs.unwrap().tracer.total() > 0);
    }
}
