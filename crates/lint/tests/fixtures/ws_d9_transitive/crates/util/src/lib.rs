//! D9 workspace fixture, helper side: a "utility" crate that reads the
//! wall clock. Harmless on its own — but reachable from the sim loop.

pub fn observed_latency(i: u64) -> u64 {
    let t = Instant::now(); // the forbidden sink, two hops from the entry
    i + t.elapsed().as_nanos() as u64
}
