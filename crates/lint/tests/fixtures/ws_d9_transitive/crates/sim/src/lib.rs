//! D9 workspace fixture, sim side: an event-loop entry point whose helper
//! chain crosses into a non-sim crate. The lexical D1 cannot see the sink
//! (it lives outside the sim-path crates); D9 follows the calls.

pub fn run_cluster(iters: u64) -> u64 {
    let mut total = 0;
    for i in 0..iters {
        total += stage_cost(i);
    }
    total
}

fn stage_cost(i: u64) -> u64 {
    mrm_util::observed_latency(i)
}
