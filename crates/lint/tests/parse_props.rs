//! Property-style tests for the item parser, using a seeded generator
//! (splitmix64) instead of an external property-testing dependency. Each
//! case generates a random-but-valid source file with a known set of fn
//! items, plus decoys (strings, comments) that must not parse as items;
//! the parser must recover exactly the generated set. Totality is checked
//! by lexing and parsing every sampled prefix and mutation of each case —
//! the lexer and parser are documented as never failing on arbitrary text.

use std::collections::BTreeSet;
use std::mem::discriminant;

use mrm_lint::lexer::{lex, TokenKind};
use mrm_lint::parse::parse_file;

/// splitmix64: tiny, seedable, well-distributed. Deterministic across
/// platforms, so every CI run exercises the same cases.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }

    fn pick<'a>(&mut self, xs: &[&'a str]) -> &'a str {
        xs[self.below(xs.len())]
    }
}

const WORDS: [&str; 8] = [
    "alpha", "beta", "gamma", "delta", "omega", "sigma", "kappa", "theta",
];

const DECOYS: [&str; 4] = [
    "    let s = \"fn ghost_in_string() { }\";\n",
    "    // fn ghost_in_comment() {}\n",
    "    /* fn ghost_in_block(x: u64) -> u64 { x } */\n",
    "    let t = \"unbalanced { brace and \\\" quote\";\n",
];

/// A generated fn: its expected identity as the parser should report it.
#[derive(Debug, PartialEq, Eq, PartialOrd, Ord)]
struct Expected {
    self_ty: Option<String>,
    name: String,
    params: Vec<String>,
}

fn gen_body(rng: &mut Rng, params: &[String]) -> String {
    let mut body = String::new();
    for _ in 0..rng.below(4) {
        match rng.below(4) {
            0 => body.push_str(DECOYS[rng.below(DECOYS.len())]),
            1 => {
                let v = rng.pick(&WORDS);
                body.push_str(&format!("    let {v} = 1 + {};\n", rng.below(100)));
            }
            2 => {
                let arg = params.first().map_or("0", |p| p.as_str());
                body.push_str(&format!("    helper_{}({arg});\n", rng.below(3)));
            }
            _ => {
                body.push_str("    if x_marker() {\n        nested_marker();\n    }\n");
            }
        }
    }
    body
}

fn gen_fn(
    rng: &mut Rng,
    counter: &mut u32,
    self_ty: Option<&str>,
    indent: &str,
) -> (String, Expected) {
    let name = format!("{}_{}", rng.pick(&WORDS), *counter);
    *counter += 1;
    let mut params: Vec<String> = (0..rng.below(3))
        .map(|i| format!("{}_{i}", rng.pick(&WORDS)))
        .collect();
    let mut sig: Vec<String> = params.iter().map(|p| format!("{p}: u64")).collect();
    if self_ty.is_some() {
        sig.insert(0, "&mut self".to_string());
        // The parser records the receiver as a parameter named `self` (the
        // taint/unit passes rely on it for method-call arity offsets).
        params.insert(0, "self".to_string());
    }
    let generics = if rng.below(3) == 0 { "<T: Ord>" } else { "" };
    let ret = if rng.below(2) == 0 { " -> u64" } else { "" };
    let src = format!(
        "{indent}pub fn {name}{generics}({}){ret} {{\n{}{indent}}}\n",
        sig.join(", "),
        gen_body(rng, &params),
    );
    (
        src,
        Expected {
            self_ty: self_ty.map(str::to_string),
            name,
            params,
        },
    )
}

/// One generated source file plus the exact item set the parser must find.
fn gen_case(seed: u64) -> (String, Vec<Expected>) {
    let mut rng = Rng(seed);
    let mut counter = 0;
    let mut src = String::from("//! generated corpus\n\nuse std::collections::BTreeMap;\n\n");
    let mut expected = Vec::new();

    for _ in 0..1 + rng.below(4) {
        let (s, e) = gen_fn(&mut rng, &mut counter, None, "");
        src.push_str(&s);
        expected.push(e);
    }
    for t in 0..rng.below(3) {
        let ty = format!("Gadget{t}");
        src.push_str(&format!("impl {ty} {{\n"));
        for _ in 0..1 + rng.below(3) {
            let (s, e) = gen_fn(&mut rng, &mut counter, Some(&ty), "    ");
            src.push_str(&s);
            expected.push(e);
        }
        src.push_str("}\n");
    }
    if rng.below(2) == 0 {
        src.push_str("mod inner {\n");
        let (s, e) = gen_fn(&mut rng, &mut counter, None, "    ");
        src.push_str(&s);
        expected.push(e);
        src.push_str("}\n");
    }
    (src, expected)
}

#[test]
fn parser_recovers_exactly_the_generated_item_set() {
    for seed in 0..64u64 {
        let (src, expected) = gen_case(seed);
        let parsed = parse_file(&src);
        let actual: BTreeSet<Expected> = parsed
            .fns
            .iter()
            .map(|f| Expected {
                self_ty: f.self_ty.clone(),
                name: f.name.clone(),
                params: f.params.iter().map(|p| p.name.clone()).collect(),
            })
            .collect();
        let expected: BTreeSet<Expected> = expected.into_iter().collect();
        assert_eq!(
            actual, expected,
            "seed {seed}: parsed items diverged from the generated set\n{src}"
        );
    }
}

#[test]
fn parsed_lines_and_bodies_are_well_formed() {
    for seed in 0..64u64 {
        let (src, _) = gen_case(seed);
        let parsed = parse_file(&src);
        let line_count = src.lines().count() as u32;
        for f in &parsed.fns {
            assert!(
                f.line >= 1 && f.line <= line_count,
                "seed {seed}: fn {} has line {} outside 1..={line_count}",
                f.name,
                f.line
            );
            assert!(
                f.body.end <= parsed.code.len(),
                "seed {seed}: fn {} body range exceeds the token stream",
                f.name
            );
            assert!(!f.is_test, "generated corpus has no #[test] fns");
        }
    }
}

#[test]
fn lexing_is_stable_under_whitespace_renormalization() {
    // Joining the non-comment tokens of a lex with newlines and re-lexing
    // must reproduce the same token stream: token boundaries are intrinsic,
    // not an artifact of the original spacing.
    for seed in 0..32u64 {
        let (src, _) = gen_case(seed);
        let first: Vec<_> = lex(&src)
            .into_iter()
            .filter(|t| !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment))
            .collect();
        // `Str`/`Char` token text is the *content* (delimiters stripped,
        // escapes left as written), so re-wrap them for the round trip.
        let rejoined: String = first
            .iter()
            .map(|t| match t.kind {
                TokenKind::Str => format!("\"{}\"", t.text),
                TokenKind::Char => format!("'{}'", t.text),
                _ => t.text.clone(),
            })
            .collect::<Vec<_>>()
            .join("\n");
        let second: Vec<_> = lex(&rejoined)
            .into_iter()
            .filter(|t| !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment))
            .collect();
        assert_eq!(
            first.len(),
            second.len(),
            "seed {seed}: token count drifted"
        );
        for (a, b) in first.iter().zip(&second) {
            assert_eq!(a.text, b.text, "seed {seed}: token text drifted");
            assert_eq!(
                discriminant(&a.kind),
                discriminant(&b.kind),
                "seed {seed}: token kind drifted for `{}`",
                a.text
            );
        }
    }
}

#[test]
fn lexer_and_parser_are_total_on_truncated_and_mutated_sources() {
    // Truncation can cut inside a string, a block comment, or a brace
    // nest; mutation can unbalance delimiters. Neither may panic — the
    // lint must survive any text it is pointed at.
    let nasty = ['{', '}', '"', '/', '*', '\\', '\'', '#'];
    for seed in 0..16u64 {
        let (src, _) = gen_case(seed);
        let mut rng = Rng(seed ^ 0xDEAD);
        let boundaries: Vec<usize> = (0..=src.len())
            .filter(|&i| src.is_char_boundary(i))
            .collect();
        for _ in 0..24 {
            let cut = boundaries[rng.below(boundaries.len())];
            let prefix = &src[..cut];
            let _ = parse_file(prefix); // must not panic
            let _ = lex(prefix);

            let mut mutated: Vec<char> = src.chars().collect();
            if !mutated.is_empty() {
                let pos = rng.below(mutated.len());
                mutated[pos] = nasty[rng.below(nasty.len())];
            }
            let mutated: String = mutated.into_iter().collect();
            let _ = parse_file(&mutated);
            let _ = lex(&mutated);
        }
    }
}
