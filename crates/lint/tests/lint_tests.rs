//! Integration tests for `mrm-lint`: fixture corpora with golden output,
//! suppression via annotations and baseline, end-to-end `--deny` exit codes,
//! and the self-check that the lint is clean on its own sources.
//!
//! Fixtures live under `tests/fixtures/` (excluded from the workspace walk)
//! and are consumed as *text*, never compiled. Each `<name>.rs` has a
//! `<name>.expected` golden file; regenerate with
//! `MRM_LINT_BLESS=1 cargo test -p mrm-lint`.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

use mrm_lint::rules::{lint_source, FileCtx, RuleId};
use mrm_lint::walk::find_workspace_root;
use mrm_lint::{analyze_workspace, lint_workspace};

fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

/// The context each fixture is linted under: rules are path-gated, so each
/// corpus pretends to live where its rule applies.
fn fixture_ctx(name: &str) -> FileCtx {
    let mut ctx = if name.starts_with("d4_") {
        FileCtx::classify("crates/telemetry/src/fixture.rs")
    } else if name.starts_with("d6_") {
        FileCtx::classify("crates/faults/src/fixture.rs")
    } else if name.starts_with("d7_") || name.starts_with("d8_") {
        FileCtx::classify("crates/tiering/src/fixture.rs")
    } else {
        FileCtx::classify("crates/sim/src/fixture.rs")
    };
    ctx.path = format!("fixtures/{name}.rs");
    ctx
}

fn read(path: &Path) -> String {
    fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()))
}

#[test]
fn fixtures_match_golden_output() {
    let dir = fixtures_dir();
    let mut names: Vec<String> = fs::read_dir(&dir)
        .expect("fixtures directory exists")
        .filter_map(|e| e.ok())
        .filter_map(|e| {
            let f = e.file_name().to_string_lossy().to_string();
            f.strip_suffix(".rs").map(str::to_string)
        })
        .collect();
    names.sort();
    assert!(
        names.len() >= 6,
        "one fixture per rule expected, found {names:?}"
    );

    let bless = std::env::var_os("MRM_LINT_BLESS").is_some();
    for name in names {
        let source = read(&dir.join(format!("{name}.rs")));
        let report = lint_source(&source, &fixture_ctx(&name));
        let mut actual = String::new();
        for v in &report.violations {
            actual.push_str(&v.render());
            actual.push('\n');
        }
        assert!(
            !report.violations.is_empty(),
            "fixture {name} must contain at least one violation"
        );
        let expected_path = dir.join(format!("{name}.expected"));
        if bless {
            fs::write(&expected_path, &actual)
                .unwrap_or_else(|e| panic!("cannot bless {}: {e}", expected_path.display()));
            continue;
        }
        let expected = read(&expected_path);
        assert_eq!(
            actual, expected,
            "golden mismatch for fixture {name}; run MRM_LINT_BLESS=1 cargo test -p mrm-lint \
             and review the diff"
        );
    }
}

/// The D9 fixture is a two-crate workspace directory (a single file cannot
/// demonstrate a cross-crate chain by construction); it is linted with
/// `lint_workspace` and blessed against its own golden file.
#[test]
fn ws_d9_fixture_matches_golden_with_full_chain() {
    let dir = fixtures_dir();
    let violations =
        lint_workspace(&dir.join("ws_d9_transitive")).expect("workspace fixture lints");
    let mut actual = String::new();
    for v in &violations {
        actual.push_str(&v.render());
        actual.push('\n');
    }
    assert!(
        violations.iter().any(|v| v.rule == RuleId::D9),
        "workspace fixture must trigger D9: {actual}"
    );
    // The acceptance criterion: the golden encodes a full chain, entry
    // point -> helper -> forbidden sink, with file:line hops.
    let d9 = violations
        .iter()
        .find(|v| v.rule == RuleId::D9)
        .expect("D9 violation present");
    for hop in ["run_cluster", "stage_cost", "observed_latency", "Instant"] {
        assert!(
            d9.message.contains(hop),
            "chain missing `{hop}`: {}",
            d9.message
        );
    }
    assert!(
        d9.message.contains("crates/util/src/lib.rs"),
        "chain names the sink file: {}",
        d9.message
    );
    assert!(
        d9.related.len() >= 2,
        "chain hops are attached as related sites: {:?}",
        d9.related
    );

    let expected_path = dir.join("ws_d9_transitive.expected");
    if std::env::var_os("MRM_LINT_BLESS").is_some() {
        fs::write(&expected_path, &actual)
            .unwrap_or_else(|e| panic!("cannot bless {}: {e}", expected_path.display()));
        return;
    }
    assert_eq!(
        actual,
        read(&expected_path),
        "golden mismatch for ws_d9_transitive; run MRM_LINT_BLESS=1 cargo test -p mrm-lint"
    );
}

#[test]
fn every_rule_has_fixture_coverage() {
    let dir = fixtures_dir();
    let mut seen: Vec<RuleId> = Vec::new();
    for entry in fs::read_dir(&dir).expect("fixtures directory exists") {
        let path = entry.expect("readable entry").path();
        if path.extension().is_some_and(|e| e == "rs") {
            let name = path
                .file_stem()
                .map(|s| s.to_string_lossy().to_string())
                .unwrap_or_default();
            let source = read(&path);
            for v in lint_source(&source, &fixture_ctx(&name)).violations {
                if !seen.contains(&v.rule) {
                    seen.push(v.rule);
                }
            }
        }
    }
    // D9 is covered by the workspace-directory fixture.
    for v in lint_workspace(&dir.join("ws_d9_transitive")).expect("workspace fixture lints") {
        if !seen.contains(&v.rule) {
            seen.push(v.rule);
        }
    }
    for rule in RuleId::ALL {
        assert!(
            seen.contains(&rule),
            "no fixture triggers {}",
            rule.as_str()
        );
    }
}

#[test]
fn allow_annotations_suppress_in_fixtures() {
    // Every fixture with a `mrm-lint: allow` comment must lint clean on the
    // annotated line (the golden files encode the remaining violations; here
    // we assert the suppression is real by deleting the annotations and
    // seeing the count rise).
    let dir = fixtures_dir();
    for name in [
        "d1_wall_clock",
        "d2_hash_map",
        "d5_unwrap",
        "d6_fault_rng",
        "d7_decision_api",
        "d10_rng_taint",
        "u1_units",
        "u2_interproc_units",
    ] {
        let source = read(&dir.join(format!("{name}.rs")));
        let with = lint_source(&source, &fixture_ctx(name)).violations.len();
        let stripped: String = source
            .lines()
            .map(|l| {
                if l.trim_start().starts_with("// mrm-lint: allow") {
                    ""
                } else {
                    l
                }
            })
            .collect::<Vec<_>>()
            .join("\n");
        let without = lint_source(&stripped, &fixture_ctx(name)).violations.len();
        assert!(
            without > with,
            "{name}: removing allow annotations must surface more violations \
             ({with} -> {without})"
        );
    }
}

// ---------------------------------------------------------------------------
// End-to-end: the binary against scratch workspaces
// ---------------------------------------------------------------------------

struct Scratch {
    root: PathBuf,
}

impl Scratch {
    fn new(tag: &str) -> Scratch {
        let root = std::env::temp_dir().join(format!("mrm-lint-e2e-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        fs::create_dir_all(&root).expect("create scratch root");
        fs::write(root.join("Cargo.toml"), "[workspace]\n").expect("write scratch manifest");
        Scratch { root }
    }

    fn file(&self, rel: &str, contents: &str) {
        let path = self.root.join(rel);
        fs::create_dir_all(path.parent().expect("file path has a parent"))
            .expect("create scratch dirs");
        fs::write(path, contents).expect("write scratch file");
    }

    fn run(&self, extra: &[&str]) -> (bool, String) {
        let out = Command::new(env!("CARGO_BIN_EXE_mrm-lint"))
            .arg("--root")
            .arg(&self.root)
            .args(extra)
            .output()
            .expect("spawn mrm-lint");
        let text = format!(
            "{}{}",
            String::from_utf8_lossy(&out.stdout),
            String::from_utf8_lossy(&out.stderr)
        );
        (out.status.success(), text)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.root);
    }
}

#[test]
fn deny_exits_nonzero_on_violations_and_zero_when_clean() {
    let ws = Scratch::new("deny");
    ws.file(
        "crates/sim/src/lib.rs",
        "use std::collections::HashMap;\npub fn t() { let _ = Instant::now(); }\n",
    );
    let (ok, text) = ws.run(&["--deny"]);
    assert!(!ok, "--deny must fail on violations:\n{text}");
    assert!(text.contains("D2"), "expected a D2 diagnostic:\n{text}");
    assert!(text.contains("D1"), "expected a D1 diagnostic:\n{text}");
    // Without --deny the same run reports but exits 0.
    let (ok, _) = ws.run(&[]);
    assert!(ok, "report mode always exits zero");

    let clean = Scratch::new("clean");
    clean.file(
        "crates/sim/src/lib.rs",
        "use std::collections::BTreeMap;\npub fn t(m: &BTreeMap<u32, u32>) -> usize { m.len() }\n",
    );
    let (ok, text) = clean.run(&["--deny"]);
    assert!(ok, "clean workspace must pass --deny:\n{text}");
}

#[test]
fn baseline_absorbs_debt_blocks_growth_and_flags_stale() {
    let ws = Scratch::new("baseline");
    ws.file(
        "crates/foo/src/lib.rs",
        "pub fn a(x: Option<u32>) -> u32 { x.unwrap() }\n\
         pub fn b(x: Option<u32>) -> u32 { x.unwrap() }\n",
    );
    // Debt exactly covered: --deny passes.
    ws.file("lint-baseline.txt", "D5 crates/foo/src/lib.rs 2\n");
    let (ok, text) = ws.run(&["--deny"]);
    assert!(ok, "baselined debt must pass --deny:\n{text}");
    assert!(text.contains("2 baselined"), "{text}");

    // New debt beyond the allowance: fails, every site reported.
    ws.file(
        "crates/foo/src/lib.rs",
        "pub fn a(x: Option<u32>) -> u32 { x.unwrap() }\n\
         pub fn b(x: Option<u32>) -> u32 { x.unwrap() }\n\
         pub fn c(x: Option<u32>) -> u32 { x.unwrap() }\n",
    );
    let (ok, text) = ws.run(&["--deny"]);
    assert!(!ok, "debt growth must fail --deny:\n{text}");
    assert!(text.contains("D5"), "{text}");

    // Debt paid down below the allowance: stale ratchet fails until updated.
    ws.file(
        "crates/foo/src/lib.rs",
        "pub fn a(x: Option<u32>) -> u32 { x.unwrap() }\n",
    );
    let (ok, text) = ws.run(&["--deny"]);
    assert!(!ok, "stale baseline must fail --deny:\n{text}");
    assert!(text.contains("stale baseline"), "{text}");
    let (ok, text) = ws.run(&["--update-baseline", "--deny"]);
    assert!(ok, "--update-baseline tightens the ratchet:\n{text}");
    let rewritten = read(&ws.root.join("lint-baseline.txt"));
    assert!(
        rewritten.contains("D5 crates/foo/src/lib.rs 1"),
        "{rewritten}"
    );
}

#[test]
fn fixture_corpus_fails_deny_when_walked() {
    // The acceptance criterion: pointing the lint at the violation corpus
    // exits nonzero. Copy the fixtures into a scratch workspace laid out so
    // every rule's gate applies (sim-path / telemetry / library).
    let ws = Scratch::new("corpus");
    let dir = fixtures_dir();
    for entry in fs::read_dir(&dir).expect("fixtures directory exists") {
        let path = entry.expect("readable entry").path();
        if path.extension().is_none_or(|e| e != "rs") {
            continue;
        }
        let name = path
            .file_name()
            .map(|s| s.to_string_lossy().to_string())
            .unwrap_or_default();
        let dest = if name.starts_with("d4_") {
            format!("crates/telemetry/src/{name}")
        } else if name.starts_with("d6_") {
            format!("crates/faults/src/{name}")
        } else if name.starts_with("d7_") {
            format!("crates/tiering/src/{name}")
        } else {
            format!("crates/sim/src/{name}")
        };
        ws.file(&dest, &read(&path));
    }
    let (ok, text) = ws.run(&["--deny"]);
    assert!(!ok, "fixture corpus must fail --deny:\n{text}");
    for rule in ["D1", "D2", "D3", "D4", "D5", "D6", "D7", "D10", "U1", "U2"] {
        assert!(text.contains(rule), "corpus run missing {rule}:\n{text}");
    }
}

#[test]
fn transitive_wall_clock_fails_deny_while_direct_helper_is_invisible_lexically() {
    // The acceptance criterion for D9: a sim entry point whose helper chain
    // crosses into a non-sim crate and reads the wall clock there must fail
    // `--deny`, with the full chain in the diagnostic. The same helper with
    // no path from an entry point stays clean (reachability, not presence).
    let ws = Scratch::new("d9");
    ws.file(
        "crates/sim/src/lib.rs",
        "pub fn run_epoch(n: u64) -> u64 {\n    cost_model(n)\n}\n\
         fn cost_model(n: u64) -> u64 {\n    mrm_util::sampled_now(n)\n}\n",
    );
    ws.file(
        "crates/util/src/lib.rs",
        "pub fn sampled_now(n: u64) -> u64 {\n    n + Instant::now().elapsed().as_nanos() as u64\n}\n",
    );
    let (ok, text) = ws.run(&["--deny"]);
    assert!(!ok, "transitive wall-clock must fail --deny:\n{text}");
    assert!(text.contains("D9"), "expected a D9 diagnostic:\n{text}");
    for hop in ["run_epoch", "cost_model", "sampled_now"] {
        assert!(text.contains(hop), "chain missing `{hop}`:\n{text}");
    }

    // Sever the chain: the helper still reads the clock, but no sim entry
    // reaches it, so the workspace passes.
    let severed = Scratch::new("d9-severed");
    severed.file(
        "crates/sim/src/lib.rs",
        "pub fn run_epoch(n: u64) -> u64 {\n    n * 2\n}\n",
    );
    severed.file(
        "crates/util/src/lib.rs",
        "pub fn sampled_now(n: u64) -> u64 {\n    n + Instant::now().elapsed().as_nanos() as u64\n}\n",
    );
    let (ok, text) = severed.run(&["--deny"]);
    assert!(ok, "unreachable helper must pass --deny:\n{text}");
}

#[test]
fn sarif_output_is_well_formed_and_carries_code_flows() {
    let ws = Scratch::new("sarif");
    ws.file(
        "crates/sim/src/lib.rs",
        "pub fn run_epoch(n: u64) -> u64 {\n    mrm_util::sampled_now(n)\n}\n",
    );
    ws.file(
        "crates/util/src/lib.rs",
        "pub fn sampled_now(n: u64) -> u64 {\n    n + Instant::now().elapsed().as_nanos() as u64\n}\n",
    );
    let out = Command::new(env!("CARGO_BIN_EXE_mrm-lint"))
        .arg("--root")
        .arg(&ws.root)
        .arg("--format")
        .arg("sarif")
        .output()
        .expect("spawn mrm-lint");
    let stdout = String::from_utf8_lossy(&out.stdout);
    // Stdout is the SARIF document and nothing else: machine-consumable.
    assert!(
        stdout.trim_start().starts_with('{') && stdout.trim_end().ends_with('}'),
        "sarif stdout must be a single JSON object:\n{stdout}"
    );
    for needle in [
        "\"version\":\"2.1.0\"",
        "sarif-2.1.0.json",
        "\"ruleId\":\"D9\"",
        "\"codeFlows\"",
        "\"relatedLocations\"",
        "mrm-lint",
    ] {
        assert!(stdout.contains(needle), "sarif missing {needle}:\n{stdout}");
    }
}

#[test]
fn explain_and_dump_callgraph_flags() {
    let ws = Scratch::new("cli");
    ws.file(
        "crates/sim/src/lib.rs",
        "pub fn run_epoch(n: u64) -> u64 {\n    helper(n)\n}\nfn helper(n: u64) -> u64 {\n    n\n}\n",
    );
    let (ok, text) = ws.run(&["--explain", "D9"]);
    assert!(ok, "--explain D9 exits zero:\n{text}");
    assert!(
        text.contains("transitively") || text.contains("call chain"),
        "--explain D9 describes the analysis:\n{text}"
    );
    let (ok, _) = ws.run(&["--explain", "Z99"]);
    assert!(!ok, "--explain with an unknown rule must fail");

    let (ok, text) = ws.run(&["--dump-callgraph"]);
    assert!(ok, "--dump-callgraph exits zero:\n{text}");
    assert!(text.contains("digraph"), "DOT output expected:\n{text}");
    assert!(
        text.contains("run_epoch") && text.contains("helper"),
        "callgraph names reachable functions:\n{text}"
    );
}

#[test]
fn update_baseline_deletes_file_when_debt_reaches_zero() {
    let ws = Scratch::new("zero-debt");
    ws.file(
        "crates/foo/src/lib.rs",
        "pub fn a(x: u32) -> u32 { x + 1 }\n",
    );
    ws.file("lint-baseline.txt", "D5 crates/foo/src/lib.rs 3\n");
    let (ok, text) = ws.run(&["--deny"]);
    assert!(!ok, "stale baseline must fail --deny:\n{text}");
    let (ok, text) = ws.run(&["--update-baseline"]);
    assert!(ok, "--update-baseline succeeds at zero debt:\n{text}");
    assert!(
        !ws.root.join("lint-baseline.txt").exists(),
        "baseline file must be deleted when the debt reaches zero"
    );
    // And the workspace passes --deny with no baseline file at all.
    let (ok, text) = ws.run(&["--deny"]);
    assert!(
        ok,
        "zero-debt workspace passes --deny without a baseline:\n{text}"
    );
}

// ---------------------------------------------------------------------------
// Self-checks against the real workspace
// ---------------------------------------------------------------------------

#[test]
fn lint_is_clean_on_its_own_sources() {
    let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("lint crate lives inside the workspace");
    let own: Vec<String> = mrm_lint::walk::workspace_sources(&root)
        .expect("workspace walk succeeds")
        .into_iter()
        .filter(|f| f.starts_with("crates/lint/"))
        .collect();
    assert!(!own.is_empty(), "walk must see the lint's own sources");
    assert!(
        own.iter().all(|f| !f.contains("fixtures")),
        "fixtures must be excluded from the walk: {own:?}"
    );
    for rel in own {
        let source = read(&root.join(&rel));
        let report = lint_source(&source, &FileCtx::classify(&rel));
        assert!(
            report.violations.is_empty(),
            "mrm-lint must be clean on {rel}: {:?}",
            report.violations
        );
    }
}

#[test]
fn workspace_is_interprocedurally_clean() {
    // The real workspace must hold the D9/D10/U2 invariants without any
    // suppressions beyond what the sources annotate, and its call graph
    // must be non-trivial (entry points exist and reach helper crates).
    let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("lint crate lives inside the workspace");
    let analysis = analyze_workspace(&root).expect("workspace analyzes");
    let interproc: Vec<_> = analysis
        .violations
        .iter()
        .filter(|v| matches!(v.rule, RuleId::D9 | RuleId::D10 | RuleId::U2))
        .collect();
    assert!(
        interproc.is_empty(),
        "workspace must be D9/D10/U2-clean: {interproc:?}"
    );
    let dot = analysis.callgraph_dot();
    assert!(
        dot.contains("digraph") && dot.contains("->"),
        "workspace call graph must have reachable edges"
    );
}

#[test]
fn workspace_passes_deny_with_checked_in_baseline() {
    let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("lint crate lives inside the workspace");
    let out = Command::new(env!("CARGO_BIN_EXE_mrm-lint"))
        .arg("--root")
        .arg(&root)
        .arg("--deny")
        .output()
        .expect("spawn mrm-lint");
    assert!(
        out.status.success(),
        "the workspace must pass `mrm-lint --deny` with the checked-in baseline:\n{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
}
