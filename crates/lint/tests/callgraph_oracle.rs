//! Call-graph reachability checked against a hand-computed oracle.
//!
//! The graph under test is built from a small in-memory workspace whose
//! exact edge set is worked out by hand below; the test then asserts that
//! `CallGraph::build` + `reachable_from` agree with the oracle on every
//! function — reachable and unreachable alike — and that the recorded
//! parent edges reconstruct the expected shortest chains.

use std::collections::BTreeSet;

use mrm_lint::callgraph::CallGraph;
use mrm_lint::dataflow::entry_points;
use mrm_lint::parse::parse_file;
use mrm_lint::rules::FileCtx;
use mrm_lint::symbols::{FileEntry, FnId, SymbolTable};

/// The mini-workspace. Hand-derived call edges (after stoplist and
/// self-loop pruning):
///
/// ```text
/// sim::run_cluster  -> sim::phase_a            (bare, same file)
/// sim::phase_a      -> sim::phase_b            (bare, same file)
/// sim::phase_a      -> util::shared_cost       (qualified, module path)
/// sim::phase_b      -> util::shared_cost       (qualified, module path)
/// sim::on_arrival   -> sim::decode             (bare, same file)
/// sim::Sim::step    -> sim::Sim::advance_clock (method, unique name)
/// control::Controller::tick -> control::Controller::refresh_queue
/// util::shared_cost -> util::leaf              (bare, same file)
/// util::island      -> util::leaf              (bare, same file)
/// ```
///
/// `.push(...)` inside `run_cluster` is stoplisted and contributes no
/// edge even though `util` defines a `push` method; `lonely_sim` and
/// `island` have no incoming edges from any entry point.
const SIM_SRC: &str = r#"
pub fn run_cluster(n: u64) -> u64 {
    let mut acc = Vec::new();
    for i in 0..n {
        acc.push(phase_a(i));
    }
    acc.len() as u64
}

fn phase_a(i: u64) -> u64 {
    phase_b(i) + mrm_util::shared_cost(i)
}

fn phase_b(i: u64) -> u64 {
    mrm_util::shared_cost(i) * 2
}

pub fn on_arrival(ev: u64) -> u64 {
    decode(ev)
}

fn decode(ev: u64) -> u64 {
    ev ^ 1
}

fn lonely_sim(x: u64) -> u64 {
    x
}

impl Sim {
    pub fn step(&mut self) {
        self.advance_clock();
    }
    fn advance_clock(&mut self) {}
}
"#;

const CONTROL_SRC: &str = r#"
impl Controller {
    pub fn tick(&mut self) {
        self.refresh_queue();
    }
    fn refresh_queue(&mut self) {}
}
"#;

const UTIL_SRC: &str = r#"
pub fn shared_cost(i: u64) -> u64 {
    leaf(i)
}

fn leaf(i: u64) -> u64 {
    i + 1
}

pub fn island(i: u64) -> u64 {
    leaf(i)
}

impl Bag {
    pub fn push(&mut self, _x: u64) {}
}
"#;

fn build() -> (SymbolTable, CallGraph) {
    let entries = vec![
        ("crates/sim/src/lib.rs", SIM_SRC),
        ("crates/control/src/lib.rs", CONTROL_SRC),
        ("crates/util/src/lib.rs", UTIL_SRC),
    ]
    .into_iter()
    .map(|(path, src)| FileEntry {
        parsed: parse_file(src),
        ctx: FileCtx::classify(path),
    })
    .collect();
    let table = SymbolTable::build(entries);
    let graph = CallGraph::build(&table);
    (table, graph)
}

fn id(table: &SymbolTable, crate_name: &str, qual: &str) -> FnId {
    table
        .fns
        .iter()
        .position(|d| d.crate_name == crate_name && d.item.qual() == qual)
        .unwrap_or_else(|| panic!("no fn {crate_name}::{qual}"))
}

fn names_of(table: &SymbolTable, ids: impl IntoIterator<Item = FnId>) -> BTreeSet<String> {
    ids.into_iter()
        .map(|f| {
            let d = &table.fns[f];
            format!("{}::{}", d.crate_name, d.item.qual())
        })
        .collect()
}

#[test]
fn edges_match_hand_derived_oracle() {
    let (table, graph) = build();
    let oracle: BTreeSet<(String, String)> = [
        ("sim::run_cluster", "sim::phase_a"),
        ("sim::phase_a", "sim::phase_b"),
        ("sim::phase_a", "util::shared_cost"),
        ("sim::phase_b", "util::shared_cost"),
        ("sim::on_arrival", "sim::decode"),
        ("sim::Sim::step", "sim::Sim::advance_clock"),
        (
            "control::Controller::tick",
            "control::Controller::refresh_queue",
        ),
        ("util::shared_cost", "util::leaf"),
        ("util::island", "util::leaf"),
    ]
    .into_iter()
    .map(|(a, b)| (a.to_string(), b.to_string()))
    .collect();

    let mut actual: BTreeSet<(String, String)> = BTreeSet::new();
    for (caller, edges) in graph.edges.iter().enumerate() {
        let from = names_of(&table, [caller]).into_iter().next().expect("name");
        for e in edges {
            let to = names_of(&table, [e.to]).into_iter().next().expect("name");
            actual.insert((from.clone(), to));
        }
    }
    assert_eq!(actual, oracle, "call graph diverged from the hand oracle");
}

#[test]
fn reachability_matches_hand_derived_oracle() {
    let (table, graph) = build();
    let entries = entry_points(&table);
    // Entry discovery itself is part of the oracle: run_cluster (run*),
    // on_arrival (on_*), Sim::step and Controller::tick (controller verbs).
    assert_eq!(
        names_of(&table, entries.iter().copied()),
        [
            "sim::run_cluster",
            "sim::on_arrival",
            "sim::Sim::step",
            "control::Controller::tick"
        ]
        .into_iter()
        .map(str::to_string)
        .collect::<BTreeSet<_>>()
    );

    let parent = graph.reachable_from(&entries);
    let reachable = names_of(&table, parent.keys().copied());
    let expected: BTreeSet<String> = [
        "sim::run_cluster",
        "sim::on_arrival",
        "sim::Sim::step",
        "sim::Sim::advance_clock",
        "sim::phase_a",
        "sim::phase_b",
        "sim::decode",
        "control::Controller::tick",
        "control::Controller::refresh_queue",
        "util::shared_cost",
        "util::leaf",
    ]
    .into_iter()
    .map(str::to_string)
    .collect();
    assert_eq!(
        reachable, expected,
        "reachable set diverged from the oracle"
    );

    // The complement stays out: no path from any entry.
    for unreachable in ["sim::lonely_sim", "util::island", "util::Bag::push"] {
        assert!(
            !reachable.contains(unreachable),
            "{unreachable} must not be reachable"
        );
    }
}

#[test]
fn parent_edges_reconstruct_shortest_chains() {
    let (table, graph) = build();
    let parent = graph.reachable_from(&entry_points(&table));
    let leaf = id(&table, "util", "leaf");
    let chain = graph.chain_to(&parent, leaf);
    let names: Vec<String> = chain
        .iter()
        .map(|(f, _)| table.fns[*f].item.name.clone())
        .collect();
    // BFS guarantees a shortest chain: entry -> phase_a -> shared_cost ->
    // leaf (4 hops), never the 5-hop detour through phase_b.
    assert_eq!(names, vec!["run_cluster", "phase_a", "shared_cost", "leaf"]);
    assert!(chain[0].1.is_none(), "the entry has no incoming edge");
    assert_eq!(
        chain[2].1.as_ref().map(|e| e.call_repr.as_str()),
        Some("mrm_util::shared_cost"),
        "edges record how the call was spelled"
    );

    // Every non-root hop's edge line points at real source.
    for (f, e) in &chain[1..] {
        let edge = e.as_ref().expect("non-root hop has an edge");
        assert!(edge.line > 0, "edge line for {}", table.fns[*f].item.name);
    }
}
