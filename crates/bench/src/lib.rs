//! # `mrm-bench` — the experiment harness
//!
//! One binary per paper experiment (see `DESIGN.md` §4 for the experiment
//! index) plus criterion benches. Each binary prints the table/series the
//! paper reports and drops a machine-readable JSON record under
//! `target/experiments/` for `EXPERIMENTS.md` bookkeeping.
//!
//! Run them all with:
//!
//! ```text
//! for b in fig1_endurance t1_footprint t2_rwratio t3_hbm t4_techmatrix \
//!          t5_hybrid e6_housekeeping e7_dcm e8_ecc e9_cluster e10_wear \
//!          a1_retention_sweep a2_controller; do
//!     cargo run --release -p mrm-bench --bin $b
//! done
//! ```

use std::fs;
use std::path::{Path, PathBuf};

use serde::Serialize;

/// Directory where experiment JSON records are written.
pub fn experiments_dir() -> PathBuf {
    let target = std::env::var("CARGO_TARGET_DIR").unwrap_or_else(|_| "target".to_string());
    PathBuf::from(target).join("experiments")
}

/// Serializes an experiment record to `target/experiments/<id>.json`.
/// Failures are reported but non-fatal (the printed tables are the primary
/// artifact).
pub fn save_json<T: Serialize>(id: &str, record: &T) {
    let dir = experiments_dir();
    if let Err(e) = fs::create_dir_all(&dir) {
        warn(&format!("cannot create {}: {e}", dir.display()));
        return;
    }
    let path = dir.join(format!("{id}.json"));
    match serde_json::to_string_pretty(record) {
        Ok(json) => {
            if let Err(e) = fs::write(&path, json) {
                warn(&format!("cannot write {}: {e}", path.display()));
            } else {
                note(&format!("[saved {}]", path.display()));
            }
        }
        Err(e) => warn(&format!("cannot serialize {id}: {e}")),
    }
}

/// Prints an informational line. The single funnel for ad-hoc progress
/// output from the experiment binaries, so it can be restyled (or silenced)
/// in one place.
pub fn note(msg: &str) {
    println!("{msg}");
}

/// Prints a warning line to stderr.
pub fn warn(msg: &str) {
    eprintln!("warning: {msg}");
}

/// Prints a `PASS`/`FAIL` verdict line for a named acceptance check and
/// returns whether it passed, so binaries can aggregate an exit status.
pub fn check(pass: bool, desc: &str) -> bool {
    println!("[{}] {desc}", if pass { "PASS" } else { "FAIL" });
    pass
}

/// Observation artifact paths shared by every experiment binary:
/// `--telemetry <path>` (JSONL time series), `--trace <path>` (Perfetto /
/// Chrome trace-event JSON), and `--profile <path>` (profiler report +
/// folded stacks). Each flag also accepts the `=` form.
///
/// All three parse through the same helper, so every binary accepts the
/// same flags with the same error behavior: an unwritable path is a
/// consistent fatal error *before* the run starts, never a warning after
/// minutes of simulation.
#[derive(Debug, Default)]
pub struct OutputPaths {
    /// Destination for the JSONL telemetry export, when requested.
    pub telemetry: Option<PathBuf>,
    /// Destination for the causal trace JSON, when requested.
    pub trace: Option<PathBuf>,
    /// Destination for the profiler report, when requested.
    pub profile: Option<PathBuf>,
}

impl OutputPaths {
    /// Parses and preflights all three flags from `argv`.
    pub fn from_args() -> Self {
        OutputPaths {
            telemetry: output_path_from_args("--telemetry"),
            trace: output_path_from_args("--trace"),
            profile: output_path_from_args("--profile"),
        }
    }

    /// True when any observation artifact was requested.
    pub fn any(&self) -> bool {
        self.telemetry.is_some() || self.trace.is_some() || self.profile.is_some()
    }
}

/// Parses `<flag> <path>` (or `<flag>=<path>`) from `argv` and preflights
/// writability: parent directories are created and the file itself must be
/// creatable. On failure, prints one consistently-shaped error and exits
/// with status 2.
pub fn output_path_from_args(flag: &str) -> Option<PathBuf> {
    let path = PathBuf::from(mrm_sweep::flag_value_from_args(flag)?);
    if let Err(e) = preflight_writable(&path) {
        eprintln!("error: {flag} path {} is not writable: {e}", path.display());
        std::process::exit(2);
    }
    Some(path)
}

/// The writability probe behind [`output_path_from_args`]: create parents,
/// then create (or truncate) the file. The run overwrites it with real
/// content later, so an interrupted run leaves an empty artifact rather
/// than a stale one.
fn preflight_writable(path: &Path) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            fs::create_dir_all(parent)?;
        }
    }
    fs::write(path, "")
}

/// Parses `--telemetry <path>` (or `--telemetry=<path>`) from `argv`:
/// where the experiment binaries write their JSONL time-series export.
pub fn telemetry_path_from_args() -> Option<PathBuf> {
    output_path_from_args("--telemetry")
}

/// Writes an observation artifact (telemetry/trace/profile), labelled in
/// the progress line; failure is a warning, not an abort — the printed
/// tables remain the primary artifact of a run.
pub fn save_artifact(what: &str, path: &Path, contents: &str) {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            if let Err(e) = fs::create_dir_all(parent) {
                warn(&format!("cannot create {}: {e}", parent.display()));
                return;
            }
        }
    }
    match fs::write(path, contents) {
        Ok(()) => note(&format!(
            "[{what}: {} lines -> {}]",
            contents.lines().count(),
            path.display()
        )),
        Err(e) => warn(&format!("cannot write {}: {e}", path.display())),
    }
}

/// Writes a telemetry export; see [`save_artifact`].
pub fn save_telemetry(path: &std::path::Path, contents: &str) {
    save_artifact("telemetry", path, contents);
}

/// Warns when `--trace`/`--profile` were passed to a binary that has no
/// causal tracer. The flags parse (and preflight) everywhere for
/// consistency, but only the cluster experiments emit traces and
/// profiles; anywhere else the artifact would be an empty file.
pub fn warn_unsupported_obs(bin: &str, out: &OutputPaths) {
    if out.trace.is_some() {
        warn(&format!(
            "{bin} does not emit a causal trace; --trace ignored"
        ));
    }
    if out.profile.is_some() {
        warn(&format!("{bin} does not emit a profile; --profile ignored"));
    }
}

/// Prints a section heading.
pub fn heading(title: &str) {
    println!("\n{}", "=".repeat(72));
    println!("{title}");
    println!("{}", "=".repeat(72));
}

/// Renders a log10-scale ASCII bar for quantities spanning many decades
/// (endurance counts): one `#` per decade, `min_decade`-anchored.
pub fn log_bar(value: f64, min_decade: i32, max_decade: i32) -> String {
    if value <= 0.0 {
        return String::new();
    }
    let decades = value.log10();
    let filled = ((decades - f64::from(min_decade)).max(0.0)).round() as usize;
    let width = (max_decade - min_decade).max(1) as usize;
    let filled = filled.min(width);
    format!("{}{}", "#".repeat(filled), ".".repeat(width - filled))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_bar_scales() {
        assert_eq!(log_bar(1e5, 0, 10), "#####.....");
        assert_eq!(log_bar(1e10, 0, 10), "##########");
        assert_eq!(log_bar(1e15, 0, 10), "##########"); // clamped
        assert_eq!(log_bar(0.0, 0, 10), "");
        assert_eq!(log_bar(1.0, 0, 4), "....");
    }

    #[test]
    fn experiments_dir_is_under_target() {
        let d = experiments_dir();
        assert!(d.ends_with("experiments"));
    }

    #[test]
    fn preflight_creates_parents_and_rejects_unwritable() {
        let base = std::env::temp_dir().join(format!("mrm_bench_preflight_{}", std::process::id()));
        let nested = base.join("a/b/out.jsonl");
        assert!(preflight_writable(&nested).is_ok());
        assert!(nested.exists(), "preflight should create the file");
        // A path whose "parent" is a regular file cannot be written.
        let through_file = nested.join("child.json");
        assert!(preflight_writable(&through_file).is_err());
        let _ = fs::remove_dir_all(&base);
    }
}
