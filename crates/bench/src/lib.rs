//! # `mrm-bench` — the experiment harness
//!
//! One binary per paper experiment (see `DESIGN.md` §4 for the experiment
//! index) plus criterion benches. Each binary prints the table/series the
//! paper reports and drops a machine-readable JSON record under
//! `target/experiments/` for `EXPERIMENTS.md` bookkeeping.
//!
//! Run them all with:
//!
//! ```text
//! for b in fig1_endurance t1_footprint t2_rwratio t3_hbm t4_techmatrix \
//!          t5_hybrid e6_housekeeping e7_dcm e8_ecc e9_cluster e10_wear \
//!          a1_retention_sweep a2_controller; do
//!     cargo run --release -p mrm-bench --bin $b
//! done
//! ```

use std::fs;
use std::path::PathBuf;

use serde::Serialize;

/// Directory where experiment JSON records are written.
pub fn experiments_dir() -> PathBuf {
    let target = std::env::var("CARGO_TARGET_DIR").unwrap_or_else(|_| "target".to_string());
    PathBuf::from(target).join("experiments")
}

/// Serializes an experiment record to `target/experiments/<id>.json`.
/// Failures are reported but non-fatal (the printed tables are the primary
/// artifact).
pub fn save_json<T: Serialize>(id: &str, record: &T) {
    let dir = experiments_dir();
    if let Err(e) = fs::create_dir_all(&dir) {
        warn(&format!("cannot create {}: {e}", dir.display()));
        return;
    }
    let path = dir.join(format!("{id}.json"));
    match serde_json::to_string_pretty(record) {
        Ok(json) => {
            if let Err(e) = fs::write(&path, json) {
                warn(&format!("cannot write {}: {e}", path.display()));
            } else {
                note(&format!("[saved {}]", path.display()));
            }
        }
        Err(e) => warn(&format!("cannot serialize {id}: {e}")),
    }
}

/// Prints an informational line. The single funnel for ad-hoc progress
/// output from the experiment binaries, so it can be restyled (or silenced)
/// in one place.
pub fn note(msg: &str) {
    println!("{msg}");
}

/// Prints a warning line to stderr.
pub fn warn(msg: &str) {
    eprintln!("warning: {msg}");
}

/// Prints a `PASS`/`FAIL` verdict line for a named acceptance check and
/// returns whether it passed, so binaries can aggregate an exit status.
pub fn check(pass: bool, desc: &str) -> bool {
    println!("[{}] {desc}", if pass { "PASS" } else { "FAIL" });
    pass
}

/// Parses `--telemetry <path>` (or `--telemetry=<path>`) from `argv`:
/// where the experiment binaries write their JSONL time-series export.
pub fn telemetry_path_from_args() -> Option<PathBuf> {
    mrm_sweep::flag_value_from_args("--telemetry").map(PathBuf::from)
}

/// Writes a telemetry export, reporting failure as a warning (telemetry is
/// never load-bearing for an experiment run).
pub fn save_telemetry(path: &std::path::Path, contents: &str) {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            if let Err(e) = fs::create_dir_all(parent) {
                warn(&format!("cannot create {}: {e}", parent.display()));
                return;
            }
        }
    }
    match fs::write(path, contents) {
        Ok(()) => note(&format!(
            "[telemetry: {} lines -> {}]",
            contents.lines().count(),
            path.display()
        )),
        Err(e) => warn(&format!("cannot write {}: {e}", path.display())),
    }
}

/// Prints a section heading.
pub fn heading(title: &str) {
    println!("\n{}", "=".repeat(72));
    println!("{title}");
    println!("{}", "=".repeat(72));
}

/// Renders a log10-scale ASCII bar for quantities spanning many decades
/// (endurance counts): one `#` per decade, `min_decade`-anchored.
pub fn log_bar(value: f64, min_decade: i32, max_decade: i32) -> String {
    if value <= 0.0 {
        return String::new();
    }
    let decades = value.log10();
    let filled = ((decades - f64::from(min_decade)).max(0.0)).round() as usize;
    let width = (max_decade - min_decade).max(1) as usize;
    let filled = filled.min(width);
    format!("{}{}", "#".repeat(filled), ".".repeat(width - filled))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_bar_scales() {
        assert_eq!(log_bar(1e5, 0, 10), "#####.....");
        assert_eq!(log_bar(1e10, 0, 10), "##########");
        assert_eq!(log_bar(1e15, 0, 10), "##########"); // clamped
        assert_eq!(log_bar(0.0, 0, 10), "");
        assert_eq!(log_bar(1.0, 0, 4), "....");
    }

    #[test]
    fn experiments_dir_is_under_target() {
        let d = experiments_dir();
        assert!(d.ends_with("experiments"));
    }
}
