//! **A6** (ablation) — sensitivity of the Figure-1 conclusion.
//!
//! Every input of the endurance analysis is an estimate. This ablation
//! perturbs each (token throughput, KV vector size, system capacity,
//! device lifetime) by 0.1×–10× and checks that both Figure-1 observations
//! survive — the robustness a vision paper's argument needs.

use mrm_analysis::report::Table;
use mrm_analysis::sensitivity::{observations_hold, tornado_cell, tornado_inputs, Figure1Inputs};
use mrm_bench::{heading, save_json};
use mrm_sim::units::format_sci;
use mrm_sweep::{threads_from_args, Grid, Sweep};

fn main() {
    let threads = threads_from_args();
    heading(&format!(
        "A6 — tornado: one input perturbed at a time ({threads} sweep threads)"
    ));
    let factors = [0.1, 0.3, 3.0, 10.0];
    // The 4 inputs × 4 factors tornado is an independent grid of scenarios:
    // sweep it in parallel, rows arriving in (input, factor) grid order.
    let rows = Sweep::new(
        Grid::axis(tornado_inputs()).cross(factors),
        |&(input, factor), _rng| tornado_cell(input, factor),
    )
    .run_parallel(threads);
    let mut t = Table::new(&[
        "input",
        "x0.1",
        "x0.3",
        "x3",
        "x10",
        "obs1 (HBM over)",
        "obs2 (gap)",
    ]);
    for input in [
        "token throughput",
        "KV bytes/token",
        "system capacity",
        "device lifetime",
    ] {
        let cells: Vec<String> = factors
            .iter()
            .map(|&f| {
                let r = rows
                    .iter()
                    .find(|r| r.input == input && (r.factor - f).abs() < 1e-12)
                    .unwrap();
                format_sci(r.kv_requirement)
            })
            .collect();
        let all_hold = rows
            .iter()
            .filter(|r| r.input == input)
            .all(|r| r.obs1_holds && r.obs2_holds);
        t.row(&[
            input,
            &cells[0],
            &cells[1],
            &cells[2],
            &cells[3],
            if all_hold { "holds" } else { "FLIPS" },
            if all_hold { "holds" } else { "FLIPS" },
        ]);
    }
    print!("{}", t.render());
    println!("(cells are the KV-cache writes/cell requirement under each perturbation)");

    heading("A6b — the breaking point");
    // Find how far token throughput must grow before a potential-class
    // technology (PCM, 1e9) falls below the base KV line.
    let mut factor = 1.0;
    loop {
        let mut i = Figure1Inputs::baseline();
        i.tokens_per_s *= factor;
        if i.requirements().kv_cache > 1e9 {
            break;
        }
        factor *= 2.0;
        if factor > 1e9 {
            break;
        }
    }
    println!("PCM potential (1e9 cycles) stops covering the base KV line only at ~{factor:.0}x");
    println!("today's Splitwise token rates; STT-MRAM potential (1e15) never does.");

    let base_ok = observations_hold(&Figure1Inputs::baseline().requirements());
    assert!(base_ok.0 && base_ok.1);
    assert!(rows.iter().all(|r| r.obs1_holds && r.obs2_holds));
    println!("\nPASS both observations hold across every 10x single-input perturbation");

    save_json("a6_sensitivity", &rows);
}
