//! **E16** (§4/§5) — multi-year managed-retention soak.
//!
//! The fuzzer (`mrm-fuzz`) attacks components with adversarial op
//! sequences; this experiment attacks them with *time*. One seeded run
//! drives three sim-years of sustained serving load through the whole
//! managed-retention stack at once — session KV appended into the zoned
//! block controller, per-turn lifetime hints through the DCM controller,
//! block-device churn through the wear-leveled FTL, and a live control
//! plane (registry + reconciler + audit log) that absorbs expiries,
//! retention-window reconfigurations, and fault recoveries as they
//! happen. The fault ladder escalates with device age, so late-life
//! behaviour (derates, scrub escalations, zone retirement) is reached
//! through wear rather than asserted.
//!
//! At evenly spaced checkpoints the run *stops and proves* the stack is
//! still sane: FTL invariants hold, the audit log is dense and monotone
//! with zero REQUIRED-DURABLE violations, zone accounting is within
//! bounds, and the DCM safety margin stays inside its clamp. Any
//! violation panics (non-zero exit), so CI can run `--quick` as a smoke.
//!
//! Determinism is part of the contract: two runs at the same seed must
//! produce byte-identical reports. Everything is driven by `SimRng` and
//! the calendar [`EventQueue`] — no wall-clock input anywhere.

use mrm_bench::{heading, save_json};
use mrm_control::{AuditAction, ControlClass, ControlPlane, Reconciler, RetentionRegistry};
use mrm_controller::dcm::DcmController;
use mrm_controller::ftl::{Ftl, FtlConfig};
use mrm_controller::mrm_block::{MrmBlockController, ZoneError, ZoneId, ZoneState};
use mrm_device::device::MemoryDevice;
use mrm_device::tech::presets;
use mrm_faults::{FaultConfig, FaultModel, RecoveryAction};
use mrm_sim::event::EventQueue;
use mrm_sim::rng::SimRng;
use mrm_sim::time::{SimDuration, SimTime};
use mrm_sim::units::MIB;
use mrm_workload::model::{ModelConfig, Quantization};
use mrm_workload::sessions::SessionSampler;

const SEED: u64 = 0x4D52_4D16_0E16_50AC;
const ZONE_BYTES: u64 = 256 * 1024;

/// Scale knobs: `--quick` is the CI smoke (six sim-weeks), the default
/// is the full three-sim-year endurance run.
struct Scale {
    days: u64,
    sessions_per_day: u64,
    reconfig_every_days: u64,
    label: &'static str,
}

impl Scale {
    fn from_args() -> Scale {
        if std::env::args().any(|a| a == "--quick") {
            Scale {
                days: 42,
                sessions_per_day: 24,
                reconfig_every_days: 10,
                label: "quick (CI smoke)",
            }
        } else {
            Scale {
                days: 1095,
                sessions_per_day: 48,
                reconfig_every_days: 90,
                label: "full (3 sim-years)",
            }
        }
    }
}

/// Events driving the soak through the calendar queue — the queue itself
/// is under test here too, across years of sim-time and day-boundary
/// rollovers.
#[derive(Clone, Copy, Debug)]
enum Ev {
    Session,
    Maintain,
    Checkpoint,
}

struct Soak {
    scale: Scale,
    rng: SimRng,
    sampler: SessionSampler,
    kv_bytes_per_token: u64,

    zones: MrmBlockController,
    cur_zone: ZoneId,
    dcm: DcmController,
    ftl: Ftl,
    ftl_dead: bool,

    control: ControlPlane,
    prefix_recon: Reconciler,
    followup_idx: usize,

    next_id: u64,
    dcm_addr: u64,
    dcm_capacity: u64,

    // Counters for the checkpoint report.
    sessions: u64,
    turns: u64,
    kv_bytes: u64,
    zone_rotations: u64,
    zone_read_failures: u64,
    ftl_errors: u64,
    work_items: u64,
    reconfigs: u64,
    violations: u64,
    checkpoints: u64,
}

/// Follow-up windows the quarterly reconfiguration cycles through.
const FOLLOWUPS: [SimDuration; 3] = [
    SimDuration::from_secs(20),
    SimDuration::from_secs(600),
    SimDuration::from_secs(3600),
];

impl Soak {
    fn new(scale: Scale) -> Soak {
        let mut zone_tech = presets::mrm_hours();
        zone_tech.capacity_bytes = 32 * MIB;
        let mut zones = MrmBlockController::new(MemoryDevice::new(zone_tech), ZONE_BYTES);
        zones.attach_faults(FaultModel::new(FaultConfig::mrm(), SEED ^ 1));
        let cur_zone = zones.open_zone().expect("fresh controller has free zones");

        let mut dcm_tech = presets::mrm_hours();
        dcm_tech.capacity_bytes = 32 * MIB;
        let dcm_capacity = dcm_tech.capacity_bytes;
        let mut dcm = DcmController::new(MemoryDevice::new(dcm_tech), 1.5);
        dcm.attach_faults(FaultModel::new(FaultConfig::mrm(), SEED ^ 2));

        let cfg = FtlConfig {
            blocks: 64,
            pages_per_block: 16,
            page_bytes: 4096,
            logical_fraction: 0.8,
            gc_threshold_blocks: 4,
            ue_retire_threshold: 3,
            ..FtlConfig::small()
        };
        let mut ftl = Ftl::new(cfg);
        ftl.attach_faults(FaultModel::new(FaultConfig::mrm(), SEED ^ 3));

        Soak {
            rng: SimRng::seed_from(SEED),
            sampler: SessionSampler::conversation_default(4096),
            kv_bytes_per_token: ModelConfig::llama2_70b().kv_bytes_per_token(Quantization::Fp16),
            zones,
            cur_zone,
            dcm,
            ftl,
            ftl_dead: false,
            control: ControlPlane::serving_default(FOLLOWUPS[0]),
            prefix_recon: Reconciler::new(ControlClass::KvPrefix),
            followup_idx: 0,
            next_id: 0,
            dcm_addr: 0,
            dcm_capacity,
            sessions: 0,
            turns: 0,
            kv_bytes: 0,
            zone_rotations: 0,
            zone_read_failures: 0,
            ftl_errors: 0,
            work_items: 0,
            reconfigs: 0,
            violations: 0,
            checkpoints: 0,
            scale,
        }
    }

    /// Appends into the current zone, rotating (finish + least-worn open,
    /// falling back to resetting an old zone) when it fills. Wear spreads
    /// because rotation always picks the least-worn free zone.
    fn append_kv(&mut self, now: SimTime, bytes: u64, retention: SimDuration) {
        let bytes = bytes.clamp(1, ZONE_BYTES);
        for _ in 0..3 {
            match self.zones.append(now, self.cur_zone, bytes, retention) {
                Ok(_) => return,
                Err(ZoneError::ZoneOverflow)
                | Err(ZoneError::NotOpen)
                | Err(ZoneError::ZoneRetired) => {
                    let _ = self.zones.finish_zone(self.cur_zone);
                    self.zone_rotations += 1;
                    match self.zones.open_zone_least_worn() {
                        Ok(z) => self.cur_zone = z,
                        Err(_) => {
                            // No Empty zones left: reclaim the oldest
                            // expiring full zone and retry.
                            let horizon = now.saturating_add(SimDuration::from_days(3650));
                            let victims = self.zones.zones_expiring_before(horizon);
                            let Some((victim, _)) = victims.first().copied() else {
                                return;
                            };
                            let _ = self.zones.reset_zone(victim);
                            if let Ok(z) = self.zones.open_zone_least_worn() {
                                self.cur_zone = z;
                            }
                        }
                    }
                }
                Err(_) => return,
            }
        }
    }

    /// One interactive session: store KV in zones + DCM, register the
    /// parked prefix with the reconciler, read back through the fault
    /// ladder, and record the lifecycle in the audit log.
    fn session(&mut self, now: SimTime) {
        let s = self.sampler.sample(&mut self.rng);
        self.sessions += 1;
        self.turns += s.turns.len() as u64;
        let id = self.next_id;
        self.next_id += 1;

        let context = s.final_context_tokens();
        // The real KV footprint is GBs; the simulated device is 32 MiB.
        // Scale to a per-session footprint that still fills and rotates
        // zones at soak timescales.
        let bytes = (context * self.kv_bytes_per_token / 4096).clamp(4096, 128 * 1024);
        self.kv_bytes += bytes;

        let followup = FOLLOWUPS[self.followup_idx];
        let max_gap = s.max_gap();
        self.append_kv(now, bytes, max_gap.max(followup));
        self.control.record(
            now,
            ControlClass::KvPrefix,
            id,
            AuditAction::Store,
            "session-kv",
            bytes,
        );
        self.prefix_recon.observe_store(
            id,
            now.saturating_add(followup),
            now.saturating_add(max_gap),
            followup,
        );

        // Per-turn DCM writes with the think-gap as the lifetime hint:
        // the controller picks the covering retention class.
        for turn in &s.turns {
            let len = (u64::from(turn.prompt_tokens) + u64::from(turn.output_tokens)).max(64);
            let addr = self.dcm_addr % (self.dcm_capacity - len);
            self.dcm_addr = self.dcm_addr.wrapping_add(len * 7 + 4096);
            let hint = turn.gap.max(SimDuration::from_secs(30));
            let _ = self.dcm.write(now, addr, len, hint);
            // Read a fraction back through the fault ladder; an
            // unrecoverable read means the KV must be recomputed — which
            // the control plane records *before* the drop.
            if self.rng.gen_bool(0.25) {
                if let Ok((_, _, action)) = self.dcm.read_checked(now, addr, len) {
                    if action == RecoveryAction::Retired {
                        let item = self.prefix_recon.fault_recovery(id, &self.control.registry);
                        self.control.record_work(now, &item, bytes);
                        self.work_items += 1;
                    }
                }
            }
        }

        // Occasionally re-read the zone-resident KV through the zone
        // recovery state machine (retry → scrub escalation → retire).
        if self.rng.gen_bool(0.2) {
            let len = bytes.min(ZONE_BYTES);
            if let Ok(ptr) = self.zones.write_pointer(self.cur_zone) {
                if ptr >= len {
                    let scrub = SimDuration::from_secs(12 * 3600);
                    match self
                        .zones
                        .read_checked(now, self.cur_zone, ptr - len, len, scrub)
                    {
                        Ok(r) if !r.recovered() => self.zone_read_failures += 1,
                        Err(_) => self.zone_read_failures += 1,
                        Ok(_) => {}
                    }
                }
            }
        }
    }

    /// Daily maintenance: reconcile expiries, scrub deadline-near zones,
    /// churn the FTL, and (quarterly) reconfigure the retention window.
    fn maintain(&mut self, now: SimTime, day: u64) {
        // Reconciler pass over parked prefixes due within the next day.
        let horizon = now.saturating_add(SimDuration::from_days(1));
        let items = self.prefix_recon.plan(now, horizon, &self.control.registry);
        for item in &items {
            self.control.record_work(now, item, 4096);
            match item.kind {
                mrm_control::WorkKind::Refresh => {
                    self.prefix_recon.observe_refreshed(item.id, now);
                }
                _ => self.prefix_recon.observe_release(item.id),
            }
        }
        self.work_items += items.len() as u64;

        // Scrub zones whose retention deadline falls within 12 hours.
        let scrub_before = now.saturating_add(SimDuration::from_secs(12 * 3600));
        for (z, _) in self.zones.zones_expiring_before(scrub_before) {
            let _ = self
                .zones
                .scrub_zone(now, z, SimDuration::from_secs(12 * 3600));
        }

        // FTL churn: block-device wear with an age-escalating RBER ladder.
        if !self.ftl_dead {
            let logical = self.ftl.config().logical_pages();
            let year = day / 365;
            let rber = [1e-6, 7e-4, 3e-3][year.min(2) as usize];
            for _ in 0..32 {
                let lpn = self.rng.gen_range_u64(logical);
                if self.ftl.write(lpn).is_err() {
                    self.ftl_errors += 1;
                    self.ftl_dead = true;
                    break;
                }
            }
            for _ in 0..8 {
                let lpn = self.rng.gen_range_u64(logical);
                let _ = self.ftl.trim(lpn);
            }
            for _ in 0..16 {
                let lpn = self.rng.gen_range_u64(logical);
                match self.ftl.read_checked(lpn, rber) {
                    Ok(_) => {}
                    Err(_) => self.ftl_errors += 1,
                }
            }
        }

        // Quarterly retention-window reconfiguration: the DCM thesis is
        // that retention is a software decision, so change it live.
        if day > 0 && day.is_multiple_of(self.scale.reconfig_every_days) {
            self.followup_idx = (self.followup_idx + 1) % FOLLOWUPS.len();
            let w = FOLLOWUPS[self.followup_idx];
            self.control.registry = RetentionRegistry::serving_default(w);
            self.control.record(
                now,
                ControlClass::KvPrefix,
                u64::MAX,
                AuditAction::Migrate,
                "retention-window-reconfigured",
                0,
            );
            self.reconfigs += 1;
        }
    }

    /// Stop-the-world invariant audit. Panics (non-zero exit) on any
    /// violation; prints one deterministic line per checkpoint.
    fn checkpoint(&mut self, now: SimTime, day: u64) {
        self.checkpoints += 1;

        // 1. FTL structural invariants (map/inverse agreement, valid
        //    counts, free accounting).
        if let Err(e) = self.ftl.check_invariants() {
            self.violations += 1;
            panic!("day {day}: FTL invariants violated: {e}");
        }

        // 2. REQUIRED-DURABLE: no Required-class reclaim without a
        //    recorded recovery, under the *current* registry.
        let bad = self
            .control
            .audit
            .required_drop_violations(&self.control.registry);
        if !bad.is_empty() {
            self.violations += 1;
            panic!("day {day}: required-drop violations at seqs {bad:?}");
        }

        // 3. Audit log structure: dense seqs, nondecreasing sim-time.
        let records = self.control.audit.records();
        for (i, r) in records.iter().enumerate() {
            assert_eq!(r.seq, i as u64, "day {day}: audit seq hole at {i}");
            if i > 0 {
                assert!(
                    records[i - 1].at <= r.at,
                    "day {day}: audit time regressed at seq {i}"
                );
            }
        }

        // 4. Zone accounting: write pointers within bounds, retirement
        //    bounded by the zone population.
        let zone_count = self.zones.zone_count();
        let mut full = 0u64;
        let mut retired = 0u64;
        for i in 0..zone_count {
            let z = ZoneId(i as u32);
            let state = self.zones.zone_state(z).expect("zone ids are dense");
            let ptr = self.zones.write_pointer(z).unwrap_or(0);
            assert!(
                ptr <= ZONE_BYTES,
                "day {day}: zone {i} write pointer {ptr} beyond zone"
            );
            match state {
                ZoneState::Full => full += 1,
                ZoneState::Retired => retired += 1,
                _ => {}
            }
        }
        assert_eq!(
            retired,
            self.zones.zones_retired(),
            "day {day}: retirement counter disagrees with zone states"
        );

        // 5. DCM safety margin stays inside its documented clamp.
        let margin = self.dcm.margin();
        assert!(
            (1.0..=4.0).contains(&margin),
            "day {day}: DCM margin {margin} escaped [1, 4]"
        );

        println!(
            "day {day:>4} ({:>5.2} sim-years): sessions {:>6}, kv {:>5} MiB, \
             rotations {:>4}, zones full/retired {full}/{retired}, \
             scrubs {:>4}, derates {:>2}, audit {:>6} recs, work {:>5}, \
             ftl wa {:.2}, violations 0",
            now.as_nanos() as f64 / (365.25 * 86_400e9),
            self.sessions,
            self.kv_bytes / MIB,
            self.zone_rotations,
            self.zones.scrub_ops(),
            self.dcm.derates(),
            records.len(),
            self.work_items,
            self.ftl.stats().write_amplification(),
        );
    }
}

fn main() {
    let scale = Scale::from_args();
    heading("E16 — multi-year managed-retention soak");
    println!(
        "scale: {} — {} sim-days, {} sessions/day, reconfig every {} days, seed 0x{SEED:016x}\n",
        scale.label, scale.days, scale.sessions_per_day, scale.reconfig_every_days
    );

    let days = scale.days;
    let sessions_per_day = scale.sessions_per_day;
    let checkpoint_every = (days / 10).max(1);
    let mut soak = Soak::new(scale);

    // Drive everything through the calendar queue: per-day maintenance
    // and checkpoints, plus sessions spread across each day at seeded
    // offsets. The queue crosses ~1100 day-horizons in the full run.
    let mut queue: EventQueue<Ev> = EventQueue::new();
    let day_d = SimDuration::from_days(1);
    for day in 0..days {
        let base = SimTime::ZERO + day_d * day;
        queue.schedule(base + SimDuration::from_secs(86_399), Ev::Maintain);
        if day > 0 && day.is_multiple_of(checkpoint_every) {
            queue.schedule(base, Ev::Checkpoint);
        }
        for _ in 0..sessions_per_day {
            let off = SimDuration::from_secs(soak.rng.gen_range_u64(86_000));
            queue.schedule(base + off, Ev::Session);
        }
    }

    while let Some((t, ev)) = queue.pop() {
        let day = t.as_nanos() / 86_400_000_000_000;
        match ev {
            Ev::Session => soak.session(t),
            Ev::Maintain => soak.maintain(t, day),
            Ev::Checkpoint => soak.checkpoint(t, day),
        }
    }
    // Final checkpoint at end of run.
    let end = SimTime::ZERO + day_d * days;
    soak.checkpoint(end, days);

    heading("Reading the experiment");
    println!("- every checkpoint re-proved FTL, audit, zone, and margin invariants");
    println!("  after months of accumulated wear, scrubs, and reconfigurations;");
    println!("- zone rotation + least-worn open spreads write cycles, so multi-year");
    println!("  session load never exhausts a single zone's endurance;");
    println!(
        "- {} retention-window reconfigurations were absorbed live, with the",
        soak.reconfigs
    );
    println!("  audit log staying REQUIRED-DURABLE-clean throughout (the §4 claim");
    println!("  that software-owned retention is operable, not just efficient).");

    assert_eq!(soak.violations, 0);
    assert!(soak.checkpoints >= 10, "soak must actually checkpoint");
    assert!(soak.sessions >= days * sessions_per_day * 9 / 10);
    println!(
        "\nPASS e16 soak: {} checkpoints, {} sessions, {} audit records, 0 violations",
        soak.checkpoints,
        soak.sessions,
        soak.control.audit.len(),
    );

    save_json(
        "e16_soak",
        &(
            soak.checkpoints,
            soak.sessions,
            soak.kv_bytes,
            soak.zone_rotations,
            soak.work_items,
            soak.reconfigs,
        ),
    );
}
