//! **E13-control** (§4) — the retention control plane, audited end to end.
//!
//! The paper's §4 claim is that *software owns retention*: every data
//! class declares a lifetime, and every store/refresh/migrate/drop is a
//! policy decision, not a side effect. This experiment runs the serving
//! cluster with the control plane's audit log attached and sweeps the two
//! regimes that matter — a healthy cluster and one provisioned at the
//! failure margin (retention == data lifetime, 40x BER) — across the MRM
//! and MRM+DCM placements. The table shows the decision histogram each
//! regime produces; the shape checks assert the §4 contract: the registry
//! fully classifies the serving data set, the recovery ladder flows
//! through the control plane (every weight re-fetch is audited), and no
//! Required-class object is ever reclaimed without a recorded re-fetch or
//! recompute.
//!
//! Flags: `--quick` (shorter runs for CI), `--seed <n>`, `--threads <n>`,
//! `--telemetry <path>` (sim-time JSONL series per grid point). At a fixed
//! seed the saved JSON and the telemetry JSONL are byte-identical for any
//! thread count (the control-smoke CI job diffs exactly that).

use mrm_analysis::report::Table;
use mrm_bench::{check, heading, save_json, save_telemetry, telemetry_path_from_args};
use mrm_control::registry::RetentionRegistry;
use mrm_control::AuditAction;
use mrm_faults::FaultConfig;
use mrm_sim::time::SimDuration;
use mrm_sweep::{flag_value_from_args, threads_from_args, Grid, Sweep};
use mrm_telemetry::{export, SimTelemetry, Snapshot};
use mrm_tiering::cluster::{ClusterConfig, ClusterReport, ClusterSim};
use mrm_tiering::placement::PlacementPolicy;
use serde::{Serialize, Value};

/// Sim-time spacing of telemetry snapshots for every cluster run.
const SNAPSHOT_EVERY: SimDuration = SimDuration::from_secs(5);

/// The two retention regimes swept per placement policy.
#[derive(Clone, Copy)]
enum Regime {
    /// No injected faults: the audit log shows the steady-state decision
    /// mix (stores, TTL drops, refreshes, retires).
    Healthy,
    /// Retention provisioned exactly at the data lifetime with the BER
    /// curve scaled 40x: the full recovery ladder fires and every rung
    /// must land in the audit log.
    Margin1,
}

impl Regime {
    fn label(self) -> &'static str {
        match self {
            Regime::Healthy => "healthy",
            Regime::Margin1 => "margin-1x",
        }
    }
}

/// One grid point in the saved JSON record: the cluster report (which
/// embeds the `ControlSummary` decision histogram) plus the audit-log
/// invariants checked for that run.
#[derive(Serialize)]
struct ControlRecord {
    policy: String,
    regime: String,
    audit_well_formed: bool,
    required_drop_violations: u64,
    report: ClusterReport,
}

fn config(policy: PlacementPolicy, regime: Regime, secs: u64, seed: u64) -> ClusterConfig {
    let mut cfg = ClusterConfig::llama70b(policy, 2, 8.0);
    cfg.duration = SimDuration::from_secs(secs);
    cfg.followup_window = SimDuration::from_secs(20);
    cfg.hint_window = SimDuration::from_secs(20);
    cfg.followup_prob = 0.8;
    cfg.maintenance_period = SimDuration::from_secs(5);
    cfg.seed = seed;
    if let Regime::Margin1 = regime {
        cfg.faults = FaultConfig {
            ber_scale: 40.0,
            provision_margin: Some(1.0),
            ..FaultConfig::mrm()
        };
    }
    cfg
}

/// Runs one grid point with the audit log (and, when `collect` is set, a
/// telemetry sink) attached, then folds the log into the saved record.
fn run_point(cfg: &ClusterConfig, collect: bool) -> (ControlRecord, Vec<Snapshot>) {
    let registry = RetentionRegistry::serving_default(cfg.followup_window);
    let mut tele = SimTelemetry::new(SNAPSHOT_EVERY);
    let mut sim = ClusterSim::new(cfg.clone());
    if collect {
        sim.attach_telemetry(&mut tele);
    }
    let (report, audit) = sim.run_with_audit();

    let recs = audit.records();
    let well_formed = recs.iter().enumerate().all(|(i, r)| r.seq == i as u64)
        && recs.windows(2).all(|w| w[0].at <= w[1].at)
        && report.control.audit_records == audit.len() as u64
        && report.control.stores == audit.count(AuditAction::Store)
        && report.control.drops == audit.count(AuditAction::Drop)
        && report.control.refetches == audit.count(AuditAction::Refetch);
    let record = ControlRecord {
        policy: String::new(), // tagged by the caller from the grid point
        regime: String::new(),
        audit_well_formed: well_formed,
        required_drop_violations: audit.required_drop_violations(&registry).len() as u64,
        report,
    };
    (
        record,
        if collect {
            tele.into_snapshots()
        } else {
            Vec::new()
        },
    )
}

/// Tags one grid point's snapshots and appends the JSONL lines.
fn append_series(out: &mut String, point: usize, policy: &str, regime: &str, snaps: &[Snapshot]) {
    out.push_str(&export::jsonl_tagged(
        snaps,
        &[
            ("experiment", Value::Str("e13_control".to_string())),
            ("point", Value::U64(point as u64)),
            ("policy", Value::Str(policy.to_string())),
            ("regime", Value::Str(regime.to_string())),
        ],
    ));
}

fn main() {
    let quick = std::env::args().skip(1).any(|a| a == "--quick");
    let secs = if quick { 45 } else { 90 };
    let seed = flag_value_from_args("--seed")
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(0xC0_47_01);
    let threads = threads_from_args();
    let telemetry_path = telemetry_path_from_args();
    let collect = telemetry_path.is_some();

    heading(&format!(
        "E13-control — audited retention decisions: 2 placements x 2 regimes, seed {seed}, \
         {secs} s ({threads} sweep threads{})",
        if quick { ", --quick" } else { "" }
    ));

    let policies = [PlacementPolicy::HbmMrm, PlacementPolicy::HbmMrmDcm];
    let regimes = [Regime::Healthy, Regime::Margin1];
    let grid = Grid::axis(policies)
        .cross(regimes)
        .map(|(p, r)| (p, r, config(p, r, secs, seed)));
    let mut results: Vec<ControlRecord> = Vec::new();
    let mut jsonl = String::new();
    let points = Sweep::new(grid, move |(p, r, cfg), _rng| {
        let (mut record, snaps) = run_point(cfg, collect);
        record.policy = p.label().to_string();
        record.regime = r.label().to_string();
        (record, snaps)
    })
    .run_parallel(threads);
    for (i, (record, snaps)) in points.into_iter().enumerate() {
        append_series(&mut jsonl, i, &record.policy, &record.regime, &snaps);
        results.push(record);
    }

    let mut t = Table::new(&[
        "system",
        "regime",
        "records",
        "stores",
        "refresh",
        "migrate",
        "drops",
        "retires",
        "escalate",
        "refetch",
        "recompute",
        "violations",
        "tok/s",
    ]);
    for r in &results {
        let c = &r.report.control;
        t.row(&[
            &r.policy,
            &r.regime,
            &c.audit_records.to_string(),
            &c.stores.to_string(),
            &c.refreshes.to_string(),
            &c.migrations.to_string(),
            &c.drops.to_string(),
            &c.retires.to_string(),
            &c.escalations.to_string(),
            &c.refetches.to_string(),
            &c.recomputes.to_string(),
            &r.required_drop_violations.to_string(),
            &format!("{:.0}", r.report.tokens_per_s),
        ]);
    }
    print!("{}", t.render());

    // Grid is row-major policy x regime: index 1 is HbmMrm at margin 1.
    let registry = RetentionRegistry::serving_default(SimDuration::from_secs(20));
    let faulted = &results[1];
    let healthy = &results[0];

    heading("Shape checks (§4: software owns retention, auditable end to end)");
    let checks = [
        (
            format!(
                "the registry fully classifies the serving data set ({} classes)",
                registry.len()
            ),
            registry.fully_classified(),
        ),
        (
            "every run's audit log is well-formed (dense seqs, monotone time, counts reconcile)"
                .to_string(),
            results.iter().all(|r| r.audit_well_formed),
        ),
        (
            "no Required-class object is reclaimed without audited recovery, in any regime"
                .to_string(),
            results.iter().all(|r| {
                r.required_drop_violations == 0 && r.report.control.required_drop_violations == 0
            }),
        ),
        (
            format!(
                "every decision lands in the log: the healthy cluster still audits {} records",
                healthy.report.control.audit_records
            ),
            healthy.report.control.audit_records > 0 && healthy.report.control.stores > 0,
        ),
        (
            format!(
                "the recovery ladder flows through the control plane ({} audited re-fetches == \
                 {} fault-layer re-fetches)",
                faulted.report.control.refetches, faulted.report.faults.weight_refetches
            ),
            faulted.report.faults.enabled
                && faulted.report.control.refetches == faulted.report.faults.weight_refetches,
        ),
        (
            format!(
                "living at the margin is visible as decisions: {} drops+recomputes at 1x vs {} \
                 healthy",
                faulted.report.control.drops + faulted.report.control.recomputes,
                healthy.report.control.drops + healthy.report.control.recomputes
            ),
            faulted.report.control.recomputes > healthy.report.control.recomputes,
        ),
        (
            "the cluster keeps serving tokens in every regime".to_string(),
            results.iter().all(|r| r.report.tokens > 100),
        ),
    ];
    let mut ok = true;
    for (desc, pass) in &checks {
        ok &= check(*pass, desc);
    }

    save_json("e13_control", &results);
    if let Some(path) = telemetry_path {
        save_telemetry(&path, &jsonl);
    }
    if !ok {
        std::process::exit(1);
    }
}
