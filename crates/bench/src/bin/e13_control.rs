//! **E13-control** (§4) — the retention control plane, audited end to end.
//!
//! The paper's §4 claim is that *software owns retention*: every data
//! class declares a lifetime, and every store/refresh/migrate/drop is a
//! policy decision, not a side effect. This experiment runs the serving
//! cluster with the control plane's audit log attached and sweeps the two
//! regimes that matter — a healthy cluster and one provisioned at the
//! failure margin (retention == data lifetime, 40x BER) — across the MRM
//! and MRM+DCM placements. The table shows the decision histogram each
//! regime produces; the shape checks assert the §4 contract: the registry
//! fully classifies the serving data set, the recovery ladder flows
//! through the control plane (every weight re-fetch is audited), and no
//! Required-class object is ever reclaimed without a recorded re-fetch or
//! recompute.
//!
//! Flags: `--quick` (shorter runs for CI), `--seed <n>`, `--threads <n>`,
//! plus the shared observation flags: `--telemetry <path>` (sim-time JSONL
//! series per grid point), `--trace <path>` (Perfetto/Chrome trace JSON
//! with causal flow arrows), and `--profile <path>` (hot-handler report +
//! folded stacks). At a fixed seed the saved JSON, the telemetry JSONL and
//! the trace JSON are byte-identical for any thread count (the
//! control-smoke and obs-smoke CI jobs diff exactly that); only the
//! profiler's wall-clock column is machine-dependent.

use mrm_analysis::report::Table;
use mrm_bench::{check, heading, save_artifact, save_json, save_telemetry, OutputPaths};
use mrm_control::registry::RetentionRegistry;
use mrm_control::AuditAction;
use mrm_faults::FaultConfig;
use mrm_obs::{perfetto, profile, slo, validate_chrome_trace, Obs, SpanKind};
use mrm_sim::time::SimDuration;
use mrm_sweep::{flag_value_from_args, threads_from_args, Grid, Sweep};
use mrm_telemetry::{export, SimTelemetry, Snapshot};
use mrm_tiering::cluster::{ClusterConfig, ClusterReport, ClusterSim};
use mrm_tiering::placement::PlacementPolicy;
use serde::{Serialize, Value};

/// Sim-time spacing of telemetry snapshots for every cluster run.
const SNAPSHOT_EVERY: SimDuration = SimDuration::from_secs(5);

/// The two retention regimes swept per placement policy.
#[derive(Clone, Copy)]
enum Regime {
    /// No injected faults: the audit log shows the steady-state decision
    /// mix (stores, TTL drops, refreshes, retires).
    Healthy,
    /// Retention provisioned exactly at the data lifetime with the BER
    /// curve scaled 40x: the full recovery ladder fires and every rung
    /// must land in the audit log.
    Margin1,
}

impl Regime {
    fn label(self) -> &'static str {
        match self {
            Regime::Healthy => "healthy",
            Regime::Margin1 => "margin-1x",
        }
    }
}

/// One grid point in the saved JSON record: the cluster report (which
/// embeds the `ControlSummary` decision histogram) plus the audit-log
/// invariants checked for that run.
#[derive(Serialize)]
struct ControlRecord {
    policy: String,
    regime: String,
    audit_well_formed: bool,
    required_drop_violations: u64,
    report: ClusterReport,
}

fn config(policy: PlacementPolicy, regime: Regime, secs: u64, seed: u64) -> ClusterConfig {
    let mut cfg = ClusterConfig::llama70b(policy, 2, 8.0);
    cfg.duration = SimDuration::from_secs(secs);
    cfg.followup_window = SimDuration::from_secs(20);
    cfg.hint_window = SimDuration::from_secs(20);
    cfg.followup_prob = 0.8;
    cfg.maintenance_period = SimDuration::from_secs(5);
    cfg.seed = seed;
    if let Regime::Margin1 = regime {
        cfg.faults = FaultConfig {
            ber_scale: 40.0,
            provision_margin: Some(1.0),
            ..FaultConfig::mrm()
        };
    }
    cfg
}

/// Runs one grid point with the audit log, a telemetry sink, and (when
/// `observe` is set) the causal tracer + profiler attached, then folds
/// the log into the saved record. The sink and the obs bundle are both
/// observe-only, so attaching them never changes the record.
fn run_point(
    cfg: &ClusterConfig,
    observe: bool,
) -> (ControlRecord, Vec<Snapshot>, Option<Box<Obs>>) {
    let registry = RetentionRegistry::serving_default(cfg.followup_window);
    let mut tele = SimTelemetry::new(SNAPSHOT_EVERY);
    let mut obs = observe.then(|| Box::new(Obs::new(cfg.seed)));
    let mut sim = ClusterSim::new(cfg.clone());
    sim.attach_telemetry(&mut tele);
    if let Some(o) = obs.as_deref_mut() {
        sim.attach_obs(o);
    }
    let (report, audit) = sim.run_with_audit();

    let recs = audit.records();
    let well_formed = recs.iter().enumerate().all(|(i, r)| r.seq == i as u64)
        && recs.windows(2).all(|w| w[0].at <= w[1].at)
        && report.control.audit_records == audit.len() as u64
        && report.control.stores == audit.count(AuditAction::Store)
        && report.control.drops == audit.count(AuditAction::Drop)
        && report.control.refetches == audit.count(AuditAction::Refetch);
    let record = ControlRecord {
        policy: String::new(), // tagged by the caller from the grid point
        regime: String::new(),
        audit_well_formed: well_formed,
        required_drop_violations: audit.required_drop_violations(&registry).len() as u64,
        report,
    };
    (record, tele.into_snapshots(), obs)
}

/// Tags one grid point's snapshots and appends the JSONL lines.
fn append_series(out: &mut String, point: usize, policy: &str, regime: &str, snaps: &[Snapshot]) {
    out.push_str(&export::jsonl_tagged(
        snaps,
        &[
            ("experiment", Value::Str("e13_control".to_string())),
            ("point", Value::U64(point as u64)),
            ("policy", Value::Str(policy.to_string())),
            ("regime", Value::Str(regime.to_string())),
        ],
    ));
}

fn main() {
    let quick = std::env::args().skip(1).any(|a| a == "--quick");
    let secs = if quick { 45 } else { 90 };
    let seed = flag_value_from_args("--seed")
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(0xC0_47_01);
    let threads = threads_from_args();
    let out = OutputPaths::from_args();
    let observe = out.trace.is_some() || out.profile.is_some();

    heading(&format!(
        "E13-control — audited retention decisions: 2 placements x 2 regimes, seed {seed}, \
         {secs} s ({threads} sweep threads{})",
        if quick { ", --quick" } else { "" }
    ));

    let policies = [PlacementPolicy::HbmMrm, PlacementPolicy::HbmMrmDcm];
    let regimes = [Regime::Healthy, Regime::Margin1];
    let grid = Grid::axis(policies)
        .cross(regimes)
        .map(|(p, r)| (p, r, config(p, r, secs, seed)));
    let points = Sweep::new(grid, move |(p, r, cfg), _rng| {
        let (mut record, snaps, obs) = run_point(cfg, observe);
        record.policy = p.label().to_string();
        record.regime = r.label().to_string();
        (record, snaps, obs)
    })
    .run_parallel(threads);
    let mut results: Vec<&ControlRecord> = Vec::new();
    let mut jsonl = String::new();
    for (i, (record, snaps, _)) in points.iter().enumerate() {
        append_series(&mut jsonl, i, &record.policy, &record.regime, snaps);
        results.push(record);
    }

    let mut t = Table::new(&[
        "system",
        "regime",
        "records",
        "stores",
        "refresh",
        "migrate",
        "drops",
        "retires",
        "escalate",
        "refetch",
        "recompute",
        "violations",
        "tok/s",
    ]);
    for r in &results {
        let c = &r.report.control;
        t.row(&[
            &r.policy,
            &r.regime,
            &c.audit_records.to_string(),
            &c.stores.to_string(),
            &c.refreshes.to_string(),
            &c.migrations.to_string(),
            &c.drops.to_string(),
            &c.retires.to_string(),
            &c.escalations.to_string(),
            &c.refetches.to_string(),
            &c.recomputes.to_string(),
            &r.required_drop_violations.to_string(),
            &format!("{:.0}", r.report.tokens_per_s),
        ]);
    }
    print!("{}", t.render());

    // Grid is row-major policy x regime: index 1 is HbmMrm at margin 1.
    let registry = RetentionRegistry::serving_default(SimDuration::from_secs(20));
    let faulted = &results[1];
    let healthy = &results[0];

    heading("Shape checks (§4: software owns retention, auditable end to end)");
    let checks = [
        (
            format!(
                "the registry fully classifies the serving data set ({} classes)",
                registry.len()
            ),
            registry.fully_classified(),
        ),
        (
            "every run's audit log is well-formed (dense seqs, monotone time, counts reconcile)"
                .to_string(),
            results.iter().all(|r| r.audit_well_formed),
        ),
        (
            "no Required-class object is reclaimed without audited recovery, in any regime"
                .to_string(),
            results.iter().all(|r| {
                r.required_drop_violations == 0 && r.report.control.required_drop_violations == 0
            }),
        ),
        (
            format!(
                "every decision lands in the log: the healthy cluster still audits {} records",
                healthy.report.control.audit_records
            ),
            healthy.report.control.audit_records > 0 && healthy.report.control.stores > 0,
        ),
        (
            format!(
                "the recovery ladder flows through the control plane ({} audited re-fetches == \
                 {} fault-layer re-fetches)",
                faulted.report.control.refetches, faulted.report.faults.weight_refetches
            ),
            faulted.report.faults.enabled
                && faulted.report.control.refetches == faulted.report.faults.weight_refetches,
        ),
        (
            format!(
                "living at the margin is visible as decisions: {} drops+recomputes at 1x vs {} \
                 healthy",
                faulted.report.control.drops + faulted.report.control.recomputes,
                healthy.report.control.drops + healthy.report.control.recomputes
            ),
            faulted.report.control.recomputes > healthy.report.control.recomputes,
        ),
        (
            "the cluster keeps serving tokens in every regime".to_string(),
            results.iter().all(|r| r.report.tokens > 100),
        ),
    ];
    let mut ok = true;
    for (desc, pass) in &checks {
        ok &= check(*pass, desc);
    }

    // SLO watchdog over every grid point's telemetry: the §4 contract as
    // declarative specs. Living at margin 1x may cost throughput, but a
    // Required-class drop without recovery or an over-full tier is a bug
    // in any regime.
    let slos = slo::serving_default(60_000.0, 50.0);
    let mut slo_checks = 0u64;
    let mut required_drop_breaches = 0usize;
    let mut occupancy_breaches = 0usize;
    for (_, snaps, _) in &points {
        let rep = slo::evaluate(&slos, snaps);
        slo_checks += rep.checks;
        required_drop_breaches += rep.breaches_of("required-drop");
        occupancy_breaches += rep.breaches_of("hbm-occupancy")
            + rep.breaches_of("lpddr-occupancy")
            + rep.breaches_of("mrm-occupancy");
    }
    ok &= check(
        slo_checks > 0 && required_drop_breaches == 0,
        &format!("SLO: zero required-drop breaches in both regimes ({slo_checks} checks)"),
    );
    ok &= check(
        occupancy_breaches == 0,
        "SLO: tier occupancy never exceeds 1.0 in either regime",
    );

    // Observation shape checks (the PR's acceptance): the faulted
    // margin-1x run must produce a Perfetto-loadable trace in which every
    // required-class drop links causally back to an audited recovery, and
    // a profiler report naming the hot handlers.
    if observe {
        let labelled: Vec<(String, &Obs)> = points
            .iter()
            .enumerate()
            .filter_map(|(i, (r, _, o))| {
                o.as_deref()
                    .map(|o| (format!("e13:{i}:{}:{}", r.policy, r.regime), o))
            })
            .collect();
        let tracers: Vec<(String, &mrm_obs::CausalTracer)> = labelled
            .iter()
            .map(|(l, o)| (l.clone(), &o.tracer))
            .collect();
        let trace_json = perfetto::chrome_trace(&tracers);
        match validate_chrome_trace(&trace_json) {
            Ok(stats) => {
                ok &= check(
                    stats.required_drops > 0,
                    &format!(
                        "margin-1x produces required-class drop spans ({})",
                        stats.required_drops
                    ),
                );
                ok &= check(
                    stats.required_drops_with_cause == stats.required_drops,
                    &format!(
                        "every required-class drop links causally to an audited recovery \
                         ({}/{} carry a cause)",
                        stats.required_drops_with_cause, stats.required_drops
                    ),
                );
                ok &= check(
                    stats.flows > 0 && stats.async_pairs > 0,
                    &format!(
                        "the trace carries causal structure ({} flows, {} async lifecycles)",
                        stats.flows, stats.async_pairs
                    ),
                );
            }
            Err(e) => {
                ok = check(false, &format!("trace JSON validates as Chrome trace: {e}"));
            }
        }
        // Audit correlation: each faulted run's recovery spans carry the
        // audit seq the control plane returned for the decision.
        let correlated = labelled.iter().all(|(_, o)| {
            o.tracer
                .spans()
                .filter(|s| s.kind == SpanKind::Recovery)
                .all(|s| s.detail.audit_seq.is_some())
        });
        ok &= check(
            correlated,
            "every recovery span carries its audit sequence number",
        );
        // Wall-clock *ranking* is machine- and workload-dependent, so only
        // require that five hot handlers exist and that the dispatch hot
        // path is instrumented — not that any specific handler places in
        // the top five. The profiler lap-times dispatch: each event's cost
        // (including queue bookkeeping, which has no standalone frame) is
        // attributed to its handler, so the decode loop ("iter_done") must
        // appear whenever the cluster ran at all.
        let profiled = labelled.iter().all(|(_, o)| {
            let rep = o.profiler.report(5);
            let all = o.profiler.report(usize::MAX);
            rep.top.len() >= 5 && all.top.iter().any(|h| h.name == "iter_done")
        });
        ok &= check(
            profiled,
            "the profiler names the top-5 hot handlers for every point",
        );
        if let Some(path) = &out.trace {
            save_artifact("trace", path, &trace_json);
        }
        if let Some(path) = &out.profile {
            let profs: Vec<(String, &mrm_obs::Profiler)> = labelled
                .iter()
                .map(|(l, o)| (l.clone(), &o.profiler))
                .collect();
            save_artifact("profile", path, &profile::artifact(&profs, 10));
        }
    }

    save_json("e13_control", &results);
    if let Some(path) = &out.telemetry {
        save_telemetry(path, &jsonl);
    }
    if !ok {
        std::process::exit(1);
    }
}
