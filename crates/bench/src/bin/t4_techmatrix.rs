//! **T4** (§3) — the technology comparison matrix: every memory technology
//! the paper discusses, on the metrics that matter for inference.
//!
//! Checks the §3 claim that the resistive technologies "have read
//! performance and energy on par or better than DRAM or even SRAM" while
//! trading write performance, and that MRM design points beat HBM on read
//! energy, density and cost while giving up writes and long retention.

use mrm_analysis::report::Table;
use mrm_bench::{heading, save_json};
use mrm_device::tech::presets;
use mrm_sim::units::{format_bytes, format_sci};

fn main() {
    heading("T4 — technology matrix");
    let mut t = Table::new(&[
        "technology",
        "maturity",
        "read lat",
        "write lat",
        "read bw/dev",
        "write bw/dev",
        "rd pJ/b",
        "wr pJ/b",
        "retention",
        "endurance",
        "capacity/dev",
        "$/GB rel",
        "refresh",
    ]);
    let all = presets::all();
    for tech in &all {
        t.row(&[
            &tech.name,
            tech.maturity.label(),
            &format!("{:.0} ns", tech.read_latency_ns),
            &format!("{:.0} ns", tech.write_latency_ns),
            &format!("{:.1} GB/s", tech.read_bw / 1e9),
            &format!("{:.1} GB/s", tech.write_bw / 1e9),
            &format!("{:.1}", tech.read_energy_pj_bit),
            &format!("{:.1}", tech.write_energy_pj_bit),
            &tech.retention.to_string(),
            &format_sci(tech.endurance),
            &format_bytes(tech.capacity_bytes),
            &format!("{:.2}", tech.cost_per_gb_rel),
            if tech.refresh_interval.is_some() {
                "yes"
            } else {
                "no"
            },
        ]);
    }
    print!("{}", t.render());

    heading("Claim checks (§3)");
    let hbm = presets::hbm3e();
    let mrm = presets::mrm_hours();
    let stt = presets::stt_mram_potential();
    let rram = presets::rram_potential();

    let checks: Vec<(String, bool)> = vec![
        (
            format!(
                "resistive potentials read energy <= DRAM-class ({:.1}/{:.1} vs {:.1} pJ/b)",
                stt.read_energy_pj_bit, rram.read_energy_pj_bit, hbm.read_energy_pj_bit
            ),
            stt.read_energy_pj_bit <= hbm.read_energy_pj_bit
                && rram.read_energy_pj_bit <= hbm.read_energy_pj_bit,
        ),
        (
            format!(
                "MRM read energy beats HBM ({:.1} vs {:.1} pJ/b)",
                mrm.read_energy_pj_bit, hbm.read_energy_pj_bit
            ),
            mrm.read_energy_pj_bit < hbm.read_energy_pj_bit,
        ),
        (
            format!(
                "MRM capacity/stack >= 2x HBM ({} vs {})",
                format_bytes(mrm.capacity_bytes),
                format_bytes(hbm.capacity_bytes)
            ),
            mrm.capacity_bytes >= 2 * hbm.capacity_bytes,
        ),
        (
            format!(
                "MRM $/GB below HBM ({:.2} vs {:.2})",
                mrm.cost_per_gb_rel, hbm.cost_per_gb_rel
            ),
            mrm.cost_per_gb_rel < hbm.cost_per_gb_rel,
        ),
        (
            format!(
                "MRM trades write bandwidth ({:.0} vs {:.0} GB/s)",
                mrm.write_bw / 1e9,
                hbm.write_bw / 1e9
            ),
            mrm.write_bw < hbm.write_bw,
        ),
        (
            "MRM needs no refresh".to_string(),
            mrm.refresh_interval.is_none(),
        ),
        (
            "Flash writes are orders of magnitude too slow for in-package KV appends".to_string(),
            presets::nand_slc().write_latency_ns > 1000.0 * hbm.write_latency_ns,
        ),
    ];
    let mut ok = true;
    for (desc, pass) in &checks {
        println!("{} {}", if *pass { "PASS" } else { "FAIL" }, desc);
        ok &= pass;
    }
    if !ok {
        std::process::exit(1);
    }

    save_json("t4_techmatrix", &all);
}
