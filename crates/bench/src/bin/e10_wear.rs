//! **E10** (§3/§4) — device lifetime under sustained KV write load, with
//! and without software wear levelling.
//!
//! §4 proposes leaving wear levelling "up to a software control plane
//! higher up in the stack". This experiment measures what that buys: the
//! projected lifetime of an MRM part under the Splitwise-derived KV append
//! stream, for naive zone reuse vs. least-worn allocation, across the
//! endurance levels of Figure 1 (SCM product vs. technology potential).
//!
//! With `--telemetry <path>` each configuration also records a sim-time
//! JSONL series (60 s snapshots of bytes written and peak/mean zone
//! cycles, plus the final per-zone wear histogram).

use mrm_analysis::report::Table;
use mrm_bench::{check, heading, save_json, save_telemetry, warn_unsupported_obs, OutputPaths};
use mrm_device::tech::presets;
use mrm_sim::time::SimDuration;
use mrm_sim::units::MIB;
use mrm_telemetry::{export, NullSink, SimTelemetry, TelemetrySink};
use mrm_tiering::wear::{simulate_wear_with_telemetry, WearPolicy, WearReport};
use serde::Value;

fn main() {
    let out = OutputPaths::from_args();
    warn_unsupported_obs("e10_wear", &out);
    let telemetry_path = out.telemetry;
    let mut jsonl = String::new();

    heading("E10 — zone churn simulation (scaled device, KV-stream append/drop)");
    let mut results: Vec<WearReport> = Vec::new();
    let mut t = Table::new(&[
        "policy",
        "endurance",
        "max zone cycles",
        "mean zone cycles",
        "peak/mean",
        "projected lifetime",
    ]);
    let mut point = 0u64;
    for policy in [WearPolicy::LowestNumbered, WearPolicy::LeastWorn] {
        for (label, endurance) in [
            ("1e5 (RRAM product)", 1e5),
            ("3e6 (PCM product)", 3e6),
            ("1e10 (RRAM potential)", 1e10),
            ("1e12 (MRM class)", 1e12),
        ] {
            let mut tech = presets::mrm_hours();
            tech.capacity_bytes = 512 * MIB; // scaled device, same reuse pattern
            tech.endurance = endurance;
            let mut tele = telemetry_path
                .as_ref()
                .map(|_| SimTelemetry::new(SimDuration::from_secs(60)));
            let sink: &mut dyn TelemetrySink = match tele.as_mut() {
                Some(t) => t,
                None => &mut NullSink,
            };
            let r = simulate_wear_with_telemetry(
                tech,
                4 * MIB,            // zone size
                16 * MIB,           // stream (context KV) size
                256.0 * MIB as f64, // sustained append rate
                SimDuration::from_secs(1200),
                policy,
                sink,
            );
            if let Some(tele) = tele {
                jsonl.push_str(&export::jsonl_tagged(
                    tele.snapshots(),
                    &[
                        ("experiment", Value::Str("e10".to_string())),
                        ("point", Value::U64(point)),
                        ("policy", Value::Str(policy.label().to_string())),
                        ("endurance", Value::F64(endurance)),
                    ],
                ));
            }
            point += 1;
            t.row(&[
                policy.label(),
                label,
                &r.max_zone_cycles.to_string(),
                &format!("{:.1}", r.mean_zone_cycles),
                &format!(
                    "{:.2}",
                    r.max_zone_cycles as f64 / r.mean_zone_cycles.max(1e-9)
                ),
                &format!("{:.2} years", r.projected_lifetime_years),
            ]);
            results.push(r);
        }
    }
    print!("{}", t.render());

    heading("Shape checks");
    // Pair up naive vs levelled at equal endurance.
    let labels = ["1e5", "3e6", "1e10", "1e12"];
    let half = results.len() / 2;
    let mut ok = true;
    for i in 0..half {
        let naive = &results[i];
        let lev = &results[half + i];
        let gain = lev.projected_lifetime_years / naive.projected_lifetime_years;
        ok &= check(
            gain > 1.5,
            &format!(
                "endurance {}: least-worn extends lifetime {:.1}x ({:.2}y -> {:.2}y)",
                labels[i % labels.len()],
                gain,
                naive.projected_lifetime_years,
                lev.projected_lifetime_years
            ),
        );
    }
    println!();
    println!("the 5-year target (§3) is reachable with software wear levelling at potential-");
    println!("class endurance, and out of reach for SCM-product endurance — Figure 1's gap,");
    println!("restated as device lifetime.");

    save_json("e10_wear", &results);
    if let Some(path) = telemetry_path {
        save_telemetry(&path, &jsonl);
    }
    if !ok {
        std::process::exit(1);
    }
}
