//! **T1** (§2) — inference memory footprints: weights, KV cache,
//! activations across the model zoo and quantizations.

use mrm_analysis::footprint::{check_paper_claims, footprint_table};
use mrm_analysis::report::Table;
use mrm_bench::{heading, save_json};
use mrm_sim::units::format_bytes;

fn main() {
    let rows = footprint_table();

    heading("T1 — memory footprint per model x quantization");
    let mut t = Table::new(&[
        "model",
        "params",
        "quant",
        "weights",
        "KV/token",
        "KV @2k ctx",
        "KV @max ctx",
        "activations (b=32)",
    ]);
    for r in &rows {
        t.row(&[
            &r.model,
            &format!("{:.0}B", r.params as f64 / 1e9),
            &r.quant,
            &format_bytes(r.weights_bytes),
            &format_bytes(r.kv_per_token_bytes),
            &format_bytes(r.kv_at_2k_bytes),
            &format_bytes(r.kv_at_max_bytes),
            &format_bytes(r.activation_bytes),
        ]);
    }
    print!("{}", t.render());

    heading("Paper claims (§2) checked against the table");
    let violations = check_paper_claims(&rows);
    if violations.is_empty() {
        println!("all claims hold:");
        println!("  - 500B+ models: 250 GB (int4) .. >1 TB (fp16) of weights");
        println!("  - full-MHA attention vectors are MB-scale");
        println!("  - KV caches grow to tens of GB at full context");
        println!("  - activations are an order of magnitude smaller");
    } else {
        for v in &violations {
            println!("VIOLATION: {v}");
        }
        std::process::exit(1);
    }

    save_json("t1_footprint", &rows);
}
