//! **perf_suite** — wall-clock performance harness for the simulator's hot
//! paths.
//!
//! Unlike the experiment binaries (which report *simulated* quantities),
//! this one measures real elapsed time on pinned scenarios and writes the
//! numbers to `BENCH_pool.json` / `BENCH_cluster.json` in the current
//! directory, so regressions show up as a diff. Timing is a hand-rolled
//! warmup + median-of-k loop — no external bench framework, and the
//! medians are robust to a noisy neighbour or two.
//!
//! Scenarios:
//!
//! * `pool_churn` — a deterministic alloc/free churn with ~10 k live
//!   allocations, run through both the tree-based [`Pool`] and the retained
//!   [`LegacyVecPool`] (the pre-optimization linear scan). Both see the
//!   identical op sequence and must produce the identical address stream —
//!   the checksum is asserted — so `speedup_vs_legacy` compares like for
//!   like.
//! * `e9_cluster` — one E9-shaped cluster simulation (the end-to-end hot
//!   path: event queue, admission, tiering, maintenance).
//! * `profiled_cluster` — the same simulation with the full `mrm-obs`
//!   bundle attached: reports the top-5 hot handlers (self/total wall
//!   time + attributed sim time), writes the flamegraph-ready folded
//!   stacks to `BENCH_cluster_folded.txt`, and measures the observation
//!   overhead against the bare run.
//! * `e12_sessions` — session sampling + per-class coverage accounting.
//! * `sweep_fanout` — a small parallel sweep, exercising the deterministic
//!   fan-out machinery.
//!
//! `--quick` shrinks the workloads and rep counts for CI smoke runs; the
//! JSON schema (scenario keys and fields) is identical in both modes.
//!
//! Wall-clock timing is deliberately confined to this crate: the simulation
//! crates are lint-barred from `std::time::Instant` (rule D1).

use std::time::Instant;

use mrm_bench::{heading, note};
use mrm_controller::dcm::RetentionClass;
use mrm_core::pool::{Allocation, LegacyVecPool, Pool};
use mrm_device::device::MemoryDevice;
use mrm_device::tech::presets;
use mrm_obs::{Obs, ProfileReport};
use mrm_sim::rng::SimRng;
use mrm_sim::time::SimDuration;
use mrm_sim::units::{GIB, KIB, MIB};
use mrm_sweep::{Grid, Sweep};
use mrm_telemetry::NullSink;
use mrm_tiering::cluster::{run_cluster, run_cluster_observed, ClusterConfig};
use mrm_tiering::placement::PlacementPolicy;
use mrm_workload::model::{ModelConfig, Quantization};
use mrm_workload::sessions::SessionSampler;
use serde::Serialize;

/// Wall-clock stats for one scenario, all in nanoseconds.
#[derive(Clone, Copy, Debug, Serialize)]
struct Timing {
    median_ns: u64,
    min_ns: u64,
    max_ns: u64,
    reps: u32,
}

/// Runs `f` `warmup` times untimed, then `reps` times timed, and returns
/// the median/min/max. The closure's result is returned (last rep) so the
/// caller can fold it into a checksum the optimizer cannot elide.
fn time_median<R>(reps: u32, warmup: u32, mut f: impl FnMut() -> R) -> (Timing, R) {
    for _ in 0..warmup {
        std::hint::black_box(f());
    }
    let mut samples: Vec<u64> = Vec::with_capacity(reps as usize);
    let mut last = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        let r = f();
        let dt = t0.elapsed();
        samples.push(u64::try_from(dt.as_nanos()).unwrap_or(u64::MAX));
        last = Some(std::hint::black_box(r));
    }
    samples.sort_unstable();
    let timing = Timing {
        median_ns: samples[samples.len() / 2],
        min_ns: samples[0],
        max_ns: samples[samples.len() - 1],
        reps,
    };
    let Some(last) = last else {
        unreachable!("reps is always at least 1");
    };
    (timing, last)
}

fn ms(t_ns: u64) -> f64 {
    t_ns as f64 / 1e6
}

// ---------------------------------------------------------------------------
// pool_churn
// ---------------------------------------------------------------------------

/// One churn op: either grow towards the live target or replace a
/// pseudo-random live allocation. The sequence is a pure function of the
/// seed, so both allocators replay the same trace.
#[derive(Clone, Copy)]
enum ChurnOp {
    Alloc { len: u64 },
    FreeAt { index: usize },
}

/// Trace generator that mirrors the replay loop's bookkeeping: the replay
/// keeps live allocations in a `Vec` and frees with `swap_remove(index)`,
/// so `FreeAt` indices are only meaningful against that exact Vec state —
/// the generator simulates the same swaps to target specific blocks.
struct TraceSim {
    ops: Vec<ChurnOp>,
    /// Replay-side live Vec, holding generator-assigned block ids.
    mirror: Vec<usize>,
    /// id -> current index in `mirror`.
    pos: Vec<usize>,
}

impl TraceSim {
    fn alloc(&mut self, len: u64) -> usize {
        let id = self.pos.len();
        self.pos.push(self.mirror.len());
        self.mirror.push(id);
        self.ops.push(ChurnOp::Alloc { len });
        id
    }

    fn free(&mut self, id: usize) {
        let index = self.pos[id];
        self.ops.push(ChurnOp::FreeAt { index });
        let last_id = *self.mirror.last().expect("free against empty mirror");
        self.mirror.swap_remove(index);
        if last_id != id {
            self.pos[last_id] = index;
        }
    }
}

/// Pre-computes the churn trace: a fragmentation phase, then `churn_ops`
/// free-one/alloc-one pairs at a stable `live_target` live count.
///
/// The fragmentation phase lays down a checkerboard: 4 KiB blocks filling
/// the low address space, every other one freed and the rest never touched
/// again, so each hole is flanked by permanently-live blocks and can never
/// coalesce. The churn phase then cycles a separate population of
/// geometric-sized blocks (1 MiB · 2^0..2^4 — the scale of real KV-cache
/// blocks, hundreds of tokens × ~160 KiB/token for a 70B model). Every
/// churn request dwarfs a 4 KiB hole, so a first-fit *scan* wades past the
/// whole speckle field on every alloc, while the max-len-augmented tree
/// descends straight to the first hole that fits. This is the allocator
/// pathology the tree exists to fix: long-lived small fragments in front
/// of a hot large-block churn.
fn churn_trace(live_target: usize, churn_ops: usize, seed: u64) -> Vec<ChurnOp> {
    let mut rng = SimRng::seed_from(seed);
    let frozen = live_target * 9 / 10;
    let churn_pool = live_target - frozen;
    let mut sim = TraceSim {
        ops: Vec::with_capacity(2 * frozen + frozen + churn_pool + churn_ops * 2),
        mirror: Vec::new(),
        pos: Vec::new(),
    };
    // Checkerboard: 2×frozen 4 KiB blocks, odd-indexed ones freed.
    let ids: Vec<usize> = (0..2 * frozen).map(|_| sim.alloc(4 * KIB)).collect();
    for id in ids.iter().skip(1).step_by(2) {
        sim.free(*id);
    }
    // Prime the churn population, then cycle it.
    let kv_len = |rng: &mut SimRng| MIB << rng.gen_range_u64(5);
    let mut churn_ids: Vec<usize> = (0..churn_pool)
        .map(|_| sim.alloc(kv_len(&mut rng)))
        .collect();
    for _ in 0..churn_ops {
        let j = rng.gen_range_u64(churn_ids.len() as u64) as usize;
        let id = churn_ids.swap_remove(j);
        sim.free(id);
        churn_ids.push(sim.alloc(kv_len(&mut rng)));
    }
    sim.ops
}

/// Replays the trace against the tree-based pool; returns an address
/// checksum (wrapping sum of every allocated address) and the end-state
/// free fragment count.
fn churn_tree(ops: &[ChurnOp], capacity: u64, hint: usize) -> (u64, usize) {
    let mut tech = presets::mrm_hours();
    tech.capacity_bytes = capacity;
    let mut pool = Pool::with_capacity_hint(MemoryDevice::new(tech), hint);
    let mut live: Vec<Allocation> = Vec::with_capacity(hint);
    let mut checksum = 0u64;
    for op in ops {
        match *op {
            ChurnOp::Alloc { len } => {
                let a = pool
                    .alloc(len)
                    .unwrap_or_else(|e| panic!("churn capacity sized wrong: {e}"));
                checksum = checksum.wrapping_add(a.addr);
                live.push(a);
            }
            ChurnOp::FreeAt { index } => {
                let a = live.swap_remove(index);
                pool.free(a)
                    .unwrap_or_else(|e| panic!("double free in churn trace: {e}"));
            }
        }
    }
    (checksum, pool.free_fragments())
}

/// Replays the identical trace against the retained linear-scan pool.
fn churn_legacy(ops: &[ChurnOp], capacity: u64) -> (u64, usize) {
    let mut pool = LegacyVecPool::new(capacity);
    let mut live: Vec<Allocation> = Vec::new();
    let mut checksum = 0u64;
    for op in ops {
        match *op {
            ChurnOp::Alloc { len } => {
                let a = pool
                    .alloc(len)
                    .unwrap_or_else(|e| panic!("churn capacity sized wrong: {e}"));
                checksum = checksum.wrapping_add(a.addr);
                live.push(a);
            }
            ChurnOp::FreeAt { index } => {
                let a = live.swap_remove(index);
                pool.free(a)
                    .unwrap_or_else(|e| panic!("double free in churn trace: {e}"));
            }
        }
    }
    (checksum, pool.free_fragments())
}

#[derive(Serialize)]
struct PoolChurnResult {
    live_allocations: usize,
    churn_ops: usize,
    /// Free fragments left when the trace ends — a determinism anchor for
    /// the trace itself (identical on both allocators by construction).
    end_fragments: usize,
    tree: Timing,
    legacy: Timing,
    /// Legacy median over tree median: > 1 means the tree pool is faster.
    speedup_vs_legacy: f64,
}

fn bench_pool_churn(quick: bool) -> PoolChurnResult {
    let (live_target, churn_ops, reps, warmup) = if quick {
        (1_000, 5_000, 3, 1)
    } else {
        (10_000, 50_000, 5, 1)
    };
    // 10 k live geometric allocations average ~6.2 MiB (~61 GiB); 128 GiB
    // (simulated — nothing is actually mapped) leaves the pool uncrowded
    // so the trace never OOMs on either allocator even under
    // fragmentation.
    let capacity = 128 * GIB;
    let ops = churn_trace(live_target, churn_ops, 0x9E37_79B9);

    let (tree, (tree_sum, end_fragments)) =
        time_median(reps, warmup, || churn_tree(&ops, capacity, live_target));
    let (legacy, (legacy_sum, legacy_fragments)) =
        time_median(reps, warmup, || churn_legacy(&ops, capacity));
    assert_eq!(
        (tree_sum, end_fragments),
        (legacy_sum, legacy_fragments),
        "allocators diverged: first-fit must be address-identical"
    );

    let speedup = legacy.median_ns as f64 / tree.median_ns.max(1) as f64;
    note(&format!(
        "pool_churn: {live_target} live / {churn_ops} churn ops ({end_fragments} end fragments) — tree {:.2} ms, legacy {:.2} ms ({speedup:.1}x)",
        ms(tree.median_ns),
        ms(legacy.median_ns),
    ));
    PoolChurnResult {
        live_allocations: live_target,
        churn_ops,
        end_fragments,
        tree,
        legacy,
        speedup_vs_legacy: speedup,
    }
}

// ---------------------------------------------------------------------------
// cluster-side scenarios
// ---------------------------------------------------------------------------

#[derive(Serialize)]
struct ClusterScenario {
    timing: Timing,
    /// Simulated tokens decoded (sanity anchor: must not drift between
    /// runs of the same binary).
    tokens: u64,
}

fn e9_config(secs: u64, arrivals: f64) -> ClusterConfig {
    let mut cfg = ClusterConfig::llama70b(PlacementPolicy::HbmMrm, 4, arrivals);
    cfg.duration = SimDuration::from_secs(secs);
    cfg
}

fn bench_e9_cluster(quick: bool) -> ClusterScenario {
    let (secs, reps) = if quick { (30, 3) } else { (120, 5) };
    let cfg = e9_config(secs, 16.0);
    let (timing, report) = time_median(reps, 1, || run_cluster(cfg.clone()));
    note(&format!(
        "e9_cluster: {secs} s simulated, {} tokens — {:.1} ms",
        report.tokens,
        ms(timing.median_ns)
    ));
    ClusterScenario {
        timing,
        tokens: report.tokens,
    }
}

#[derive(Serialize)]
struct ProfiledClusterScenario {
    timing: Timing,
    tokens: u64,
    /// Observed-run wall time over the bare run's (the cost of the full
    /// obs bundle on the hot path; hooks are `None`-checks when detached).
    overhead_vs_bare: f64,
    /// Top-5 hot handlers by self wall time, with sim-time attribution.
    profile: ProfileReport,
}

fn bench_profiled_cluster(quick: bool, bare_median_ns: u64) -> ProfiledClusterScenario {
    let (secs, reps) = if quick { (30, 3) } else { (120, 5) };
    let cfg = e9_config(secs, 16.0);
    let (timing, (tokens, obs)) = time_median(reps, 1, || {
        let mut sink = NullSink;
        let mut obs = Box::new(Obs::new(cfg.seed));
        let (report, _audit) = run_cluster_observed(cfg.clone(), &mut sink, &mut obs);
        (report.tokens, obs)
    });
    let overhead = timing.median_ns as f64 / bare_median_ns.max(1) as f64;
    note(&format!(
        "profiled_cluster: {secs} s simulated fully observed — {:.1} ms ({overhead:.2}x bare)",
        ms(timing.median_ns)
    ));
    println!("\ntop-5 hot handlers (last rep):");
    print!("{}", obs.profiler.table(5));
    let folded = obs.profiler.folded();
    match std::fs::write("BENCH_cluster_folded.txt", &folded) {
        Ok(()) => note(&format!(
            "[saved BENCH_cluster_folded.txt: {} stacks]",
            folded.lines().count()
        )),
        Err(e) => mrm_bench::warn(&format!("cannot write BENCH_cluster_folded.txt: {e}")),
    }
    ProfiledClusterScenario {
        timing,
        tokens,
        overhead_vs_bare: overhead,
        profile: obs.profiler.report(5),
    }
}

#[derive(Serialize)]
struct SessionsScenario {
    timing: Timing,
    sessions: usize,
    /// Gaps covered across the whole retention ladder (sanity anchor).
    gaps_covered: u64,
}

fn bench_e12_sessions(quick: bool) -> SessionsScenario {
    let (n, reps) = if quick { (5_000usize, 3) } else { (50_000, 5) };
    let sampler = SessionSampler::conversation_default(4096);
    let kvpt = ModelConfig::llama2_70b().kv_bytes_per_token(Quantization::Fp16);
    let (timing, covered) = time_median(reps, 1, || {
        let mut rng = SimRng::seed_from(7);
        let sessions: Vec<_> = (0..n).map(|_| sampler.sample(&mut rng)).collect();
        let mut gaps_covered = 0u64;
        let mut recompute_bytes = 0u64;
        for class in RetentionClass::ladder() {
            let ret = class.duration();
            for s in &sessions {
                let mut context = 0u64;
                for (i, turn) in s.turns.iter().enumerate() {
                    if i > 0 {
                        if turn.gap <= ret {
                            gaps_covered += 1;
                        } else {
                            recompute_bytes += context * kvpt;
                        }
                    }
                    context += u64::from(turn.prompt_tokens) + u64::from(turn.output_tokens);
                }
            }
        }
        std::hint::black_box(recompute_bytes);
        gaps_covered
    });
    note(&format!(
        "e12_sessions: {n} sessions x {} classes — {:.1} ms",
        RetentionClass::ladder().len(),
        ms(timing.median_ns)
    ));
    SessionsScenario {
        timing,
        sessions: n,
        gaps_covered: covered,
    }
}

#[derive(Serialize)]
struct SweepScenario {
    timing: Timing,
    points: usize,
    threads: usize,
    tokens: u64,
}

fn bench_sweep_fanout(quick: bool) -> SweepScenario {
    let (secs, arrivals, reps): (u64, &[f64], u32) = if quick {
        (10, &[4.0, 8.0], 2)
    } else {
        (30, &[4.0, 8.0, 12.0, 16.0], 3)
    };
    let threads = 2usize;
    let points = arrivals.len();
    let (timing, tokens) = time_median(reps, 1, || {
        let grid = Grid::axis(arrivals.iter().copied()).map(|a| e9_config(secs, a));
        let reports = Sweep::new(grid, |cfg: &ClusterConfig, _rng| run_cluster(cfg.clone()))
            .run_parallel(threads);
        reports.iter().map(|r| r.tokens).sum::<u64>()
    });
    note(&format!(
        "sweep_fanout: {points} points on {threads} threads — {:.1} ms",
        ms(timing.median_ns)
    ));
    SweepScenario {
        timing,
        points,
        threads,
        tokens,
    }
}

// ---------------------------------------------------------------------------
// output records
// ---------------------------------------------------------------------------

#[derive(Serialize)]
struct PoolBench {
    suite: &'static str,
    quick: bool,
    scenarios: PoolScenarios,
}

#[derive(Serialize)]
struct PoolScenarios {
    pool_churn: PoolChurnResult,
}

#[derive(Serialize)]
struct ClusterBench {
    suite: &'static str,
    quick: bool,
    scenarios: ClusterScenarios,
}

#[derive(Serialize)]
struct ClusterScenarios {
    e9_cluster: ClusterScenario,
    profiled_cluster: ProfiledClusterScenario,
    e12_sessions: SessionsScenario,
    sweep_fanout: SweepScenario,
}

fn write_record<T: Serialize>(path: &str, record: &T) {
    match serde_json::to_string_pretty(record) {
        Ok(json) => match std::fs::write(path, json + "\n") {
            Ok(()) => note(&format!("[saved {path}]")),
            Err(e) => {
                mrm_bench::warn(&format!("cannot write {path}: {e}"));
                std::process::exit(1);
            }
        },
        Err(e) => {
            mrm_bench::warn(&format!("cannot serialize {path}: {e}"));
            std::process::exit(1);
        }
    }
}

fn main() {
    let quick = std::env::args().skip(1).any(|a| a == "--quick");
    heading(&format!(
        "perf_suite — wall-clock hot-path benchmarks{}",
        if quick { " (--quick)" } else { "" }
    ));
    if cfg!(debug_assertions) {
        mrm_bench::warn("running unoptimized: use --release for meaningful numbers");
    }

    let pool = PoolBench {
        suite: "pool",
        quick,
        scenarios: PoolScenarios {
            pool_churn: bench_pool_churn(quick),
        },
    };
    write_record("BENCH_pool.json", &pool);

    let e9_cluster = bench_e9_cluster(quick);
    let profiled_cluster = bench_profiled_cluster(quick, e9_cluster.timing.median_ns);
    let cluster = ClusterBench {
        suite: "cluster",
        quick,
        scenarios: ClusterScenarios {
            e9_cluster,
            profiled_cluster,
            e12_sessions: bench_e12_sessions(quick),
            sweep_fanout: bench_sweep_fanout(quick),
        },
    };
    write_record("BENCH_cluster.json", &cluster);
}
