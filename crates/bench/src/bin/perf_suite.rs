//! **perf_suite** — wall-clock performance harness for the simulator's hot
//! paths.
//!
//! Unlike the experiment binaries (which report *simulated* quantities),
//! this one measures real elapsed time on pinned scenarios and writes the
//! numbers to `BENCH_pool.json` / `BENCH_events.json` / `BENCH_ecc.json` /
//! `BENCH_cluster.json` in the current directory, so regressions show up
//! as a diff. Timing is a hand-rolled warmup + median-of-k loop — no
//! external bench framework, and the medians are robust to a noisy
//! neighbour or two.
//!
//! Scenarios:
//!
//! * `pool_churn` — a deterministic alloc/free churn with ~10 k live
//!   allocations, run through both the tree-based [`Pool`] and the retained
//!   [`LegacyVecPool`] (the pre-optimization linear scan). Both see the
//!   identical op sequence and must produce the identical address stream —
//!   the checksum is asserted — so `speedup_vs_legacy` compares like for
//!   like.
//! * `event_churn` — a dense refresh+expiry event trace through the
//!   calendar [`EventQueue`] and the retained [`LegacyHeapQueue`] oracle;
//!   identical pop-sequence checksums are asserted, and the calendar
//!   queue carries a `floor` on `speedup_vs_heap`.
//! * `ecc_batch_decode` — clean-read-dominated codeword batches through
//!   the batched SECDED / BCH decoders vs the scalar path (outputs
//!   asserted bitwise identical), with a `floor` on the batched speedup.
//! * `e9_cluster` — one E9-shaped cluster simulation (the end-to-end hot
//!   path: event queue, admission, tiering, maintenance).
//! * `profiled_cluster` — the same simulation with the full `mrm-obs`
//!   bundle attached: reports the top-5 hot handlers (self/total wall
//!   time + attributed sim time), writes the flamegraph-ready folded
//!   stacks to `BENCH_cluster_folded.txt`, and measures the observation
//!   overhead against the bare run (ceilinged by `overhead_ceiling`).
//! * `e12_sessions` — session sampling + per-class coverage accounting in
//!   struct-of-arrays layout, raced against the AoS replay it replaced
//!   (identical coverage numbers asserted, `floor` on `speedup_vs_aos`).
//! * `sweep_fanout` — a small parallel sweep, exercising the deterministic
//!   fan-out machinery.
//!
//! `--quick` shrinks the workloads and rep counts for CI smoke runs; the
//! JSON schema (scenario keys and fields) is identical in both modes.
//! Acceptance floors are *asserted* only in full runs — quick mode is a
//! smoke test on shared CI runners where wall-clock ratios are noise.
//!
//! Wall-clock timing is deliberately confined to this crate: the simulation
//! crates are lint-barred from `std::time::Instant` (rule D1).

use std::time::Instant;

use mrm_bench::{heading, note};
use mrm_controller::dcm::RetentionClass;
use mrm_core::pool::{Allocation, LegacyVecPool, Pool};
use mrm_device::device::MemoryDevice;
use mrm_device::tech::presets;
use mrm_ecc::bch::Bch;
use mrm_ecc::hamming::Hamming;
use mrm_obs::{Obs, ProfileReport};
use mrm_sim::event::{EventQueue, LegacyHeapQueue};
use mrm_sim::rng::SimRng;
use mrm_sim::time::{SimDuration, SimTime};
use mrm_sim::units::{GIB, KIB, MIB};
use mrm_sweep::{Grid, Sweep};
use mrm_telemetry::NullSink;
use mrm_tiering::cluster::{run_cluster, run_cluster_observed, ClusterConfig};
use mrm_tiering::placement::PlacementPolicy;
use mrm_workload::model::{ModelConfig, Quantization};
use mrm_workload::sessions::SessionSampler;
use serde::Serialize;

/// Wall-clock stats for one scenario, all in nanoseconds.
#[derive(Clone, Copy, Debug, Serialize)]
struct Timing {
    median_ns: u64,
    min_ns: u64,
    max_ns: u64,
    reps: u32,
}

/// Runs `f` `warmup` times untimed, then `reps` times timed, and returns
/// the median/min/max. The closure's result is returned (last rep) so the
/// caller can fold it into a checksum the optimizer cannot elide.
fn time_median<R>(reps: u32, warmup: u32, mut f: impl FnMut() -> R) -> (Timing, R) {
    for _ in 0..warmup {
        std::hint::black_box(f());
    }
    let mut samples: Vec<u64> = Vec::with_capacity(reps as usize);
    let mut last = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        let r = f();
        let dt = t0.elapsed();
        samples.push(u64::try_from(dt.as_nanos()).unwrap_or(u64::MAX));
        last = Some(std::hint::black_box(r));
    }
    let timing = timing_from(samples);
    let Some(last) = last else {
        unreachable!("reps is always at least 1");
    };
    (timing, last)
}

/// Folds raw per-rep samples into a [`Timing`].
fn timing_from(mut samples: Vec<u64>) -> Timing {
    let reps = samples.len() as u32;
    samples.sort_unstable();
    Timing {
        median_ns: samples[samples.len() / 2],
        min_ns: samples[0],
        max_ns: samples[samples.len() - 1],
        reps,
    }
}

fn ms(t_ns: u64) -> f64 {
    t_ns as f64 / 1e6
}

// ---------------------------------------------------------------------------
// pool_churn
// ---------------------------------------------------------------------------

/// One churn op: either grow towards the live target or replace a
/// pseudo-random live allocation. The sequence is a pure function of the
/// seed, so both allocators replay the same trace.
#[derive(Clone, Copy)]
enum ChurnOp {
    Alloc { len: u64 },
    FreeAt { index: usize },
}

/// Trace generator that mirrors the replay loop's bookkeeping: the replay
/// keeps live allocations in a `Vec` and frees with `swap_remove(index)`,
/// so `FreeAt` indices are only meaningful against that exact Vec state —
/// the generator simulates the same swaps to target specific blocks.
struct TraceSim {
    ops: Vec<ChurnOp>,
    /// Replay-side live Vec, holding generator-assigned block ids.
    mirror: Vec<usize>,
    /// id -> current index in `mirror`.
    pos: Vec<usize>,
}

impl TraceSim {
    fn alloc(&mut self, len: u64) -> usize {
        let id = self.pos.len();
        self.pos.push(self.mirror.len());
        self.mirror.push(id);
        self.ops.push(ChurnOp::Alloc { len });
        id
    }

    fn free(&mut self, id: usize) {
        let index = self.pos[id];
        self.ops.push(ChurnOp::FreeAt { index });
        let last_id = *self.mirror.last().expect("free against empty mirror");
        self.mirror.swap_remove(index);
        if last_id != id {
            self.pos[last_id] = index;
        }
    }
}

/// Pre-computes the churn trace: a fragmentation phase, then `churn_ops`
/// free-one/alloc-one pairs at a stable `live_target` live count.
///
/// The fragmentation phase lays down a checkerboard: 4 KiB blocks filling
/// the low address space, every other one freed and the rest never touched
/// again, so each hole is flanked by permanently-live blocks and can never
/// coalesce. The churn phase then cycles a separate population of
/// geometric-sized blocks (1 MiB · 2^0..2^4 — the scale of real KV-cache
/// blocks, hundreds of tokens × ~160 KiB/token for a 70B model). Every
/// churn request dwarfs a 4 KiB hole, so a first-fit *scan* wades past the
/// whole speckle field on every alloc, while the max-len-augmented tree
/// descends straight to the first hole that fits. This is the allocator
/// pathology the tree exists to fix: long-lived small fragments in front
/// of a hot large-block churn.
fn churn_trace(live_target: usize, churn_ops: usize, seed: u64) -> Vec<ChurnOp> {
    let mut rng = SimRng::seed_from(seed);
    let frozen = live_target * 9 / 10;
    let churn_pool = live_target - frozen;
    let mut sim = TraceSim {
        ops: Vec::with_capacity(2 * frozen + frozen + churn_pool + churn_ops * 2),
        mirror: Vec::new(),
        pos: Vec::new(),
    };
    // Checkerboard: 2×frozen 4 KiB blocks, odd-indexed ones freed.
    let ids: Vec<usize> = (0..2 * frozen).map(|_| sim.alloc(4 * KIB)).collect();
    for id in ids.iter().skip(1).step_by(2) {
        sim.free(*id);
    }
    // Prime the churn population, then cycle it.
    let kv_len = |rng: &mut SimRng| MIB << rng.gen_range_u64(5);
    let mut churn_ids: Vec<usize> = (0..churn_pool)
        .map(|_| sim.alloc(kv_len(&mut rng)))
        .collect();
    for _ in 0..churn_ops {
        let j = rng.gen_range_u64(churn_ids.len() as u64) as usize;
        let id = churn_ids.swap_remove(j);
        sim.free(id);
        churn_ids.push(sim.alloc(kv_len(&mut rng)));
    }
    sim.ops
}

/// Replays the trace against the tree-based pool; returns an address
/// checksum (wrapping sum of every allocated address) and the end-state
/// free fragment count.
fn churn_tree(ops: &[ChurnOp], capacity: u64, hint: usize) -> (u64, usize) {
    let mut tech = presets::mrm_hours();
    tech.capacity_bytes = capacity;
    let mut pool = Pool::with_capacity_hint(MemoryDevice::new(tech), hint);
    let mut live: Vec<Allocation> = Vec::with_capacity(hint);
    let mut checksum = 0u64;
    for op in ops {
        match *op {
            ChurnOp::Alloc { len } => {
                let a = pool
                    .alloc(len)
                    .unwrap_or_else(|e| panic!("churn capacity sized wrong: {e}"));
                checksum = checksum.wrapping_add(a.addr);
                live.push(a);
            }
            ChurnOp::FreeAt { index } => {
                let a = live.swap_remove(index);
                pool.free(a)
                    .unwrap_or_else(|e| panic!("double free in churn trace: {e}"));
            }
        }
    }
    (checksum, pool.free_fragments())
}

/// Replays the identical trace against the retained linear-scan pool.
fn churn_legacy(ops: &[ChurnOp], capacity: u64) -> (u64, usize) {
    let mut pool = LegacyVecPool::new(capacity);
    let mut live: Vec<Allocation> = Vec::new();
    let mut checksum = 0u64;
    for op in ops {
        match *op {
            ChurnOp::Alloc { len } => {
                let a = pool
                    .alloc(len)
                    .unwrap_or_else(|e| panic!("churn capacity sized wrong: {e}"));
                checksum = checksum.wrapping_add(a.addr);
                live.push(a);
            }
            ChurnOp::FreeAt { index } => {
                let a = live.swap_remove(index);
                pool.free(a)
                    .unwrap_or_else(|e| panic!("double free in churn trace: {e}"));
            }
        }
    }
    (checksum, pool.free_fragments())
}

#[derive(Serialize)]
struct PoolChurnResult {
    live_allocations: usize,
    churn_ops: usize,
    /// Free fragments left when the trace ends — a determinism anchor for
    /// the trace itself (identical on both allocators by construction).
    end_fragments: usize,
    tree: Timing,
    legacy: Timing,
    /// Legacy median over tree median: > 1 means the tree pool is faster.
    speedup_vs_legacy: f64,
}

fn bench_pool_churn(quick: bool) -> PoolChurnResult {
    let (live_target, churn_ops, reps, warmup) = if quick {
        (1_000, 5_000, 3, 1)
    } else {
        (10_000, 50_000, 5, 1)
    };
    // 10 k live geometric allocations average ~6.2 MiB (~61 GiB); 128 GiB
    // (simulated — nothing is actually mapped) leaves the pool uncrowded
    // so the trace never OOMs on either allocator even under
    // fragmentation.
    let capacity = 128 * GIB;
    let ops = churn_trace(live_target, churn_ops, 0x9E37_79B9);

    let (tree, (tree_sum, end_fragments)) =
        time_median(reps, warmup, || churn_tree(&ops, capacity, live_target));
    let (legacy, (legacy_sum, legacy_fragments)) =
        time_median(reps, warmup, || churn_legacy(&ops, capacity));
    assert_eq!(
        (tree_sum, end_fragments),
        (legacy_sum, legacy_fragments),
        "allocators diverged: first-fit must be address-identical"
    );

    let speedup = legacy.median_ns as f64 / tree.median_ns.max(1) as f64;
    note(&format!(
        "pool_churn: {live_target} live / {churn_ops} churn ops ({end_fragments} end fragments) — tree {:.2} ms, legacy {:.2} ms ({speedup:.1}x)",
        ms(tree.median_ns),
        ms(legacy.median_ns),
    ));
    PoolChurnResult {
        live_allocations: live_target,
        churn_ops,
        end_fragments,
        tree,
        legacy,
        speedup_vs_legacy: speedup,
    }
}

// ---------------------------------------------------------------------------
// event_churn
// ---------------------------------------------------------------------------

/// The simulator's steady-state queue shape, replayed against a queue
/// implementation: a dense population of near-future refresh events where
/// every pop reschedules, salted with far-future expiry events (the
/// calendar's overflow ladder) and same-instant FIFO bursts. RNG draws
/// happen in pop order, so two implementations with the identical
/// `(time, seq)` contract replay the identical trace — the checksum folds
/// every popped `(time, payload)` pair and must match exactly.
macro_rules! run_event_churn {
    ($Q:ty, $initial:expr, $pops:expr, $seed:expr) => {{
        let mut q: $Q = <$Q>::with_capacity($initial);
        let mut rng = SimRng::seed_from($seed);
        let mut payload = 0u64;
        for _ in 0..$initial {
            q.schedule(SimTime::from_nanos(rng.gen_range_u64(1_000_000)), payload);
            payload += 1;
        }
        let mut checksum = 0u64;
        for _ in 0..$pops {
            let Some((t, e)) = q.pop() else { break };
            checksum = checksum
                .wrapping_mul(0x100_0000_01b3)
                .wrapping_add(t.as_nanos())
                .wrapping_add(e);
            // One draw per pop decides everything, so the fixed loop cost
            // stays small relative to the queue operations under test.
            let r = rng.next_u64();
            // Refresh: the popped context reschedules into the near future.
            let d = 1 + (r >> 16) % 50_000;
            q.schedule(t + SimDuration::from_nanos(d), payload);
            payload += 1;
            let pct = r % 100;
            if pct < 2 {
                // Expiry: an occasional cache deadline far past the window.
                q.schedule(t + SimDuration::from_secs(600), payload);
                payload += 1;
            } else if pct < 3 {
                // Same-instant FIFO burst (batch completions).
                for _ in 0..8 {
                    q.schedule(t, payload);
                    payload += 1;
                }
            }
        }
        checksum.wrapping_add(q.len() as u64)
    }};
}

#[derive(Serialize)]
struct EventChurnResult {
    initial_events: usize,
    pops: usize,
    calendar: Timing,
    legacy_heap: Timing,
    /// Heap median over calendar median: > 1 means the calendar queue is
    /// faster on the dense trace.
    speedup_vs_heap: f64,
    /// Acceptance floor on `speedup_vs_heap`, asserted in full runs.
    floor: f64,
}

fn bench_event_churn(quick: bool) -> EventChurnResult {
    // Full scale carries a cluster-sized pending set: the heap pays its
    // O(log n) comparisons and cache misses there, the calendar does not.
    let (initial, pops, reps) = if quick {
        (16_384usize, 50_000usize, 3)
    } else {
        (65_536, 500_000, 5)
    };
    let seed = 0xE7E7u64;
    let (calendar, cal_sum) = time_median(reps, 1, || {
        run_event_churn!(EventQueue<u64>, initial, pops, seed)
    });
    let (legacy_heap, heap_sum) = time_median(reps, 1, || {
        run_event_churn!(LegacyHeapQueue<u64>, initial, pops, seed)
    });
    assert_eq!(
        cal_sum, heap_sum,
        "queues diverged: the (time, seq) pop contract must be identical"
    );
    let speedup = legacy_heap.median_ns as f64 / calendar.median_ns.max(1) as f64;
    let floor = 2.0;
    note(&format!(
        "event_churn: {initial} initial / {pops} pops — calendar {:.2} ms, heap {:.2} ms ({speedup:.1}x, floor {floor}x)",
        ms(calendar.median_ns),
        ms(legacy_heap.median_ns),
    ));
    if !quick {
        assert!(
            speedup >= floor,
            "event_churn regression: calendar {speedup:.2}x vs heap is below the {floor}x floor"
        );
    }
    EventChurnResult {
        initial_events: initial,
        pops,
        calendar,
        legacy_heap,
        speedup_vs_heap: speedup,
        floor,
    }
}

// ---------------------------------------------------------------------------
// ecc_batch_decode
// ---------------------------------------------------------------------------

/// Batched-vs-scalar timings for one inner code.
#[derive(Serialize)]
struct EccCodecResult {
    codewords: usize,
    dirty: usize,
    scalar: Timing,
    batch: Timing,
    /// Scalar median over batch median: > 1 means batching pays.
    speedup_vs_scalar: f64,
}

/// Builds a clean-read-dominated batch: every `dirty_every`-th codeword
/// takes one bit flip (within every code's correction budget), the rest
/// decode clean — the shape `mrm-faults` decode ladders and the `e8`/`e11`
/// read paths see at healthy raw BER.
fn ecc_inputs(
    encode: impl Fn(&[u8]) -> Vec<u8>,
    k: usize,
    n_cw: usize,
    dirty_every: usize,
    seed: u64,
) -> (Vec<Vec<u8>>, usize) {
    let mut rng = SimRng::seed_from(seed);
    let mut dirty = 0usize;
    let cws: Vec<Vec<u8>> = (0..n_cw)
        .map(|i| {
            let data: Vec<u8> = (0..k).map(|_| u8::from(rng.gen_bool(0.5))).collect();
            let mut cw = encode(&data);
            if i % dirty_every == 1 {
                let j = rng.gen_range_u64(cw.len() as u64) as usize;
                cw[j] ^= 1;
                dirty += 1;
            }
            cw
        })
        .collect();
    (cws, dirty)
}

fn bench_ecc_codec<T: PartialEq>(
    cws: &[Vec<u8>],
    dirty: usize,
    reps: u32,
    scalar_decode: impl Fn(&[u8]) -> T,
    batch_decode: impl Fn(&[&[u8]]) -> Vec<T>,
) -> EccCodecResult {
    let refs: Vec<&[u8]> = cws.iter().map(Vec::as_slice).collect();
    // Bitwise identity first, outside the timed region.
    let scalar_out: Vec<T> = cws.iter().map(|cw| scalar_decode(cw)).collect();
    let batch_out = batch_decode(&refs);
    assert!(
        scalar_out == batch_out,
        "batched decode diverged from the scalar path"
    );
    let (scalar, _) = time_median(reps, 1, || {
        let mut n = 0usize;
        for cw in cws {
            std::hint::black_box(scalar_decode(cw));
            n += 1;
        }
        n
    });
    let (batch, _) = time_median(reps, 1, || batch_decode(&refs).len());
    EccCodecResult {
        codewords: cws.len(),
        dirty,
        scalar,
        batch,
        speedup_vs_scalar: scalar.median_ns as f64 / batch.median_ns.max(1) as f64,
    }
}

#[derive(Serialize)]
struct EccBatchResult {
    secded: EccCodecResult,
    bch: EccCodecResult,
    /// The worse of the two codecs' batched speedups.
    speedup_vs_scalar: f64,
    /// Acceptance floor on `speedup_vs_scalar`, asserted in full runs.
    floor: f64,
}

fn bench_ecc_batch_decode(quick: bool) -> EccBatchResult {
    let (n_secded, n_bch, reps) = if quick {
        (1_024usize, 256usize, 3)
    } else {
        (8_192, 2_048, 7)
    };
    let h = Hamming::secded_72_64();
    let (cws, dirty) = ecc_inputs(|d| h.encode(d), h.data_len(), n_secded, 48, 0xECC0);
    // SECDED drives the flat-output batch API with reused buffers — the
    // production shape for decode ladders, where the whole point of
    // batching is per-batch instead of per-lane cost.
    let refs: Vec<&[u8]> = cws.iter().map(Vec::as_slice).collect();
    let k = h.data_len();
    let mut flat = Vec::new();
    let mut outcomes = Vec::new();
    h.decode_batch_into(&refs, &mut flat, &mut outcomes);
    for (i, cw) in cws.iter().enumerate() {
        let (d, o) = h.decode(cw);
        assert!(
            flat[i * k..(i + 1) * k] == d[..] && outcomes[i] == o,
            "batched SECDED decode diverged from the scalar path at lane {i}"
        );
    }
    let (scalar, _) = time_median(reps, 1, || {
        let mut n = 0usize;
        for cw in &cws {
            std::hint::black_box(h.decode(cw));
            n += 1;
        }
        n
    });
    let (batch, _) = time_median(reps, 1, || {
        flat.clear();
        outcomes.clear();
        h.decode_batch_into(&refs, &mut flat, &mut outcomes);
        outcomes.len()
    });
    let secded = EccCodecResult {
        codewords: cws.len(),
        dirty,
        scalar,
        batch,
        speedup_vs_scalar: scalar.median_ns as f64 / batch.median_ns.max(1) as f64,
    };
    // The fault model's production geometry: BCH t=2 over 512 data bits.
    let c = Bch::with_data_len(10, 2, 512);
    let (cws, dirty) = ecc_inputs(|d| c.encode(d), c.k(), n_bch, 48, 0xECC1);
    let bch = bench_ecc_codec(
        &cws,
        dirty,
        reps,
        |cw| c.decode(cw),
        |refs| c.decode_batch(refs),
    );
    let speedup = secded.speedup_vs_scalar.min(bch.speedup_vs_scalar);
    let floor = 3.0;
    note(&format!(
        "ecc_batch_decode: secded {}cw {:.1}x, bch {}cw {:.1}x (floor {floor}x on the min)",
        secded.codewords, secded.speedup_vs_scalar, bch.codewords, bch.speedup_vs_scalar,
    ));
    if !quick {
        assert!(
            speedup >= floor,
            "ecc_batch_decode regression: {speedup:.2}x is below the {floor}x floor"
        );
    }
    EccBatchResult {
        secded,
        bch,
        speedup_vs_scalar: speedup,
        floor,
    }
}

// ---------------------------------------------------------------------------
// cluster-side scenarios
// ---------------------------------------------------------------------------

#[derive(Serialize)]
struct ClusterScenario {
    timing: Timing,
    /// Simulated tokens decoded (sanity anchor: must not drift between
    /// runs of the same binary).
    tokens: u64,
}

fn e9_config(secs: u64, arrivals: f64) -> ClusterConfig {
    let mut cfg = ClusterConfig::llama70b(PlacementPolicy::HbmMrm, 4, arrivals);
    cfg.duration = SimDuration::from_secs(secs);
    cfg
}

fn bench_e9_cluster(quick: bool) -> ClusterScenario {
    let (secs, reps) = if quick { (30, 3) } else { (120, 5) };
    let cfg = e9_config(secs, 16.0);
    let (timing, report) = time_median(reps, 1, || run_cluster(cfg.clone()));
    note(&format!(
        "e9_cluster: {secs} s simulated, {} tokens — {:.1} ms",
        report.tokens,
        ms(timing.median_ns)
    ));
    ClusterScenario {
        timing,
        tokens: report.tokens,
    }
}

#[derive(Serialize)]
struct ProfiledClusterScenario {
    timing: Timing,
    tokens: u64,
    /// Wall time of the bare (unobserved) run, measured *inside this
    /// scenario* with bare/observed reps interleaved, so both sides see
    /// the same allocator, cache, and scheduler conditions. The separate
    /// `e9_cluster` timing is not reused here for exactly that reason.
    bare: Timing,
    /// Observed-run wall time over the bare run's (the cost of the full
    /// obs bundle on the hot path; hooks are `None`-checks when detached).
    /// Computed min-over-min: the minimum of each side's reps is the
    /// least-interference sample, so the ratio is far less sensitive to
    /// scheduler noise than a median-over-median on a busy host.
    overhead_vs_bare: f64,
    /// Acceptance ceiling on `overhead_vs_bare`, asserted in full runs.
    /// Lap-timed dispatch (one clock read per event), work-gated
    /// admission frames, closed-slice iteration spans, and keyed async
    /// lookup are what keep the bundle under it.
    overhead_ceiling: f64,
    /// Top-5 hot handlers by self wall time, with sim-time attribution.
    profile: ProfileReport,
}

fn bench_profiled_cluster(quick: bool) -> ProfiledClusterScenario {
    let (secs, reps) = if quick { (30, 3) } else { (120, 7) };
    let cfg = e9_config(secs, 16.0);
    // Warm both paths once untimed, then interleave bare/observed reps
    // so the pair shares allocator, cache, and scheduler conditions.
    std::hint::black_box(run_cluster(cfg.clone()));
    let run_observed = |cfg: &ClusterConfig| {
        let mut sink = NullSink;
        let mut obs = Box::new(Obs::new(cfg.seed));
        let (report, _audit) = run_cluster_observed(cfg.clone(), &mut sink, &mut obs);
        (report.tokens, obs)
    };
    std::hint::black_box(run_observed(&cfg));
    let mut bare_samples = Vec::with_capacity(reps);
    let mut obs_samples = Vec::with_capacity(reps);
    let mut bare_tokens = 0u64;
    let mut last: Option<(u64, Box<Obs>)> = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        let report = run_cluster(cfg.clone());
        bare_samples.push(u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX));
        bare_tokens = std::hint::black_box(report.tokens);
        let t0 = Instant::now();
        let r = run_observed(&cfg);
        obs_samples.push(u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX));
        last = Some(std::hint::black_box(r));
    }
    let Some((tokens, obs)) = last else {
        unreachable!("reps is always at least 1");
    };
    assert_eq!(
        bare_tokens, tokens,
        "observed run diverged from the bare simulation"
    );
    let bare = timing_from(bare_samples);
    let timing = timing_from(obs_samples);
    let overhead = timing.min_ns as f64 / bare.min_ns.max(1) as f64;
    let ceiling = 1.5;
    note(&format!(
        "profiled_cluster: {secs} s simulated fully observed — {:.1} ms ({overhead:.2}x bare, ceiling {ceiling}x)",
        ms(timing.median_ns)
    ));
    if !quick {
        assert!(
            overhead <= ceiling,
            "profiled_cluster regression: {overhead:.2}x observation overhead exceeds the {ceiling}x ceiling"
        );
    }
    println!("\ntop-5 hot handlers (last rep):");
    print!("{}", obs.profiler.table(5));
    let folded = obs.profiler.folded();
    match std::fs::write("BENCH_cluster_folded.txt", &folded) {
        Ok(()) => note(&format!(
            "[saved BENCH_cluster_folded.txt: {} stacks]",
            folded.lines().count()
        )),
        Err(e) => mrm_bench::warn(&format!("cannot write BENCH_cluster_folded.txt: {e}")),
    }
    ProfiledClusterScenario {
        timing,
        tokens,
        bare,
        overhead_vs_bare: overhead,
        overhead_ceiling: ceiling,
        profile: obs.profiler.report(5),
    }
}

#[derive(Serialize)]
struct SessionsScenario {
    timing: Timing,
    /// The AoS replay this layout replaced: `Vec<Session>` of `Vec<Turn>`,
    /// pointer-chasing per turn. Kept as the correctness oracle — both
    /// layouts must produce identical coverage numbers.
    aos: Timing,
    sessions: usize,
    /// Gaps covered across the whole retention ladder (sanity anchor).
    gaps_covered: u64,
    /// AoS median over SoA median, from this run's in-process replay of
    /// the pre-SoA code. Informational: the replay's AoS loop benefits
    /// from sharing the process (warm allocator, inlined sampler), so it
    /// understates the real-world gap.
    speedup_vs_aos: f64,
    /// The pre-SoA full-run median recorded in PR-8's BENCH_cluster.json
    /// (same scenario shape, same seed) — the anchor the floor is
    /// asserted against.
    baseline_ms: f64,
    /// Acceptance floor on `baseline_ms` over this run's SoA median,
    /// asserted in full runs.
    floor: f64,
}

fn bench_e12_sessions(quick: bool) -> SessionsScenario {
    let (n, reps) = if quick { (5_000usize, 3) } else { (50_000, 5) };
    let sampler = SessionSampler::conversation_default(4096);
    let kvpt = ModelConfig::llama2_70b().kv_bytes_per_token(Quantization::Fp16);
    // AoS oracle: the exact pre-SoA code — sample into per-session turn
    // Vecs, then walk session-by-session for every retention class.
    let (aos, aos_result) = time_median(reps, 1, || {
        let mut rng = SimRng::seed_from(7);
        let sessions: Vec<_> = (0..n).map(|_| sampler.sample(&mut rng)).collect();
        let mut gaps_covered = 0u64;
        let mut recompute_bytes = 0u64;
        for class in RetentionClass::ladder() {
            let ret = class.duration();
            for s in &sessions {
                let mut context = 0u64;
                for (i, turn) in s.turns.iter().enumerate() {
                    if i > 0 {
                        if turn.gap <= ret {
                            gaps_covered += 1;
                        } else {
                            recompute_bytes += context * kvpt;
                        }
                    }
                    context += u64::from(turn.prompt_tokens) + u64::from(turn.output_tokens);
                }
            }
        }
        (gaps_covered, recompute_bytes)
    });
    // SoA: one batch sample into columns, the per-turn running context
    // precomputed once, then each retention class is a linear scan over
    // the gap column — no per-session pointer chase in the class loop.
    let (timing, soa_result) = time_median(reps, 1, || {
        let mut rng = SimRng::seed_from(7);
        let batch = sampler.sample_batch(&mut rng, n);
        let prompts = batch.prompt_tokens();
        let outputs = batch.output_tokens();
        let gaps = batch.gaps();
        let offsets = batch.offsets();
        // One compaction pass keeps only the resumable turns (everything
        // past each session's first) paired with the context accumulated
        // before them; the per-class scans then run over two flat columns
        // with no per-session indirection and a predictable branch.
        let mut scan_gaps = Vec::with_capacity(batch.turn_count());
        let mut scan_ctx = Vec::with_capacity(batch.turn_count());
        for w in offsets.windows(2) {
            let (start, end) = (w[0] as usize, w[1] as usize);
            let mut context = 0u64;
            for t in start..end {
                if t > start {
                    scan_gaps.push(gaps[t]);
                    scan_ctx.push(context);
                }
                context += u64::from(prompts[t]) + u64::from(outputs[t]);
            }
        }
        let mut gaps_covered = 0u64;
        let mut recompute_bytes = 0u64;
        for class in RetentionClass::ladder() {
            let ret = class.duration();
            for (g, c) in scan_gaps.iter().zip(&scan_ctx) {
                let covered = *g <= ret;
                gaps_covered += u64::from(covered);
                if !covered {
                    recompute_bytes += c * kvpt;
                }
            }
        }
        (gaps_covered, recompute_bytes)
    });
    assert_eq!(
        soa_result, aos_result,
        "SoA coverage scan diverged from the AoS oracle"
    );
    let speedup = aos.median_ns as f64 / timing.median_ns.max(1) as f64;
    // The asserted floor anchors on the pre-SoA median recorded in PR-8's
    // BENCH_cluster.json, not this run's AoS replay: the in-process
    // replay runs warmer than the recorded baseline did, so it would
    // understate the improvement the floor is meant to protect.
    let baseline_ms = 27.7;
    let floor = 1.5;
    let vs_baseline = baseline_ms / ms(timing.median_ns).max(1e-9);
    note(&format!(
        "e12_sessions: {n} sessions x {} classes — SoA {:.1} ms vs AoS replay {:.1} ms ({speedup:.1}x) vs recorded {baseline_ms} ms ({vs_baseline:.1}x, floor {floor}x)",
        RetentionClass::ladder().len(),
        ms(timing.median_ns),
        ms(aos.median_ns),
    ));
    if !quick {
        assert!(
            vs_baseline >= floor,
            "e12_sessions regression: SoA {vs_baseline:.2}x vs the recorded {baseline_ms} ms baseline is below the {floor}x floor"
        );
    }
    SessionsScenario {
        timing,
        aos,
        sessions: n,
        gaps_covered: soa_result.0,
        speedup_vs_aos: speedup,
        baseline_ms,
        floor,
    }
}

#[derive(Serialize)]
struct SweepScenario {
    timing: Timing,
    points: usize,
    threads: usize,
    tokens: u64,
}

fn bench_sweep_fanout(quick: bool) -> SweepScenario {
    let (secs, arrivals, reps): (u64, &[f64], u32) = if quick {
        (10, &[4.0, 8.0], 2)
    } else {
        (30, &[4.0, 8.0, 12.0, 16.0], 3)
    };
    let threads = 2usize;
    let points = arrivals.len();
    let (timing, tokens) = time_median(reps, 1, || {
        let grid = Grid::axis(arrivals.iter().copied()).map(|a| e9_config(secs, a));
        let reports = Sweep::new(grid, |cfg: &ClusterConfig, _rng| run_cluster(cfg.clone()))
            .run_parallel(threads);
        reports.iter().map(|r| r.tokens).sum::<u64>()
    });
    note(&format!(
        "sweep_fanout: {points} points on {threads} threads — {:.1} ms",
        ms(timing.median_ns)
    ));
    SweepScenario {
        timing,
        points,
        threads,
        tokens,
    }
}

// ---------------------------------------------------------------------------
// output records
// ---------------------------------------------------------------------------

#[derive(Serialize)]
struct PoolBench {
    suite: &'static str,
    quick: bool,
    scenarios: PoolScenarios,
}

#[derive(Serialize)]
struct PoolScenarios {
    pool_churn: PoolChurnResult,
}

#[derive(Serialize)]
struct EventsBench {
    suite: &'static str,
    quick: bool,
    scenarios: EventsScenarios,
}

#[derive(Serialize)]
struct EventsScenarios {
    event_churn: EventChurnResult,
}

#[derive(Serialize)]
struct EccBench {
    suite: &'static str,
    quick: bool,
    scenarios: EccScenarios,
}

#[derive(Serialize)]
struct EccScenarios {
    ecc_batch_decode: EccBatchResult,
}

#[derive(Serialize)]
struct ClusterBench {
    suite: &'static str,
    quick: bool,
    scenarios: ClusterScenarios,
}

#[derive(Serialize)]
struct ClusterScenarios {
    e9_cluster: ClusterScenario,
    profiled_cluster: ProfiledClusterScenario,
    e12_sessions: SessionsScenario,
    sweep_fanout: SweepScenario,
}

fn write_record<T: Serialize>(path: &str, record: &T) {
    match serde_json::to_string_pretty(record) {
        Ok(json) => match std::fs::write(path, json + "\n") {
            Ok(()) => note(&format!("[saved {path}]")),
            Err(e) => {
                mrm_bench::warn(&format!("cannot write {path}: {e}"));
                std::process::exit(1);
            }
        },
        Err(e) => {
            mrm_bench::warn(&format!("cannot serialize {path}: {e}"));
            std::process::exit(1);
        }
    }
}

fn main() {
    let quick = std::env::args().skip(1).any(|a| a == "--quick");
    heading(&format!(
        "perf_suite — wall-clock hot-path benchmarks{}",
        if quick { " (--quick)" } else { "" }
    ));
    if cfg!(debug_assertions) {
        mrm_bench::warn("running unoptimized: use --release for meaningful numbers");
    }

    let pool = PoolBench {
        suite: "pool",
        quick,
        scenarios: PoolScenarios {
            pool_churn: bench_pool_churn(quick),
        },
    };
    write_record("BENCH_pool.json", &pool);

    let events = EventsBench {
        suite: "events",
        quick,
        scenarios: EventsScenarios {
            event_churn: bench_event_churn(quick),
        },
    };
    write_record("BENCH_events.json", &events);

    let ecc = EccBench {
        suite: "ecc",
        quick,
        scenarios: EccScenarios {
            ecc_batch_decode: bench_ecc_batch_decode(quick),
        },
    };
    write_record("BENCH_ecc.json", &ecc);

    let e9_cluster = bench_e9_cluster(quick);
    let profiled_cluster = bench_profiled_cluster(quick);
    let cluster = ClusterBench {
        suite: "cluster",
        quick,
        scenarios: ClusterScenarios {
            e9_cluster,
            profiled_cluster,
            e12_sessions: bench_e12_sessions(quick),
            sweep_fanout: bench_sweep_fanout(quick),
        },
    };
    write_record("BENCH_cluster.json", &cluster);
}
