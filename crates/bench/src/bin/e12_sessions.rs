//! **E12** (§2/§4) — session think-time gaps vs. retention classes.
//!
//! A context lives across a whole interaction (§2), and the intervals the
//! KV cache must survive are the user's think times between turns. This
//! experiment generates multi-turn sessions and asks, per DCM retention
//! class: what fraction of sessions complete with zero KV recompute (every
//! gap covered), and what the residual recompute rate costs — locating the
//! retention sweet spot from the *session* side.

use mrm_analysis::report::Table;
use mrm_bench::{heading, save_json, save_telemetry, warn_unsupported_obs, OutputPaths};
use mrm_controller::dcm::RetentionClass;
use mrm_sim::rng::SimRng;
use mrm_sim::time::{SimDuration, SimTime};
use mrm_telemetry::{export, SimTelemetry, TelemetrySink};
use mrm_workload::model::{ModelConfig, Quantization};
use mrm_workload::sessions::SessionSampler;
use serde::Value;

/// Static gauge name for a retention class's session-coverage fraction
/// (the registry interns `&'static str` names).
fn coverage_gauge(class: RetentionClass) -> &'static str {
    match class {
        RetentionClass::Seconds30 => "session_coverage_30s",
        RetentionClass::Minutes10 => "session_coverage_10m",
        RetentionClass::Hours1 => "session_coverage_1h",
        RetentionClass::Hours12 => "session_coverage_12h",
        RetentionClass::Days7 => "session_coverage_7d",
    }
}

fn main() {
    let out = OutputPaths::from_args();
    warn_unsupported_obs("e12_sessions", &out);
    let sampler = SessionSampler::conversation_default(4096);
    let model = ModelConfig::llama2_70b();
    let kvpt = model.kv_bytes_per_token(Quantization::Fp16);
    let n = 50_000;
    let mut rng = SimRng::seed_from(7);
    let sessions: Vec<_> = (0..n).map(|_| sampler.sample(&mut rng)).collect();

    let multi: Vec<_> = sessions.iter().filter(|s| s.turns.len() > 1).collect();
    heading("E12 — multi-turn sessions (conversation population)");
    println!(
        "{n} sessions, {} multi-turn ({:.0}% continue rate, expected {:.2} turns/session)\n",
        multi.len(),
        60.0,
        sampler.expected_turns()
    );

    let mut t = Table::new(&[
        "retention class",
        "sessions fully covered",
        "gaps covered",
        "recomputed KV per 1k sessions",
    ]);
    let mut results = Vec::new();
    for class in RetentionClass::ladder() {
        let ret = class.duration();
        let mut covered_sessions = 0u64;
        let mut gaps_total = 0u64;
        let mut gaps_covered = 0u64;
        let mut recompute_bytes = 0u64;
        for s in &multi {
            let mut context = 0u64;
            let mut all = true;
            for (i, turn) in s.turns.iter().enumerate() {
                if i > 0 {
                    gaps_total += 1;
                    if turn.gap <= ret {
                        gaps_covered += 1;
                    } else {
                        all = false;
                        // The whole accumulated context must be recomputed.
                        recompute_bytes += context * kvpt;
                    }
                }
                context += u64::from(turn.prompt_tokens) + u64::from(turn.output_tokens);
            }
            if all {
                covered_sessions += 1;
            }
        }
        let frac_sessions = covered_sessions as f64 / multi.len() as f64;
        let frac_gaps = gaps_covered as f64 / gaps_total as f64;
        let recompute_gb_per_k = recompute_bytes as f64 / 1e9 / (multi.len() as f64 / 1000.0);
        t.row(&[
            class.label(),
            &format!("{:.1}%", frac_sessions * 100.0),
            &format!("{:.1}%", frac_gaps * 100.0),
            &format!("{recompute_gb_per_k:.1} GB"),
        ]);
        results.push((class.label(), frac_sessions, frac_gaps, recompute_gb_per_k));
    }
    print!("{}", t.render());

    heading("Reading the experiment");
    println!("- seconds-class retention recomputes nearly every turn: unusable alone;");
    println!("- the hours classes cover essentially all think times with zero scrubs —");
    println!("  the §1 \"retention can be relaxed to days or hours\" claim, derived from");
    println!("  session structure rather than asserted;");
    println!("- the residual (cross-session) reuse is what the follow-up window and");
    println!("  prefix cache (E11) handle.");

    // Shape checks: coverage is monotone in retention; hours-class ≈ full.
    for w in results.windows(2) {
        assert!(w[1].1 >= w[0].1, "coverage must be monotone in retention");
    }
    let hours1 = results.iter().find(|r| r.0 == "1h").unwrap();
    assert!(
        hours1.1 > 0.9,
        "1h class must cover >90% of sessions, got {}",
        hours1.1
    );
    let secs = results.iter().find(|r| r.0 == "30s").unwrap();
    assert!(secs.1 < 0.7, "30s class must visibly fail sessions");
    println!("\nPASS session-coverage shape checks");

    if let Some(path) = &out.telemetry {
        // One snapshot per retention class at a synthetic 1 s step: the
        // session/gap coverage curve as a JSONL series, same shape as the
        // cluster experiments' exports.
        let mut tele = SimTelemetry::new(SimDuration::from_secs(1));
        for (i, (class, r)) in RetentionClass::ladder().iter().zip(&results).enumerate() {
            tele.gauge(coverage_gauge(*class), r.1);
            tele.gauge("session_gap_coverage", r.2);
            tele.gauge("session_recompute_gb_per_k", r.3);
            tele.snapshot(SimTime::ZERO + SimDuration::from_secs(i as u64 + 1));
        }
        save_telemetry(
            path,
            &export::jsonl_tagged(
                tele.snapshots(),
                &[
                    ("experiment", Value::Str("e12".to_string())),
                    ("point", Value::U64(0)),
                ],
            ),
        );
    }

    save_json("e12_sessions", &results);
}
