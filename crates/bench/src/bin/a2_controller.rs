//! **A2** (ablation, §4) — lightweight block controller vs. full
//! random-access DRAM controller under the inference access pattern.
//!
//! "The lack of random access requirements opens up a unique prospect of a
//! block-level access memory controller." This ablation drives the §2.2
//! access pattern (large sequential reads, append-only writes) through
//! both controller designs and compares what the DRAM machinery was doing
//! for that workload: row-buffer management (hit rates already near 100%
//! on sequential sweeps) and refresh (pure overhead).

use mrm_analysis::report::Table;
use mrm_bench::{heading, save_json};
use mrm_controller::dram::DramController;
use mrm_controller::mrm_block::MrmBlockController;
use mrm_device::device::MemoryDevice;
use mrm_device::geometry::DeviceGeometry;
use mrm_device::tech::presets;
use mrm_sim::time::{SimDuration, SimTime};
use mrm_sim::units::{GIB, MIB};

fn main() {
    let sweep_bytes = 64 * MIB;
    let chunk = 256u64; // cache-line-scale commands within 1 KiB rows

    heading("A2 — the decode access pattern through both controllers");

    // DRAM controller: sequential sweeps (the weights/KV read pattern) in
    // cache-line-scale commands — four column accesses per 1 KiB row, so
    // the row buffer gets every chance to help. Refresh is then accounted
    // over one full second of operation.
    let mut dram = DramController::hbm_like(DeviceGeometry::hbm_like(GIB));
    let mut now = SimTime::ZERO;
    let mut dram_bytes = 0u64;
    for _ in 0..2 {
        let mut addr = 0u64;
        while addr + chunk <= sweep_bytes {
            now = dram.read(now, addr, chunk);
            addr += chunk;
            dram_bytes += chunk;
        }
    }
    dram.catch_up_refresh(SimTime::from_secs(1));
    let ds = dram.stats();

    // MRM block controller: the same logical pattern as zone reads.
    let mut tech = presets::mrm_hours();
    tech.capacity_bytes = GIB;
    let mut mrm = MrmBlockController::new(MemoryDevice::new(tech), 64 * MIB);
    let zones: Vec<_> = (0..(sweep_bytes / (64 * MIB)))
        .map(|_| {
            let z = mrm.open_zone().unwrap();
            mrm.append(SimTime::ZERO, z, 64 * MIB, SimDuration::from_hours(12))
                .unwrap();
            z
        })
        .collect();
    let mut mnow = SimTime::ZERO;
    let mut mrm_bytes = 0u64;
    'outer: loop {
        for &z in &zones {
            let mut off = 0;
            while off + chunk <= 64 * MIB {
                let r = mrm.read(mnow, z, off, chunk).unwrap();
                mnow = mnow.saturating_add(r.service_time);
                off += chunk;
                mrm_bytes += chunk;
                if mnow >= SimTime::from_secs(1) {
                    break 'outer;
                }
            }
        }
    }

    let mut t = Table::new(&[
        "controller",
        "bytes served",
        "row hits",
        "row misses/conflicts",
        "hit rate",
        "refreshes",
        "refresh energy J",
        "bank-time stolen",
    ]);
    t.row(&[
        "DRAM (random-access)",
        &format!("{:.1} GiB", dram_bytes as f64 / GIB as f64),
        &ds.row_hits.to_string(),
        &format!("{}", ds.row_misses + ds.row_conflicts),
        &format!("{:.1}%", ds.hit_rate() * 100.0),
        &ds.refreshes.to_string(),
        &format!("{:.4}", ds.refresh_energy_j),
        &format!(
            "{:.3}%",
            dram.refresh_time_fraction(SimDuration::from_secs(1)) * 100.0
        ),
    ]);
    t.row(&[
        "MRM block (zoned)",
        &format!("{:.1} GiB", mrm_bytes as f64 / GIB as f64),
        "n/a",
        "n/a",
        "n/a",
        "0",
        "0.0000",
        "0%",
    ]);
    print!("{}", t.render());

    heading("What the DRAM machinery bought for this workload");
    println!(
        "- row-buffer management: the sweep is {:.1}% row hits *because it is sequential* —",
        ds.hit_rate() * 100.0
    );
    println!("  the open-row tracking, per-bank state machines and conflict scheduling");
    println!("  exist for random access the workload never issues (§2.2); a stream");
    println!("  prefetcher over a block interface captures the same locality for free.");
    println!(
        "- refresh: {} operations, {:.4} J, pure overhead the block controller never pays.",
        ds.refreshes, ds.refresh_energy_j
    );
    println!("- the block controller's entire per-zone state is a write pointer, a deadline");
    println!("  and a cycle counter — the \"extremely simple and energy efficient\" §4 design.");

    // Shape checks.
    assert!(
        ds.hit_rate() > 0.5,
        "sequential sweep must be row-hit dominated"
    );
    assert!(ds.refresh_energy_j > 0.0);
    assert!(mrm.energy().housekeeping_j.abs() < f64::EPSILON);

    save_json(
        "a2_controller",
        &(
            dram_bytes,
            ds.row_hits,
            ds.refreshes,
            ds.refresh_energy_j,
            mrm_bytes,
        ),
    );
}
