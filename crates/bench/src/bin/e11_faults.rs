//! **E11-faults** (§4) — retention margin vs. ECC budget vs. recovery.
//!
//! The paper's bet is that retention can be relaxed to data lifetime
//! because residual errors are *managed*: absorbed by retention-aware ECC
//! and, past the ECC budget, by recovery machinery (retry, scrub
//! escalation, re-fetch, recompute) that keeps silent data corruption at
//! zero. This sweep quantifies that pipeline end to end: KV retention is
//! provisioned at `margin × follow-up window` and the margin swept from
//! 10× down to 1× data lifetime. As the margin shrinks, the raw BER of
//! cached-KV reads climbs the Weibull retention curve; BCH t=2 corrects up
//! to its budget; what breaks through engages the cluster recovery ladder
//! — and the report shows the throughput/energy cost of living at the
//! edge.
//!
//! Flags: `--quick` (shorter runs for CI), `--seed <n>`, `--threads <n>`,
//! plus the shared observation flags: `--telemetry <path>` (JSONL series
//! per grid point), `--trace <path>` (Perfetto causal trace), and
//! `--profile <path>` (hot-handler report + folded stacks). At a fixed
//! seed the saved JSON is byte-identical for any thread count (the
//! chaos-smoke CI job diffs exactly that), and so is the trace.

use mrm_analysis::report::Table;
use mrm_bench::{check, heading, save_artifact, save_json, save_telemetry, OutputPaths};
use mrm_faults::FaultConfig;
use mrm_obs::{perfetto, profile, slo, Obs};
use mrm_sim::time::SimDuration;
use mrm_sweep::{flag_value_from_args, threads_from_args, Grid, Sweep};
use mrm_telemetry::{export, SimTelemetry, Snapshot};
use mrm_tiering::cluster::{
    run_cluster, run_cluster_observed, run_cluster_with_telemetry, ClusterConfig, ClusterReport,
};
use mrm_tiering::placement::PlacementPolicy;
use serde::{Serialize, Value};

/// Retention provisioning margins swept, ×data lifetime (generous → none).
const MARGINS: [f64; 6] = [10.0, 5.0, 2.5, 1.5, 1.25, 1.0];

/// One grid point of the sweep in the saved JSON record.
#[derive(Serialize)]
struct FaultSweepRecord {
    policy: String,
    margin: f64,
    report: ClusterReport,
}

fn config(policy: PlacementPolicy, margin: f64, secs: u64, seed: u64) -> ClusterConfig {
    let mut cfg = ClusterConfig::llama70b(policy, 2, 8.0);
    cfg.duration = SimDuration::from_secs(secs);
    // A short follow-up window so cached-KV ages span the full retention
    // class inside the simulated window (the margin knob scales retention
    // relative to this lifetime).
    cfg.followup_window = SimDuration::from_secs(20);
    cfg.hint_window = SimDuration::from_secs(20);
    cfg.followup_prob = 0.8;
    cfg.maintenance_period = SimDuration::from_secs(5);
    cfg.seed = seed;
    cfg.faults = FaultConfig {
        provision_margin: Some(margin),
        ..FaultConfig::mrm()
    };
    cfg
}

fn main() {
    let quick = std::env::args().skip(1).any(|a| a == "--quick");
    let secs = if quick { 45 } else { 90 };
    let seed = flag_value_from_args("--seed")
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(0xC1A5_7E12);
    let threads = threads_from_args();
    let out = OutputPaths::from_args();
    let observe = out.trace.is_some() || out.profile.is_some();
    // Snapshots are always collected: the SLO watchdog below reads them,
    // and the sink is observe-only (the saved JSON the chaos-smoke job
    // byte-compares is unchanged).
    let collect = true;

    heading(&format!(
        "E11-faults — retention margin sweep: {}x..{}x data lifetime, seed {seed}, {secs} s \
         ({threads} sweep threads{})",
        MARGINS[0],
        MARGINS[MARGINS.len() - 1],
        if quick { ", --quick" } else { "" }
    ));

    let policies = [PlacementPolicy::HbmMrm, PlacementPolicy::HbmMrmDcm];
    let grid = Grid::axis(policies)
        .cross(MARGINS)
        .map(|(p, m)| (p, m, config(p, m, secs, seed)));
    let points: Vec<(FaultSweepRecord, Vec<Snapshot>, Option<Box<Obs>>)> =
        Sweep::new(grid, move |(p, m, cfg), _rng| {
            let record = |report| FaultSweepRecord {
                policy: p.label().to_string(),
                margin: *m,
                report,
            };
            if observe {
                let mut tele = SimTelemetry::new(SimDuration::from_secs(5));
                let mut obs = Box::new(Obs::new(cfg.seed));
                let (report, _audit) = run_cluster_observed(cfg.clone(), &mut tele, &mut obs);
                (record(report), tele.into_snapshots(), Some(obs))
            } else if collect {
                let mut tele = SimTelemetry::new(SimDuration::from_secs(5));
                let report = run_cluster_with_telemetry(cfg.clone(), &mut tele);
                (record(report), tele.into_snapshots(), None)
            } else {
                (record(run_cluster(cfg.clone())), Vec::new(), None)
            }
        })
        .run_parallel(threads);
    let results: Vec<&FaultSweepRecord> = points.iter().map(|(r, _, _)| r).collect();

    let mut t = Table::new(&[
        "system",
        "margin",
        "raw BER",
        "flips",
        "corrected",
        "UE",
        "CRC-caught",
        "silent",
        "retries",
        "refetch",
        "recompute",
        "escalate",
        "tok/s",
    ]);
    for r in &results {
        let f = &r.report.faults;
        t.row(&[
            &r.policy,
            &format!("{:.2}x", r.margin),
            &format!("{:.2e}", f.raw_ber),
            &f.raw_flips.to_string(),
            &f.corrected.to_string(),
            &f.detected_ue.to_string(),
            &f.miscorrected.to_string(),
            &f.silent.to_string(),
            &f.retries.to_string(),
            &f.weight_refetches.to_string(),
            &f.kv_recomputes.to_string(),
            &f.scrub_escalations.to_string(),
            &format!("{:.0}", r.report.tokens_per_s),
        ]);
    }
    print!("{}", t.render());

    // Per-policy endpoints of the sweep (grid is row-major: policy × margin).
    let n = MARGINS.len();
    let mrm_wide = &results[0].report.faults;
    let mrm_tight = &results[n - 1].report.faults;

    heading("Shape checks (§4: relaxed retention is *managed*, not free)");
    let checks = [
        (
            format!(
                "raw BER rises as the margin collapses ({:.2e} at 10x -> {:.2e} at 1x)",
                mrm_wide.raw_ber, mrm_tight.raw_ber
            ),
            mrm_tight.raw_ber > mrm_wide.raw_ber,
        ),
        (
            format!(
                "ECC absorbs the bulk at 1x margin ({} corrected vs {} uncorrectable)",
                mrm_tight.corrected,
                mrm_tight.detected_ue + mrm_tight.miscorrected
            ),
            mrm_tight.corrected > mrm_tight.detected_ue + mrm_tight.miscorrected,
        ),
        (
            format!(
                "errors break through the ECC budget at 1x margin ({} UEs)",
                mrm_tight.detected_ue + mrm_tight.miscorrected
            ),
            mrm_tight.detected_ue + mrm_tight.miscorrected > 0,
        ),
        (
            format!(
                "recovery machinery engages at 1x margin ({} retries, {} recomputes, {} \
                 escalations)",
                mrm_tight.retries, mrm_tight.kv_recomputes, mrm_tight.scrub_escalations
            ),
            mrm_tight.retries + mrm_tight.kv_recomputes + mrm_tight.scrub_escalations > 0,
        ),
        (
            "no breakthrough at 10x margin (generous retention needs no recovery)".to_string(),
            mrm_wide.detected_ue + mrm_wide.miscorrected + mrm_wide.retries == 0,
        ),
        (
            "cluster-level SDC is zero at every margin".to_string(),
            results.iter().all(|r| r.report.faults.silent == 0),
        ),
        (
            "the cluster keeps serving tokens at every margin".to_string(),
            results.iter().all(|r| r.report.tokens > 100),
        ),
    ];
    let mut ok = true;
    for (desc, pass) in &checks {
        ok &= check(*pass, desc);
    }

    // SLO watchdog: the REQUIRED-DURABLE and occupancy invariants must
    // hold at every snapshot of every margin — living at the retention
    // edge may cost recompute throughput, but never a required drop.
    let slos = slo::serving_default(60_000.0, 50.0);
    let mut slo_checks = 0u64;
    let mut required_drop_breaches = 0usize;
    let mut occupancy_breaches = 0usize;
    for (_, snaps, _) in &points {
        let rep = slo::evaluate(&slos, snaps);
        slo_checks += rep.checks;
        required_drop_breaches += rep.breaches_of("required-drop");
        occupancy_breaches += rep.breaches_of("hbm-occupancy")
            + rep.breaches_of("lpddr-occupancy")
            + rep.breaches_of("mrm-occupancy");
    }
    ok &= check(
        slo_checks > 0 && required_drop_breaches == 0,
        &format!("SLO: zero required-drop breaches across all margins ({slo_checks} checks)"),
    );
    ok &= check(
        occupancy_breaches == 0,
        "SLO: tier occupancy never exceeds 1.0 at any margin",
    );

    if let Some(path) = &out.telemetry {
        let mut jsonl = String::new();
        for (i, (r, snaps, _)) in points.iter().enumerate() {
            jsonl.push_str(&export::jsonl_tagged(
                snaps,
                &[
                    ("experiment", Value::Str("e11".to_string())),
                    ("point", Value::U64(i as u64)),
                    ("policy", Value::Str(r.policy.clone())),
                    ("margin", Value::F64(r.margin)),
                ],
            ));
        }
        save_telemetry(path, &jsonl);
    }
    if observe {
        let labelled: Vec<(String, &Obs)> = points
            .iter()
            .enumerate()
            .filter_map(|(i, (r, _, o))| {
                o.as_deref()
                    .map(|o| (format!("e11:{i}:{}:{}x", r.policy, r.margin), o))
            })
            .collect();
        if let Some(path) = &out.trace {
            let tracers: Vec<(String, &mrm_obs::CausalTracer)> = labelled
                .iter()
                .map(|(l, o)| (l.clone(), &o.tracer))
                .collect();
            save_artifact("trace", path, &perfetto::chrome_trace(&tracers));
        }
        if let Some(path) = &out.profile {
            let profs: Vec<(String, &mrm_obs::Profiler)> = labelled
                .iter()
                .map(|(l, o)| (l.clone(), &o.profiler))
                .collect();
            save_artifact("profile", path, &profile::artifact(&profs, 10));
        }
    }

    save_json("e11_faults", &results);
    if !ok {
        std::process::exit(1);
    }
}
