//! **A3** (ablation, §3) — multi-level-cell MRM: the density upside and
//! what it costs.
//!
//! "STT-MRAM and RRAM cells have already demonstrated potential for
//! multi-level encoding \[10\]." This ablation derives 2- and 3-bit variants
//! of the hours-class MRM design point and checks where MLC still clears
//! the paper's requirements — including the ECC that the narrower level
//! margins demand.

use mrm_analysis::endurance::{figure1_row, paper_requirements};
use mrm_analysis::report::Table;
use mrm_bench::{heading, save_json};
use mrm_device::mlc::{apply_mlc, CellLevels};
use mrm_device::tech::presets;
use mrm_ecc::analysis::required_t;
use mrm_sim::units::{format_bytes, format_sci};

fn main() {
    let base = presets::mrm_hours();
    let req = paper_requirements();

    heading("A3 — MLC MRM variants of the hours-class design point");
    let mut t = Table::new(&[
        "variant",
        "capacity/pkg",
        "$/GB rel",
        "wr pJ/b",
        "wr bw",
        "rd pJ/b",
        "retention",
        "endurance",
        "meets req band",
    ]);
    let mut rows = Vec::new();
    for levels in CellLevels::all() {
        let v = apply_mlc(&base, levels);
        let f1 = figure1_row(&v, &req);
        t.row(&[
            &v.name,
            &format_bytes(v.capacity_bytes),
            &format!("{:.2}", v.cost_per_gb_rel),
            &format!("{:.1}", v.write_energy_pj_bit),
            &format!("{:.0} GB/s", v.write_bw / 1e9),
            &format!("{:.1}", v.read_energy_pj_bit),
            &v.retention.to_string(),
            &format_sci(v.endurance),
            if f1.margin_vs_max >= 1.0 { "yes" } else { "NO" },
        ]);
        rows.push((v, f1.margin_vs_max));
    }
    print!("{}", t.render());

    heading("A3b — the ECC bill for narrower margins (4 KiB codewords, cw-fail 1e-12)");
    // MLC raises the error floor roughly 10x per extra bit.
    let mut t = Table::new(&[
        "variant",
        "assumed RBER floor",
        "required t",
        "parity overhead",
    ]);
    for (i, levels) in CellLevels::all().iter().enumerate() {
        let rber = 1e-6 * 10f64.powi(i as i32);
        let n = 4096u64 * 8;
        let tt = required_t(n, rber, 1e-12).unwrap();
        let m = 16u64; // GF(2^16)-class field for blocks this size
        t.row(&[
            levels.label(),
            &format!("{rber:.0e}"),
            &tt.to_string(),
            &format!("{:.2}%", (m * tt) as f64 / (n + m * tt) as f64 * 100.0),
        ]);
    }
    print!("{}", t.render());

    heading("Reading the ablation");
    let slc = &rows[0].0;
    let mlc = &rows[1].0;
    println!(
        "- MLC doubles capacity ({} -> {}) and halves $/GB ({:.2} -> {:.2});",
        format_bytes(slc.capacity_bytes),
        format_bytes(mlc.capacity_bytes),
        slc.cost_per_gb_rel,
        mlc.cost_per_gb_rel
    );
    println!(
        "- endurance drops 12x ({} -> {}) but still clears the 5-year band (margin {:.0}x);",
        format_sci(slc.endurance),
        format_sci(mlc.endurance),
        rows[1].1
    );
    println!("- retention shrinks 4x (12h -> 3h): still hours-class, still matching KV");
    println!("  lifetimes, but the DCM ladder and scrub scheduler must use the tighter value;");
    println!("- the ECC overhead roughly doubles per extra bit — cheap next to 2x density.");
    println!("- TLC is the edge: 45m retention pushes scrub frequency up for cached contexts.");

    // Shape checks.
    assert!(rows[1].1 >= 1.0, "MLC must clear the requirement band");
    assert!(mlc.read_energy_pj_bit < presets::hbm3e().read_energy_pj_bit);
    let json: Vec<(String, u64, f64, f64)> = rows
        .iter()
        .map(|(v, m)| (v.name.clone(), v.capacity_bytes, v.endurance, *m))
        .collect();
    save_json("a3_mlc", &json);
    println!("\nPASS all MLC ablation checks");
}
