//! **T5** (§2.2/§3) — memory-system comparison: HBM-only vs. HBM+LPDDR vs.
//! HBM+MRM.
//!
//! The §3 claim under test: an LPDDR cold tier "would reduce the overall
//! hardware cost but also reduce the bandwidth at which the data is
//! available to the GPU, and fundamentally not improve the HBM's read
//! energy efficiency" — whereas MRM improves capacity, bulk bandwidth, and
//! per-bit read energy together.

use mrm_analysis::report::Table;
use mrm_analysis::tco::{system_row, SystemKind};
use mrm_bench::{heading, save_json};
use mrm_sim::units::format_bytes;
use mrm_sweep::{threads_from_args, Grid, Sweep};

fn main() {
    let threads = threads_from_args();
    heading(&format!(
        "T5 — memory systems at B200-ish scale (bulk tier = where weights+KV live, \
         {threads} sweep threads)"
    ));
    // The three systems are independent table rows: evaluate them through
    // the sweep engine, which returns them in SystemKind::all() order.
    let rows = Sweep::new(Grid::axis(SystemKind::all()), |&kind, _rng| {
        system_row(kind)
    })
    .run_parallel(threads);
    let mut t = Table::new(&[
        "system",
        "capacity",
        "bulk read bw",
        "bulk rd pJ/b",
        "refresh W",
        "cost units",
        "GB/cost",
    ]);
    for r in &rows {
        t.row(&[
            &r.system,
            &format_bytes(r.capacity_bytes),
            &format!("{:.1} TB/s", r.bulk_read_bw / 1e12),
            &format!("{:.1}", r.bulk_read_pj_bit),
            &format!("{:.1}", r.refresh_w),
            &format!("{:.0}", r.cost_units),
            &format!("{:.2}", r.gb_per_cost),
        ]);
    }
    print!("{}", t.render());

    heading("Shape checks");
    let hbm = &rows[0];
    let lpddr = &rows[1];
    let mrm = &rows[2];
    let checks = [
        (
            "LPDDR raises GB/cost (cheaper capacity)",
            lpddr.gb_per_cost > hbm.gb_per_cost,
        ),
        (
            "LPDDR slashes bulk bandwidth (the §3 objection)",
            lpddr.bulk_read_bw < hbm.bulk_read_bw / 5.0,
        ),
        (
            "LPDDR does not improve read energy",
            lpddr.bulk_read_pj_bit >= hbm.bulk_read_pj_bit,
        ),
        (
            "MRM raises capacity, bandwidth AND energy efficiency together",
            mrm.capacity_bytes > hbm.capacity_bytes
                && mrm.bulk_read_bw > hbm.bulk_read_bw
                && mrm.bulk_read_pj_bit < hbm.bulk_read_pj_bit,
        ),
        (
            "MRM cuts always-on refresh by >2x",
            mrm.refresh_w < hbm.refresh_w / 2.0,
        ),
        ("MRM raises GB/cost", mrm.gb_per_cost > hbm.gb_per_cost),
    ];
    let mut ok = true;
    for (desc, pass) in checks {
        println!("{} {desc}", if pass { "PASS" } else { "FAIL" });
        ok &= pass;
    }
    if !ok {
        std::process::exit(1);
    }

    save_json("t5_hybrid", &rows);
}
