//! **E6** (§3) — housekeeping energy from the retention ↔ lifetime
//! mismatch: DRAM refresh vs. Flash FTL write amplification vs.
//! retention-matched MRM.
//!
//! "DRAM's retention is too short, requiring frequent refreshes. Flash
//! retention is too long ... requiring FTL mechanisms ... In contrast,
//! matching retention to the lifetime of the data makes refresh, deletion,
//! or wear-leveling unnecessary."
//!
//! Two views: (a) the analytic per-GB·hour table across technologies, and
//! (b) a measured run — a DRAM controller's refresh ledger and a real FTL's
//! write amplification vs. the MRM block controller's empty housekeeping
//! ledger under the same logical workload.

use mrm_analysis::energy::{housekeeping_row, paper_housekeeping};
use mrm_analysis::report::Table;
use mrm_bench::{heading, save_json};
use mrm_controller::dram::DramController;
use mrm_controller::ftl::{Ftl, FtlConfig};
use mrm_controller::mrm_block::MrmBlockController;
use mrm_device::device::MemoryDevice;
use mrm_device::geometry::DeviceGeometry;
use mrm_device::tech::presets;
use mrm_sim::time::{SimDuration, SimTime};
use mrm_sim::units::{GIB, MIB};

fn main() {
    heading("E6a — housekeeping energy storing 1 GB of KV-cache data for 6 hours");
    let rows = paper_housekeeping();
    let mut t = Table::new(&[
        "technology",
        "write J",
        "housekeeping J",
        "events",
        "J per GB*hour",
    ]);
    for r in &rows {
        t.row(&[
            &r.tech,
            &format!("{:.4}", r.write_j),
            &format!("{:.4}", r.housekeeping_j),
            &r.events.to_string(),
            &format!("{:.5}", r.j_per_gb_hour),
        ]);
    }
    print!("{}", t.render());

    heading("E6b — lifetime sweep: who pays housekeeping when data lives L?");
    let lifetimes = [
        SimDuration::from_mins(1),
        SimDuration::from_mins(10),
        SimDuration::from_hours(1),
        SimDuration::from_hours(6),
        SimDuration::from_days(1),
        SimDuration::from_days(7),
    ];
    let mut t = Table::new(&[
        "lifetime",
        "HBM3e J",
        "NAND SLC J",
        "MRM 10m J",
        "MRM 12h J",
        "MRM 7d J",
    ]);
    let gb = 1_000_000_000u64;
    for life in lifetimes {
        let f = |tech: &mrm_device::tech::Technology| {
            format!(
                "{:.3}",
                housekeeping_row(tech, gb, life, 2.5).housekeeping_j
            )
        };
        t.row(&[
            &life.to_string(),
            &f(&presets::hbm3e()),
            &f(&presets::nand_slc()),
            &f(&presets::mrm_minutes()),
            &f(&presets::mrm_hours()),
            &f(&presets::mrm_days()),
        ]);
    }
    print!("{}", t.render());
    println!("matched retention == zero housekeeping (the diagonal of zeros).");

    heading("E6c — measured: controllers under one simulated second of service");
    // DRAM controller: 1 GiB HBM-like device, sequential read traffic, one
    // second of wall time: count refresh energy and stolen bank time.
    let mut dram = DramController::hbm_like(DeviceGeometry::hbm_like(GIB));
    let mut now = SimTime::ZERO;
    while now < SimTime::from_secs(1) {
        now = dram.read(now, (now.as_nanos() * 7919) % (GIB - 8 * MIB), 8 * MIB);
    }
    dram.catch_up_refresh(SimTime::from_secs(1));
    let ds = dram.stats();
    println!(
        "DRAM ctrl:  {} refreshes, {:.4} J refresh energy, {:.3}% of bank-time stolen",
        ds.refreshes,
        ds.refresh_energy_j,
        dram.refresh_time_fraction(SimDuration::from_secs(1)) * 100.0
    );

    // FTL: churn to steady state, report write amplification.
    let mut ftl = Ftl::new(FtlConfig::small());
    let lp = ftl.config().logical_pages();
    let mut rng = mrm_sim::rng::SimRng::seed_from(7);
    for i in 0..lp {
        ftl.write(i).unwrap();
    }
    for _ in 0..lp * 2 {
        ftl.write(rng.gen_range_u64(lp)).unwrap();
    }
    let fs = ftl.stats();
    println!(
        "Flash FTL:  WA = {:.2} ({} host writes, {} GC moves, {} erases) — every host byte costs {:.2}x write energy",
        fs.write_amplification(),
        fs.host_writes,
        fs.gc_moves,
        fs.erases,
        fs.write_amplification()
    );

    // MRM block controller: same logical append volume, zero housekeeping.
    let mut tech = presets::mrm_hours();
    tech.capacity_bytes = GIB;
    let mut mrm = MrmBlockController::new(MemoryDevice::new(tech), 16 * MIB);
    let mut appended = 0u64;
    let mut z = mrm.open_zone().unwrap();
    while appended < 512 * MIB {
        if mrm
            .append(SimTime::ZERO, z, 4 * MIB, SimDuration::from_hours(12))
            .is_err()
        {
            z = mrm.open_zone_least_worn().unwrap();
            continue;
        }
        appended += 4 * MIB;
    }
    let e = mrm.energy();
    println!(
        "MRM block:  {:.4} J demand writes, {:.4} J housekeeping (none — retention matches lifetime)",
        e.write_j, e.housekeeping_j
    );
    assert!(e.housekeeping_j.abs() < f64::EPSILON);

    save_json("e6_housekeeping", &rows);
}
