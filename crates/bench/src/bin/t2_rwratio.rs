//! **T2** (§2.2) — read:write ratio of decode traffic vs. batch size.
//!
//! "read:write ratios of over 1000:1"; batching amortizes only the weight
//! read and "do\[es\] not fundamentally change the heavily read-dominated
//! nature of the workload."

use mrm_analysis::report::Table;
use mrm_analysis::rwratio::{paper_rw_ratio, rw_ratio_sweep};
use mrm_bench::{heading, save_json};
use mrm_sim::units::format_bytes;
use mrm_workload::model::{ModelConfig, Quantization};

fn main() {
    heading("T2 — Llama2-70B fp16, 2k contexts: read:write per decoded token");
    let rows = paper_rw_ratio();
    let mut t = Table::new(&["batch", "reads/token", "writes/token", "read:write"]);
    for r in &rows {
        t.row(&[
            &r.batch.to_string(),
            &format_bytes(r.reads_per_token),
            &format_bytes(r.writes_per_token),
            &format!("{:.0}:1", r.ratio),
        ]);
    }
    print!("{}", t.render());
    println!(
        "unbatched ratio {:.0}:1 (> 1000:1, §2.2); batch-128 still {:.0}:1",
        rows[0].ratio,
        rows.last().unwrap().ratio
    );

    heading("T2b — context-length sensitivity (batch 32)");
    let model = ModelConfig::llama2_70b();
    let mut t = Table::new(&["context", "read:write"]);
    for ctx in [512u32, 1024, 2048, 4096] {
        let sweep = rw_ratio_sweep(&model, Quantization::Fp16, ctx);
        let b32 = sweep.iter().find(|r| r.batch == 32).unwrap();
        t.row(&[&ctx.to_string(), &format!("{:.0}:1", b32.ratio)]);
    }
    print!("{}", t.render());

    heading("T2c — model sensitivity (batch 1, 2k contexts)");
    let mut t = Table::new(&["model", "read:write"]);
    for m in ModelConfig::zoo() {
        let sweep = rw_ratio_sweep(&m, Quantization::Fp16, 2048);
        t.row(&[&m.name, &format!("{:.0}:1", sweep[0].ratio)]);
    }
    print!("{}", t.render());

    save_json("t2_rwratio", &rows);
}
