//! **E7** (§4) — Dynamically Configurable Memory: per-write programmable
//! retention vs. fixed worst-case provisioning.
//!
//! "The memory controller would support writing at different durations and
//! energies, allowing retention time to be programmed at runtime,
//! effectively right provisioning the MRM to the workload."
//!
//! The experiment writes a realistic KV-lifetime mix (Splitwise output
//! lengths → expected context lifetimes) through (a) a DCM controller that
//! quantizes each hint onto the retention ladder and (b) a fixed controller
//! pinned at the longest class, then compares write energy, endurance
//! consumption, and the class distribution.
//!
//! With `--telemetry <path>` the DCM write stream also records a JSONL
//! series (per-class write/byte counters, reconfiguration events, running
//! write energy) on a synthetic clock of one write per millisecond; the
//! device writes themselves are unaffected.

use mrm_analysis::report::Table;
use mrm_bench::{heading, note, save_json, save_telemetry, warn_unsupported_obs, OutputPaths};
use mrm_controller::dcm::{DcmController, RetentionClass};
use mrm_device::device::MemoryDevice;
use mrm_device::tech::presets;
use mrm_sim::rng::SimRng;
use mrm_sim::time::{SimDuration, SimTime};
use mrm_sim::units::{GIB, MIB};
use mrm_sweep::{threads_from_args, Grid, Sweep};
use mrm_telemetry::{export, SimTelemetry, TelemetrySink};
use mrm_tiering::lifetime::LifetimeEstimator;
use mrm_workload::traces::{RequestSampler, TraceKind};
use serde::Value;

/// A lifetime mix reflecting the §4 service diversity: "some use cases
/// have tight latency SLAs ..., some are throughput hungry ..., others are
/// background best-effort jobs". Transient speculative state lives
/// seconds; interactive contexts live the decode tail plus a follow-up
/// window; shared prefix caches live hours to days.
fn lifetime_mix(n: usize, seed: u64) -> Vec<SimDuration> {
    let mut rng = SimRng::seed_from(seed);
    let est = LifetimeEstimator::default_serving();
    let conv = RequestSampler::new(TraceKind::Conversation, 4096);
    let code = RequestSampler::new(TraceKind::Coding, 4096);
    (0..n)
        .map(|i| match i % 10 {
            // 20%: transient speculative/draft state (seconds).
            0 | 1 => SimDuration::from_secs(5 + rng.gen_range_u64(20)),
            // 20%: shared prefix caches (hours to days).
            2 | 3 => SimDuration::from_hours(4 + rng.gen_range_u64(44)),
            // 60%: interactive contexts (decode tail + follow-up window).
            _ => {
                let (_, output) = if i % 10 < 8 {
                    conv.sample(&mut rng)
                } else {
                    code.sample(&mut rng)
                };
                est.kv_lifetime(output)
            }
        })
        .collect()
}

fn main() {
    let lifetimes = lifetime_mix(2000, 42);
    let write_bytes = MIB;

    let mk = || {
        let mut tech = presets::mrm_days();
        tech.capacity_bytes = 4 * GIB;
        DcmController::new(MemoryDevice::new(tech), 1.25)
    };

    heading("E7 — DCM vs. fixed provisioning over 2000 KV-stream writes (1 MiB each)");
    let mut dcm = mk();
    let mut fixed_7d = mk();
    let mut fixed_12h = mk();
    let cap = 4 * GIB;
    // Telemetry rides a synthetic export clock (one write per simulated
    // millisecond, snapshots every 100 ms); the device writes themselves
    // stay at SimTime::ZERO, so energy and wear results are unchanged.
    let out = OutputPaths::from_args();
    warn_unsupported_obs("e7_dcm", &out);
    let telemetry_path = out.telemetry;
    let mut tele = telemetry_path
        .as_ref()
        .map(|_| SimTelemetry::new(SimDuration::from_millis(100)));
    let mut last_reconfigs = 0u64;
    for (i, &lt) in lifetimes.iter().enumerate() {
        let addr = (i as u64 * write_bytes) % (cap - write_bytes);
        dcm.write(SimTime::ZERO, addr, write_bytes, lt).unwrap();
        fixed_7d
            .write_fixed(SimTime::ZERO, addr, write_bytes, RetentionClass::Days7)
            .unwrap();
        fixed_12h
            .write_fixed(SimTime::ZERO, addr, write_bytes, RetentionClass::Hours12)
            .unwrap();
        if let Some(tele) = tele.as_mut() {
            let now = SimTime::ZERO + SimDuration::from_millis(i as u64 + 1);
            let reconfigs = dcm.reconfigs();
            if reconfigs > last_reconfigs {
                tele.event(now, "dcm_reconfig", reconfigs as f64);
                last_reconfigs = reconfigs;
            }
            while let Some(at) = tele.snapshot_due(now) {
                dcm.emit_telemetry(tele);
                tele.gauge("dcm_write_j", dcm.energy().write_j);
                tele.snapshot(at);
            }
        }
    }
    if let Some(tele) = tele.as_ref() {
        if let Some(path) = telemetry_path.as_ref() {
            save_telemetry(
                path,
                &export::jsonl_tagged(
                    tele.snapshots(),
                    &[
                        ("experiment", Value::Str("e7".to_string())),
                        ("point", Value::U64(0)),
                    ],
                ),
            );
        }
    }

    let mut t = Table::new(&["controller", "write energy J", "vs fixed-7d", "max wear"]);
    let base = fixed_7d.energy().write_j;
    for (name, c) in [
        ("DCM (lifetime hints)", &dcm),
        ("fixed 12h", &fixed_12h),
        ("fixed 7d (worst case)", &fixed_7d),
    ] {
        let e = c.energy().write_j;
        t.row(&[
            name,
            &format!("{e:.4}"),
            &format!("{:+.1}%", (e / base - 1.0) * 100.0),
            &format!("{:.2e}", c.device().max_wear_fraction()),
        ]);
    }
    print!("{}", t.render());

    heading("E7b — DCM retention-class distribution (right-provisioning in action)");
    let mut t = Table::new(&["class", "writes", "bytes (MiB)"]);
    for (class, stats) in dcm.class_stats() {
        t.row(&[
            class.label(),
            &stats.writes.to_string(),
            &format!("{}", stats.bytes / MIB),
        ]);
    }
    print!("{}", t.render());

    let saved = 1.0 - dcm.energy().write_j / fixed_7d.energy().write_j;
    note(&format!(
        "DCM write-energy saving vs worst-case provisioning: {:.1}%",
        saved * 100.0
    ));
    assert!(saved > 0.03, "DCM must save energy");

    let threads = threads_from_args();
    heading(&format!(
        "E7c — margin sensitivity (hint safety margin vs. energy & expiry risk, \
         {threads} sweep threads)"
    ));
    let mut t = Table::new(&[
        "margin",
        "write energy J",
        "classes used (30s/10m/1h/12h/7d)",
    ]);
    // Each margin's controller replays the same lifetime mix independently,
    // so the sweep engine fans the grid across threads; rows come back in
    // margin order.
    let margins = [1.0, 1.25, 1.5, 2.0, 4.0];
    let margin_rows = Sweep::new(Grid::axis(margins), |&margin, _rng| {
        let mut tech = presets::mrm_days();
        tech.capacity_bytes = 4 * GIB;
        let mut c = DcmController::new(MemoryDevice::new(tech), margin);
        for (i, &lt) in lifetimes.iter().enumerate() {
            let addr = (i as u64 * write_bytes) % (cap - write_bytes);
            c.write(SimTime::ZERO, addr, write_bytes, lt).unwrap();
        }
        let dist: Vec<String> = c
            .class_stats()
            .iter()
            .map(|(_, s)| s.writes.to_string())
            .collect();
        (c.energy().write_j, dist)
    })
    .run_parallel(threads);
    for (margin, (write_j, dist)) in margins.iter().zip(&margin_rows) {
        t.row(&[
            &format!("{margin:.2}"),
            &format!("{write_j:.4}"),
            &dist.join("/"),
        ]);
    }
    print!("{}", t.render());
    note("larger margins push writes into longer classes: more energy, less expiry risk —");
    note("the §4 control-plane knob (\"the control plane ... is best-placed to dynamically decide\").");

    save_json(
        "e7_dcm",
        &(saved, dcm.class_stats().map(|(c, s)| (c.label(), s.writes))),
    );
}
