//! **E8** (§4) — retention-aware error correction.
//!
//! "A large block-based MRM interface means that there is scope for
//! considering error correction techniques that operate on larger code
//! words and have less overhead \[8\]." Plus the scrub-scheduling question:
//! how close to the retention target can data age before the decoder can
//! no longer hold the reliability target?

use mrm_analysis::report::Table;
use mrm_bench::{heading, note, save_json, save_telemetry, warn_unsupported_obs, OutputPaths};
use mrm_device::cell::RetentionTradeoff;
use mrm_device::tech::presets;
use mrm_ecc::analysis::{iso_reliability_overhead, max_safe_age_fraction};
use mrm_ecc::bch::Bch;
use mrm_ecc::hamming::Hamming;
use mrm_sim::rng::SimRng;
use mrm_sim::time::{SimDuration, SimTime};
use mrm_telemetry::{export, SimTelemetry, TelemetrySink};
use serde::Value;

/// Stable gauge name for each E8d code point (telemetry names must be
/// `&'static str`).
fn scrub_ok_gauge(n_bits: u64, t: u64) -> &'static str {
    match (n_bits, t) {
        (72, 1) => "scrub_ok_n72_t1",
        (552, 4) => "scrub_ok_n552_t4",
        (32872, 8) => "scrub_ok_n32872_t8",
        (32872, 16) => "scrub_ok_n32872_t16",
        (32872, 32) => "scrub_ok_n32872_t32",
        _ => "scrub_ok_other",
    }
}

fn main() {
    heading("E8a — the Dolinar curve: overhead vs. codeword size at iso-reliability");
    println!("(RBER 1e-4, target codeword failure 1e-12, BCH-style m*t parity)\n");
    let rows = iso_reliability_overhead(1e-4, 1e-12, &[64, 256, 1024, 4096, 16384, 65536]);
    let mut t = Table::new(&["data bits", "codeword bits", "t", "parity bits", "overhead"]);
    for r in &rows {
        t.row(&[
            &r.data_bits.to_string(),
            &r.codeword_bits.to_string(),
            &r.t.to_string(),
            &r.parity_bits.to_string(),
            &format!("{:.2}%", r.overhead * 100.0),
        ]);
    }
    print!("{}", t.render());
    println!(
        "overhead falls {:.1}x from 64-bit words to 64-kbit blocks — larger code words, less overhead (§4).",
        rows[0].overhead / rows.last().unwrap().overhead
    );

    heading("E8b — real codecs: SECDED baseline vs. large-block BCH");
    let mut t = Table::new(&["code", "n", "k", "t", "overhead"]);
    let h = Hamming::secded_72_64();
    t.row(&[
        "Hamming SECDED (DRAM-style)",
        &h.codeword_len().to_string(),
        &h.data_len().to_string(),
        "1",
        &format!("{:.2}%", h.overhead() * 100.0),
    ]);
    for (m, tt, data) in [(10u32, 4usize, 512usize), (13, 8, 512 * 8)] {
        let code = Bch::with_data_len(m, tt, data);
        t.row(&[
            &format!("BCH over GF(2^{m})"),
            &code.n().to_string(),
            &code.k().to_string(),
            &tt.to_string(),
            &format!("{:.2}%", code.overhead() * 100.0),
        ]);
    }
    print!("{}", t.render());
    println!("a 4 KiB MRM block is protected by 8 such 512-byte codewords, bit-interleaved");
    println!("(mrm_ecc::interleave) so a physical burst spreads across all eight decoders.");

    heading("E8c — codec verification under injected errors");
    let code = Bch::with_data_len(13, 8, 512 * 8);
    let mut rng = SimRng::seed_from(99);
    let data: Vec<u8> = (0..code.k()).map(|_| (rng.next_u64() & 1) as u8).collect();
    let mut corrected_all = true;
    for trial in 0..20 {
        let mut cw = code.encode(&data);
        let errs = (trial % 8) + 1;
        for _ in 0..errs {
            let p = rng.gen_index(cw.len());
            cw[p] ^= 1;
        }
        match code.decode(&cw) {
            Ok((out, _fixed)) => corrected_all &= out == data,
            Err(_) => corrected_all = false,
        }
    }
    println!(
        "BCH(t=8, 512 B data): 20 trials with 1..8 injected errors -> {}",
        if corrected_all {
            "all corrected"
        } else {
            "FAILURE"
        }
    );
    assert!(corrected_all);

    heading("E8d — scrub scheduling: max safe data age vs. ECC strength");
    println!("(MRM hours-class cell; age as fraction of the retention target)\n");
    let tech = presets::mrm_hours();
    let tradeoff: RetentionTradeoff = tech.tradeoff();
    let retention = SimDuration::from_hours(12);
    let rber_at = |frac: f64| tradeoff.rber_at_age(retention, retention.mul_f64(frac), 1e-9);
    let codes = [
        (72u64, 1u64),
        (552, 4),
        (32872, 8),
        (32872, 16),
        (32872, 32),
    ];
    let mut t = Table::new(&["code", "t", "max safe age (x retention)", "scrub interval"]);
    let mut safe_fracs = Vec::with_capacity(codes.len());
    for (n_bits, tt) in codes {
        let frac = max_safe_age_fraction(n_bits, tt, 1e-12, rber_at);
        safe_fracs.push(frac);
        let interval = retention.mul_f64(frac);
        t.row(&[
            &format!("n={n_bits}"),
            &tt.to_string(),
            &format!("{frac:.2}"),
            &interval.to_string(),
        ]);
    }
    print!("{}", t.render());
    note("stronger codes let data age closer to (or past) the nominal retention target,");
    note("stretching the software scrub interval — ECC strength and retention class are");
    note("one joint design knob (§4 \"retention-aware error correction\").");

    // RBER-vs-data-age time series: the decoder's view of a 12 h retention
    // class as data ages in 15-minute steps, with a per-code "still within
    // its scrub budget" flag. Pure function of age — no RNG.
    let out = OutputPaths::from_args();
    warn_unsupported_obs("e8_ecc", &out);
    if let Some(path) = out.telemetry {
        let step = SimDuration::from_secs(900);
        let mut tele = SimTelemetry::new(step);
        let steps = 48u64; // 48 * 15 min = the 12 h retention target
        for i in 1..=steps {
            let now = SimTime::ZERO + step.saturating_mul(i);
            let frac = i as f64 / steps as f64;
            tele.gauge("rber", rber_at(frac));
            for ((n_bits, tt), safe_frac) in codes.iter().zip(&safe_fracs) {
                let ok = frac <= *safe_frac;
                tele.gauge(scrub_ok_gauge(*n_bits, *tt), if ok { 1.0 } else { 0.0 });
            }
            while let Some(at) = tele.snapshot_due(now) {
                tele.snapshot(at);
            }
        }
        save_telemetry(
            &path,
            &export::jsonl_tagged(
                tele.snapshots(),
                &[
                    ("experiment", Value::Str("e8".to_string())),
                    ("point", Value::U64(0)),
                ],
            ),
        );
    }

    let records: Vec<(u64, u64, u64, u64, f64)> = rows
        .iter()
        .map(|r| (r.data_bits, r.codeword_bits, r.t, r.parity_bits, r.overhead))
        .collect();
    save_json("e8_ecc", &records);
}
