//! **E11** (§2.2 / \[54\]) — prefix caching: KV reuse across requests.
//!
//! "Reuse of the KV cache across requests \[54\] and KV cache compression
//! \[27\] are also used, but each has its limitations and even together they
//! do not fundamentally change the heavily read-dominated nature of the
//! workload." This experiment measures both halves: how much prefill/KV
//! write traffic system-prompt sharing removes, and that the read:write
//! ratio stays extreme either way. It also translates the write savings
//! into the Figure-1 endurance currency.

use mrm_analysis::report::Table;
use mrm_bench::{heading, save_json};
use mrm_sim::dist::Zipf;
use mrm_sim::rng::SimRng;
use mrm_sim::units::format_bytes;
use mrm_tiering::prefix::PrefixCache;
use mrm_workload::model::{ModelConfig, Quantization};
use mrm_workload::traces::{RequestSampler, TraceKind};

fn main() {
    let model = ModelConfig::llama2_70b();
    let kvpt = model.kv_bytes_per_token(Quantization::Fp16);
    let chunk_tokens = 64u32;
    let requests = 20_000usize;

    heading("E11 — prefix caching over a shared-system-prompt population");
    println!("{requests} requests; 20 system prompts (Zipf-1.1 popularity, 512 tokens each);");
    println!("per-request user turns sampled from the Splitwise conversation trace.\n");

    let mut rng = SimRng::seed_from(2025);
    let sampler = RequestSampler::new(TraceKind::Conversation, 4096);
    let popularity = Zipf::new(20, 1.1);
    let mut pc = PrefixCache::new(chunk_tokens);

    let mut baseline_tokens = 0u64; // what prefill writes without the cache
    let mut live_paths: Vec<Vec<mrm_tiering::prefix::PrefixNodeId>> = Vec::new();
    for i in 0..requests {
        let system = popularity.sample_rank(&mut rng) as u64;
        let (user_tokens, _) = sampler.sample(&mut rng);
        let system_tokens = 512u32;
        let total = system_tokens + user_tokens;
        // Chunk hashes: the system prompt contributes 8 shared chunks, the
        // user turn unique ones.
        let mut chunks: Vec<u64> = (0..8).map(|c| system.wrapping_mul(1000) + c).collect();
        let user_chunks = user_tokens.div_ceil(chunk_tokens);
        chunks.extend((0..u64::from(user_chunks)).map(|c| 0x55AA_0000_0000 + i as u64 * 1000 + c));
        let ins = pc.insert(&chunks, total);
        baseline_tokens += u64::from(total);
        live_paths.push(ins.path);
        // Contexts retire after a while: release in FIFO waves.
        if live_paths.len() > 512 {
            let old = live_paths.remove(0);
            pc.release(&old);
        }
        if i % 4096 == 4095 {
            pc.evict_unreferenced();
        }
    }

    let (hit_tokens, miss_tokens) = pc.totals();
    let mut t = Table::new(&["metric", "without prefix cache", "with prefix cache"]);
    t.row(&[
        "prefill tokens written",
        &baseline_tokens.to_string(),
        &miss_tokens.to_string(),
    ]);
    t.row(&[
        "KV bytes written",
        &format_bytes(baseline_tokens * kvpt),
        &format_bytes(miss_tokens * kvpt),
    ]);
    t.row(&[
        "token hit rate",
        "0%",
        &format!("{:.1}%", pc.hit_rate() * 100.0),
    ]);
    print!("{}", t.render());

    let savings = 1.0 - miss_tokens as f64 / baseline_tokens as f64;
    println!("\nprefill/KV-write savings: {:.1}%", savings * 100.0);
    println!("Figure-1 translation: the KV endurance requirement scales with bytes written,");
    println!(
        "so prefix sharing relaxes it by the same {:.1}% — helpful, but nowhere near the",
        savings * 100.0
    );
    println!("orders-of-magnitude gap in Figure 1 (the §2.2 point: reuse \"does not");
    println!("fundamentally change\" the workload).");

    heading("Shape checks");
    assert!(hit_tokens > 0, "shared prefixes must hit");
    assert!(
        (0.10..0.80).contains(&savings),
        "512-token shared prefixes over ~1500-token prompts: expect 20-50% savings, got {savings}"
    );
    // Reads are untouched by prefix caching (every decode step still reads
    // the full context), so the read:write ratio only grows.
    println!(
        "PASS savings material ({:.1}%) but not transformative",
        savings * 100.0
    );
    println!("PASS decode reads untouched: read-dominance unchanged or stronger");

    save_json("e11_prefix", &(baseline_tokens, miss_tokens, pc.hit_rate()));
}
