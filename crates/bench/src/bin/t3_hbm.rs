//! **T3** (§2.1) — the curse of HBM, quantified: memory's share of
//! accelerator power, refresh burn at idle, stacking yield and thermals,
//! and the HBM4 density outlook.

use mrm_analysis::energy::{accelerator_energy, b200_energy};
use mrm_analysis::report::Table;
use mrm_bench::{heading, save_json};
use mrm_device::hbm::{layer_sweep, HbmStackModel};
use mrm_device::tech::presets;
use mrm_sim::units::format_bytes;

fn main() {
    heading("T3a — memory share of accelerator power (B200-class, 8x HBM3e, 1000 W board)");
    let mut t = Table::new(&[
        "bw utilization",
        "IO W",
        "refresh W",
        "idle W",
        "memory share",
    ]);
    for util in [0.0, 0.25, 0.5, 0.8, 1.0] {
        let e = accelerator_energy(&presets::hbm3e(), 8, util, 1000.0);
        t.row(&[
            &format!("{:.0}%", util * 100.0),
            &format!("{:.1}", e.memory_io_w),
            &format!("{:.1}", e.refresh_w),
            &format!("{:.1}", e.idle_w),
            &format!("{:.1}%", e.memory_fraction * 100.0),
        ]);
    }
    print!("{}", t.render());
    let nominal = b200_energy();
    println!(
        "at the memory-bound operating point: {:.0}% — \"approximately a third of the energy\" (§2.1)",
        nominal.memory_fraction * 100.0
    );
    println!(
        "refresh burns {:.1} W per package even when idle (§2.1 \"consuming power even when the memory is idle\")",
        nominal.refresh_w
    );

    heading("T3b — 3D stacking: capacity vs. yield vs. thermals (HBM3e-class process)");
    let base = HbmStackModel::hbm3e();
    let rows = layer_sweep(&base, 16);
    let mut t = Table::new(&[
        "layers",
        "capacity",
        "stack yield",
        "cost multiplier",
        "refresh W",
        "thermal resistance",
    ]);
    for (layers, cap, yld, cost, refresh, therm) in &rows {
        t.row(&[
            &layers.to_string(),
            &format_bytes(*cap),
            &format!("{:.1}%", yld * 100.0),
            &format!("{cost:.2}x"),
            &format!("{refresh:.2}"),
            &format!("{therm:.2}"),
        ]);
    }
    print!("{}", t.render());
    println!(
        "yield decays geometrically with stack height (§2.1 \"significantly reduces the yield\");"
    );
    println!("the industry does not expect stacking beyond 16 layers [50].");

    heading("T3c — HBM4 outlook: +30% per layer (§2.1 / [50])");
    let h3 = presets::hbm3e();
    let h4 = presets::hbm4();
    let mut t = Table::new(&[
        "generation",
        "layers",
        "capacity/stack",
        "GB/layer",
        "read bw",
    ]);
    for h in [&h3, &h4] {
        t.row(&[
            &h.name,
            &h.layers.to_string(),
            &format_bytes(h.capacity_bytes),
            &format!("{:.2}", h.capacity_bytes as f64 / f64::from(h.layers) / 1e9),
            &format!("{:.1} TB/s", h.read_bw / 1e12),
        ]);
    }
    print!("{}", t.render());
    let gain = (h4.capacity_bytes as f64 / f64::from(h4.layers))
        / (h3.capacity_bytes as f64 / f64::from(h3.layers));
    println!("per-layer capacity gain: {:.0}% (paper: \"only expected to increase capacity per layer by 30%\")", (gain - 1.0) * 100.0);

    save_json("t3_hbm", &(nominal, rows));
}
