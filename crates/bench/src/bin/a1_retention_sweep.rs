//! **A1** (ablation, §1/§3) — retention is a continuum: sweep the MRM
//! retention target from seconds to ten years and watch every metric the
//! paper trades move.
//!
//! Locates the paper's sweet spot: "As most of the inference data does not
//! need to be persisted, retention can be relaxed to days or hours."

use mrm_analysis::report::Table;
use mrm_bench::{heading, save_json};
use mrm_device::tech::presets;
use mrm_sim::time::SimDuration;
use mrm_sweep::{threads_from_args, Grid, Sweep};
use serde::Serialize;

#[derive(Serialize)]
struct SweepRow {
    retention: String,
    write_energy_pj_bit: f64,
    write_latency_ns: f64,
    endurance: f64,
    scrubs_for_12h_data: u64,
    survives_kv_5y: bool,
}

fn main() {
    let threads = threads_from_args();
    heading(&format!(
        "A1 — MRM design-point sweep: retention target vs. everything it buys \
         ({threads} sweep threads)"
    ));
    let targets = [
        ("1s", SimDuration::from_secs(1)),
        ("30s", SimDuration::from_secs(30)),
        ("10m", SimDuration::from_mins(10)),
        ("1h", SimDuration::from_hours(1)),
        ("12h", SimDuration::from_hours(12)),
        ("7d", SimDuration::from_days(7)),
        ("3mo", SimDuration::from_days(90)),
        ("1y", SimDuration::from_years(1)),
        ("10y (SCM)", SimDuration::from_years(10)),
    ];

    // KV requirement per cell over 5 years on a 384 GB MRM system: from the
    // Figure-1 math, ≈ 1.1e6; with 10x headroom 1.1e7.
    let kv_requirement_5y = 1.2e7;
    let data_lifetime = SimDuration::from_hours(12); // typical KV + cache window

    // Sweep the RRAM-potential envelope: its endurance-retention power law
    // is the best documented (Nail et al. [34]) and is not already pinned
    // at the family ceiling, so the endurance column moves visibly.
    let envelope = presets::rram_potential();
    let tradeoff = envelope.tradeoff();

    // Each retention target is evaluated independently on the trade-off
    // envelope, so the sweep engine fans the 9 design points across
    // threads; rows return in target order.
    let rows = Sweep::new(Grid::axis(targets), |&(label, ret), _rng| {
        let p = tradeoff.at(ret);
        let scrubs = (data_lifetime.as_nanos().div_ceil(ret.as_nanos().max(1))).saturating_sub(1);
        SweepRow {
            retention: label.to_string(),
            write_energy_pj_bit: p.write_energy_pj_bit,
            write_latency_ns: p.write_latency_ns,
            endurance: p.endurance,
            scrubs_for_12h_data: scrubs,
            survives_kv_5y: p.endurance >= kv_requirement_5y,
        }
    })
    .run_parallel(threads);

    let mut t = Table::new(&[
        "retention",
        "write pJ/bit",
        "write ns",
        "endurance",
        "scrubs for 12h data",
        "5y KV endurance",
    ]);
    for r in &rows {
        t.row(&[
            &r.retention,
            &format!("{:.2}", r.write_energy_pj_bit),
            &format!("{:.1}", r.write_latency_ns),
            &format!("{:.1e}", r.endurance),
            &r.scrubs_for_12h_data.to_string(),
            if r.survives_kv_5y { "ok" } else { "NO" },
        ]);
    }
    print!("{}", t.render());

    heading("Reading the sweep");
    println!("- retention below ~1h: cheapest writes, but 12h-lived data needs repeated scrubs");
    println!("  (housekeeping returns through the back door).");
    println!("- retention at 10y (the SCM mistake): every write pays the full thermal barrier —");
    println!("  max energy, max latency, minimum endurance.");
    println!("- the hours-to-days band needs zero scrubs for inference-lifetime data while");
    println!("  recovering most of the write energy and all of the endurance: the paper's");
    println!("  \"retention can be relaxed to days or hours\" sweet spot.");

    // Machine checks of the shape.
    let e = |label: &str| {
        rows.iter()
            .find(|r| r.retention.starts_with(label))
            .unwrap()
    };
    assert!(e("12h").write_energy_pj_bit < e("10y").write_energy_pj_bit);
    assert!(e("12h").scrubs_for_12h_data == 0);
    assert!(e("10m").scrubs_for_12h_data > 0);
    assert!(e("12h").endurance >= e("10y").endurance);
    println!("\nPASS all ablation shape checks");

    save_json("a1_retention_sweep", &rows);
}
