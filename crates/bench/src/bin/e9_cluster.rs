//! **E9** (§4) — retention-aware placement & scheduling, end to end.
//!
//! The cluster simulation: Splitwise-style traffic against four memory
//! systems (HBM-only, HBM+LPDDR, HBM+MRM fixed-retention, HBM+MRM with
//! DCM), with the control plane tracking KV expiration deadlines and
//! deciding refresh / migrate / drop. Reports tokens/s, J/token,
//! housekeeping energy, cost efficiency, cache behaviour and latency.
//!
//! With `--telemetry <path>` each grid point also records a sim-time
//! JSONL series (5 s snapshots of counters, occupancy and latency
//! percentiles), concatenated in grid order — byte-identical for any
//! `--threads` value. `--trace <path>` exports the main grid's causal
//! spans as one Perfetto-loadable Chrome trace (also thread-invariant),
//! and `--profile <path>` the per-point hot-handler reports + folded
//! stacks (wall-clock, machine-dependent by design).

use mrm_analysis::report::Table;
use mrm_bench::{check, heading, save_artifact, save_json, save_telemetry, OutputPaths};
use mrm_obs::{perfetto, profile, slo, Obs};
use mrm_sim::time::SimDuration;
use mrm_sim::units::format_bytes;
use mrm_sweep::{threads_from_args, Grid, Sweep};
use mrm_telemetry::{export, SimTelemetry, Snapshot};
use mrm_tiering::cluster::{
    run_cluster, run_cluster_observed, run_cluster_with_telemetry, ClusterConfig, ClusterReport,
};
use mrm_tiering::placement::PlacementPolicy;
use serde::Value;

/// Sim-time spacing of telemetry snapshots for every cluster run.
const SNAPSHOT_EVERY: SimDuration = SimDuration::from_secs(5);

fn config(policy: PlacementPolicy, accelerators: u32, arrivals: f64, secs: u64) -> ClusterConfig {
    let mut cfg = ClusterConfig::llama70b(policy, accelerators, arrivals);
    cfg.duration = SimDuration::from_secs(secs);
    cfg
}

/// Fans a grid of cluster configurations across the worker pool; the
/// reports (and, when `collect` is set, each point's telemetry snapshots;
/// when `observe` is set, its obs bundle) come back in grid order
/// regardless of thread count.
fn run_grid(
    grid: Grid<ClusterConfig>,
    threads: usize,
    collect: bool,
    observe: bool,
) -> Vec<(ClusterReport, Vec<Snapshot>, Option<Box<Obs>>)> {
    Sweep::new(grid, move |cfg: &ClusterConfig, _rng| {
        if observe {
            let mut tele = SimTelemetry::new(SNAPSHOT_EVERY);
            let mut obs = Box::new(Obs::new(cfg.seed));
            let (report, _audit) = run_cluster_observed(cfg.clone(), &mut tele, &mut obs);
            (report, tele.into_snapshots(), Some(obs))
        } else if collect {
            let mut tele = SimTelemetry::new(SNAPSHOT_EVERY);
            let report = run_cluster_with_telemetry(cfg.clone(), &mut tele);
            (report, tele.into_snapshots(), None)
        } else {
            (run_cluster(cfg.clone()), Vec::new(), None)
        }
    })
    .run_parallel(threads)
}

/// Tags one grid point's snapshots and appends the JSONL lines.
fn append_series(
    out: &mut String,
    experiment: &str,
    point: usize,
    policy: &str,
    snaps: &[Snapshot],
) {
    out.push_str(&export::jsonl_tagged(
        snaps,
        &[
            ("experiment", Value::Str(experiment.to_string())),
            ("point", Value::U64(point as u64)),
            ("policy", Value::Str(policy.to_string())),
        ],
    ));
}

fn fmt_pct(p: Option<f64>) -> String {
    p.map_or_else(|| "-".to_string(), |v| format!("{v:.0}"))
}

fn print_reports(reports: &[ClusterReport]) {
    let mut t = Table::new(&[
        "system",
        "tok/s",
        "J/token",
        "housekeeping J",
        "cost",
        "tok/s/kcost",
        "KV capacity",
        "p50 ms",
        "p99 ms",
        "hits",
        "recomputes",
        "scrubs",
    ]);
    for r in reports {
        t.row(&[
            &r.policy,
            &format!("{:.0}", r.tokens_per_s),
            &format!("{:.4}", r.j_per_token),
            &format!("{:.1}", r.housekeeping_j),
            &format!("{:.0}", r.cost_units),
            &format!("{:.1}", r.tokens_per_s_per_kcost),
            &format_bytes(r.kv_capacity_bytes),
            &fmt_pct(r.p50_latency_ms),
            &fmt_pct(r.p99_latency_ms),
            &r.cache_hits.to_string(),
            &r.recomputes.to_string(),
            &r.scrubs.to_string(),
        ]);
    }
    print!("{}", t.render());
}

fn main() {
    let accelerators = 4;
    let secs = 120;
    let threads = threads_from_args();
    let out = OutputPaths::from_args();
    let observe = out.trace.is_some() || out.profile.is_some();
    // The main grid always snapshots telemetry: the SLO shape checks below
    // read it, and the sink is observe-only (byte-identical report).
    let mut jsonl = String::new();

    heading(&format!(
        "E9 — cluster simulation: {accelerators} accelerators, Llama2-70B fp16, 120 s, 16 req/s \
         ({threads} sweep threads)"
    ));
    let grid = Grid::axis(PlacementPolicy::all()).map(|p| config(p, accelerators, 16.0, secs));
    let results = run_grid(grid, threads, true, observe);
    let reports: Vec<ClusterReport> = results.iter().map(|(r, _, _)| r.clone()).collect();
    for (i, (r, snaps, _)) in results.iter().enumerate() {
        append_series(&mut jsonl, "e9", i, &r.policy, snaps);
    }
    print_reports(&reports);

    let hbm = &reports[0];
    let lpddr = &reports[1];
    let mrm = &reports[2];
    let dcm = &reports[3];

    heading("Shape checks (§3/§4)");
    let checks = [
        (
            format!(
                "MRM matches/beats HBM throughput ({:.0} vs {:.0} tok/s)",
                mrm.tokens_per_s, hbm.tokens_per_s
            ),
            mrm.tokens_per_s >= hbm.tokens_per_s * 0.95,
        ),
        (
            format!(
                "MRM cuts J/token ({:.4} vs {:.4})",
                mrm.j_per_token, hbm.j_per_token
            ),
            mrm.j_per_token < hbm.j_per_token,
        ),
        (
            format!(
                "LPDDR tier costs throughput ({:.0} vs {:.0} tok/s)",
                lpddr.tokens_per_s, hbm.tokens_per_s
            ),
            lpddr.tokens_per_s < hbm.tokens_per_s,
        ),
        (
            format!(
                "MRM housekeeping below DRAM refresh ({:.1} vs {:.1} J)",
                mrm.housekeeping_j, hbm.housekeeping_j
            ),
            mrm.housekeeping_j < hbm.housekeeping_j,
        ),
        (
            format!(
                "MRM KV capacity headroom > 2x HBM ({} vs {})",
                format_bytes(mrm.kv_capacity_bytes),
                format_bytes(hbm.kv_capacity_bytes)
            ),
            mrm.kv_capacity_bytes > 2 * hbm.kv_capacity_bytes,
        ),
        (
            format!(
                "DCM keeps throughput within 5% of fixed MRM ({:.0} vs {:.0})",
                dcm.tokens_per_s, mrm.tokens_per_s
            ),
            (dcm.tokens_per_s / mrm.tokens_per_s - 1.0).abs() < 0.05,
        ),
    ];
    let mut ok = true;
    for (desc, pass) in &checks {
        ok &= check(*pass, desc);
    }

    // SLO watchdog over every main-grid point's snapshot stream: the
    // occupancy and required-drop invariants must hold at every sampled
    // instant, not just in the end-of-run aggregates above.
    let slos = slo::serving_default(60_000.0, 50.0);
    for (i, (r, snaps, _)) in results.iter().enumerate() {
        let rep = slo::evaluate(&slos, snaps);
        ok &= check(
            rep.passed && rep.checks > 0,
            &format!(
                "SLOs hold for point {i} ({}): {} checks, {} breaches",
                r.policy,
                rep.checks,
                rep.breaches.len()
            ),
        );
    }

    heading("E9b — load sweep: tokens/s under increasing arrival rates");
    let rates = [4.0, 8.0, 16.0, 32.0];
    let n_policies = PlacementPolicy::all().len();
    // One 16-point grid (rate × policy) instead of nested loops: the whole
    // sweep fans out at once, and row-major grid order means chunks of 4
    // reports form the table rows.
    let load_grid = Grid::axis(rates)
        .cross(PlacementPolicy::all())
        .map(|(rate, p)| config(p, 2, rate, 60));
    let load_results = run_grid(load_grid, threads, out.telemetry.is_some(), false);
    for (i, (r, snaps, _)) in load_results.iter().enumerate() {
        append_series(&mut jsonl, "e9b", i, &r.policy, snaps);
    }
    let load_reports: Vec<ClusterReport> = load_results.into_iter().map(|(r, _, _)| r).collect();
    let mut t = Table::new(&["req/s", "HBM-only", "HBM+LPDDR", "HBM+MRM", "HBM+MRM(DCM)"]);
    for (rate, row) in rates.iter().zip(load_reports.chunks(n_policies)) {
        let cells: Vec<String> = row
            .iter()
            .map(|r| format!("{:.0}", r.tokens_per_s))
            .collect();
        t.row_owned(std::iter::once(format!("{rate:.0}")).chain(cells).collect());
    }
    print!("{}", t.render());

    heading("E9c — per-tier energy breakdown (16 req/s run)");
    let mut t = Table::new(&[
        "system",
        "tier",
        "read",
        "written",
        "demand J",
        "housekeeping J",
        "idle J",
    ]);
    for r in &reports {
        for tr in &r.tiers {
            t.row(&[
                &r.policy,
                &tr.tier,
                &format_bytes(tr.bytes_read),
                &format_bytes(tr.bytes_written),
                &format!("{:.1}", tr.energy.read_j + tr.energy.write_j),
                &format!("{:.1}", tr.energy.housekeeping_j),
                &format!("{:.1}", tr.energy.idle_j),
            ]);
        }
    }
    print!("{}", t.render());

    save_json("e9_cluster", &reports);
    if let Some(path) = &out.telemetry {
        save_telemetry(path, &jsonl);
    }
    if observe {
        let labelled: Vec<(String, &Obs)> = results
            .iter()
            .enumerate()
            .filter_map(|(i, (r, _, o))| o.as_deref().map(|o| (format!("e9:{i}:{}", r.policy), o)))
            .collect();
        if let Some(path) = &out.trace {
            let points: Vec<(String, &mrm_obs::CausalTracer)> = labelled
                .iter()
                .map(|(l, o)| (l.clone(), &o.tracer))
                .collect();
            save_artifact("trace", path, &perfetto::chrome_trace(&points));
        }
        if let Some(path) = &out.profile {
            let points: Vec<(String, &mrm_obs::Profiler)> = labelled
                .iter()
                .map(|(l, o)| (l.clone(), &o.profiler))
                .collect();
            save_artifact("profile", path, &profile::artifact(&points, 10));
        }
    }
    if !ok {
        std::process::exit(1);
    }
}
