//! **A4** (ablation, §3 / \[56\]) — crossbar array sizing: where MRM's
//! density comes from, and what bounds it.
//!
//! "RRAM and STT-MRAM cells ... can be organized into high-density,
//! transistor-less crossbar layouts \[56\]." The constraint side of that
//! sentence: sneak currents and IR drop cap the array size, and with it
//! how well the peripheral circuitry amortizes. This ablation sweeps array
//! sizes for a selector-equipped and a selector-less design.

use mrm_analysis::report::Table;
use mrm_bench::{heading, save_json};
use mrm_device::crossbar::CrossbarModel;

fn sweep_table(name: &str, m: &CrossbarModel) {
    heading(&format!("A4 — {name}"));
    let mut t = Table::new(&[
        "array (n x n)",
        "read margin",
        "sneak energy factor",
        "IR drop",
        "area efficiency",
        "feasible",
    ]);
    for (n, margin, sneak, ir, eff, feasible) in m.sweep(1 << 13) {
        t.row(&[
            &format!("{n}"),
            &format!("{margin:.1}"),
            &format!("{sneak:.3}"),
            &format!("{:.2}%", ir * 100.0),
            &format!("{:.1}%", eff * 100.0),
            if feasible { "yes" } else { "NO" },
        ]);
    }
    print!("{}", t.render());
    println!(
        "largest feasible array: {}x{} (area efficiency {:.1}%)\n",
        m.max_array_size(),
        m.max_array_size(),
        m.best_density() * 100.0
    );
}

fn main() {
    let with_selector = CrossbarModel::rram_with_selector();
    let selectorless = CrossbarModel::selectorless();

    sweep_table("RRAM with selector (nonlinearity 1e4)", &with_selector);
    sweep_table("selector-less RRAM (nonlinearity 50)", &selectorless);

    heading("Reading the ablation");
    println!("- with a good selector, kilobit-scale lines are feasible and the periphery");
    println!("  amortizes to >95% cell area — the density that §3 banks on;");
    println!("- without one, sneak currents cap arrays below the size where the density");
    println!("  win survives the periphery (Xu et al.'s core finding);");
    println!("- sneak leakage also taxes read energy (the factor column): selector quality");
    println!("  is part of MRM's read-energy story, not just its density story.");

    assert!(with_selector.max_array_size() >= 256);
    assert!(selectorless.max_array_size() < with_selector.max_array_size() / 16);
    println!("\nPASS crossbar sizing checks");

    let json = (
        with_selector.max_array_size(),
        with_selector.best_density(),
        selectorless.max_array_size(),
        selectorless.best_density(),
    );
    save_json("a4_crossbar", &json);
}
