//! **A5** (ablation, §2.2 / \[27\]) — KV-cache compression sensitivity.
//!
//! CacheGen-style compression shrinks the KV stream by 2–8×. The paper's
//! claim is that this "do\[es\] not fundamentally change the heavily
//! read-dominated nature of the workload"; this ablation recomputes the
//! read:write ratio, the Figure-1 endurance requirement, and the footprint
//! under each ratio and checks the conclusion is insensitive.

use mrm_analysis::compression::paper_compression_sweep;
use mrm_analysis::report::Table;
use mrm_bench::{heading, save_json};
use mrm_sim::units::{format_bytes, format_sci};

fn main() {
    heading("A5 — KV compression sensitivity (Llama2-70B fp16, batch 32, 2k ctx)");
    let rows = paper_compression_sweep();
    let mut t = Table::new(&[
        "compression",
        "KV/token",
        "KV @2k ctx",
        "read:write",
        "endurance req (5y)",
        "read-dominated?",
    ]);
    for r in &rows {
        t.row(&[
            &format!("{:.0}x", r.ratio),
            &format_bytes(r.kv_per_token),
            &format_bytes(r.kv_footprint_2k),
            &format!("{:.0}:1", r.rw_ratio),
            &format_sci(r.endurance_requirement),
            if r.still_read_dominated { "yes" } else { "NO" },
        ]);
    }
    print!("{}", t.render());

    heading("Reading the ablation");
    println!("- compression shrinks the KV stream, so writes fall *faster* than reads");
    println!("  (weights dominate reads): the read:write ratio goes UP, not down —");
    println!("  compression makes the workload look even more MRM-shaped;");
    println!("- the Figure-1 KV endurance requirement relaxes linearly with the ratio");
    println!(
        "  ({} -> {} at 8x), widening SCM-potential headroom;",
        format_sci(rows[0].endurance_requirement),
        format_sci(rows.last().unwrap().endurance_requirement)
    );
    println!("- capacity pressure relaxes the same way, but context-length growth in");
    println!("  deployed models historically outruns it (the paper's \"limitations\").");

    assert!(rows.iter().all(|r| r.still_read_dominated));
    println!("\nPASS the §2.2 insensitivity claim holds at every ratio");

    let json: Vec<(f64, f64, f64)> = rows
        .iter()
        .map(|r| (r.ratio, r.rw_ratio, r.endurance_requirement))
        .collect();
    save_json("a5_compression", &json);
}
