//! **Figure 1** — Endurance requirements for KV cache and model weights vs.
//! endurance of memory technologies.
//!
//! Reproduces the paper's only figure: the workload requirement lines
//! (weights updated hourly / once per second over a 5-year life; KV-cache
//! writes per cell from the Splitwise Llama2-70B throughputs) against the
//! product and technology-potential endurance of DRAM/HBM, NAND Flash,
//! PCM, RRAM, and STT-MRAM, plus the proposed MRM design points.

use mrm_analysis::endurance::{figure1, kv_lifetime_years};
use mrm_analysis::report::Table;
use mrm_bench::{heading, log_bar, save_json};
use mrm_device::tech::presets;
use mrm_sim::units::{format_sci, GB};
use mrm_workload::model::{ModelConfig, Quantization};
use mrm_workload::traces::SplitwiseThroughput;

fn main() {
    let (req, rows) = figure1();

    heading("Figure 1 — workload endurance requirements (writes/cell over 5 years)");
    let mut t = Table::new(&["requirement", "writes/cell (5y)", "log-scale (1..1e16)"]);
    for (name, v) in [
        ("weights, hourly update", req.weights_hourly),
        ("weights, 1/s update", req.weights_per_second),
        ("KV cache (Splitwise Llama2-70B)", req.kv_cache),
        ("KV cache, 10x growth headroom", req.kv_cache_headroom),
    ] {
        t.row(&[name, &format_sci(v), &log_bar(v, 0, 16)]);
    }
    print!("{}", t.render());

    heading("Figure 1 — technology endurance vs. requirements");
    let mut t = Table::new(&[
        "technology",
        "maturity",
        "endurance",
        "log-scale (1..1e16)",
        "KV",
        "W/hr",
        "W/1s",
        "margin vs max req",
    ]);
    let tick = |b: bool| if b { "yes" } else { "NO" };
    for r in &rows {
        t.row(&[
            &r.name,
            &r.maturity,
            &format_sci(r.endurance),
            &log_bar(r.endurance, 0, 16),
            tick(r.meets_kv),
            tick(r.meets_weights_hourly),
            tick(r.meets_weights_per_second),
            &format!("{:.2e}", r.margin_vs_max),
        ]);
    }
    print!("{}", t.render());

    heading("Observations (paper §3)");
    let hbm = rows.iter().find(|r| r.name == "HBM3e").unwrap();
    println!(
        "1. HBM is vastly overprovisioned on endurance: {:.0e} rated vs {:.0e} required ({:.0e}x headroom).",
        hbm.endurance,
        req.max_requirement(),
        hbm.margin_vs_max
    );
    let failing_products: Vec<&str> = rows
        .iter()
        .filter(|r| r.maturity == "product" && r.margin_vs_max < 1.0)
        .map(|r| r.name.as_str())
        .collect();
    let passing_potentials: Vec<&str> = rows
        .iter()
        .filter(|r| r.maturity == "potential" && r.margin_vs_max >= 1.0)
        .map(|r| r.name.as_str())
        .collect();
    println!("2. SCM products below the requirement band: {failing_products:?}");
    println!("   Technology potentials above it:          {passing_potentials:?}");

    heading("Corollary — device lifetime under the KV write stream (192 GB system)");
    let model = ModelConfig::llama2_70b();
    let tp = SplitwiseThroughput::llama2_70b();
    let mut t = Table::new(&["technology", "endurance", "KV-stream lifetime (years)"]);
    for tech in presets::all() {
        let years = kv_lifetime_years(&model, Quantization::Fp16, tp, 192 * GB, tech.endurance);
        t.row(&[
            &tech.name,
            &format_sci(tech.endurance),
            &format!("{years:.2}"),
        ]);
    }
    print!("{}", t.render());

    save_json("fig1_endurance", &(req, rows));
}
