//! Criterion bench: housekeeping machinery costs (E6 companion).
//!
//! Measures the simulation-side cost of the three controller designs —
//! DRAM refresh catch-up, FTL write/GC, and the MRM block controller's
//! append path (which has no housekeeping at all).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use mrm_controller::dram::DramController;
use mrm_controller::ftl::{Ftl, FtlConfig};
use mrm_controller::mrm_block::MrmBlockController;
use mrm_device::device::MemoryDevice;
use mrm_device::geometry::DeviceGeometry;
use mrm_device::tech::presets;
use mrm_sim::rng::SimRng;
use mrm_sim::time::{SimDuration, SimTime};
use mrm_sim::units::{GIB, MIB};

fn bench_dram_refresh(c: &mut Criterion) {
    c.bench_function("dram_refresh_one_second", |b| {
        b.iter_with_setup(
            || DramController::hbm_like(DeviceGeometry::hbm_like(GIB)),
            |mut ctrl| {
                ctrl.catch_up_refresh(SimTime::from_secs(1));
                std::hint::black_box(ctrl.stats().refresh_energy_j)
            },
        )
    });
}

fn bench_dram_sequential_read(c: &mut Criterion) {
    let mut g = c.benchmark_group("dram_sequential");
    g.throughput(Throughput::Bytes(8 * MIB));
    g.bench_function("read_8mib", |b| {
        let mut ctrl = DramController::hbm_like(DeviceGeometry::hbm_like(GIB));
        let mut now = SimTime::ZERO;
        b.iter(|| {
            now = ctrl.read(now, 0, 8 * MIB);
            std::hint::black_box(now)
        })
    });
    g.finish();
}

fn bench_ftl_churn(c: &mut Criterion) {
    c.bench_function("ftl_write_churn_1k", |b| {
        b.iter_with_setup(
            || {
                let mut f = Ftl::new(FtlConfig::small());
                let lp = f.config().logical_pages();
                for i in 0..lp {
                    f.write(i).unwrap();
                }
                (f, SimRng::seed_from(3))
            },
            |(mut f, mut rng)| {
                let lp = f.config().logical_pages();
                for _ in 0..1000 {
                    f.write(rng.gen_range_u64(lp)).unwrap();
                }
                std::hint::black_box(f.stats().write_amplification())
            },
        )
    });
}

fn bench_mrm_append(c: &mut Criterion) {
    let mut g = c.benchmark_group("mrm_block");
    g.throughput(Throughput::Bytes(MIB));
    g.bench_function("append_1mib", |b| {
        let mut tech = presets::mrm_hours();
        tech.capacity_bytes = GIB;
        let mut ctrl = MrmBlockController::new(MemoryDevice::new(tech), 64 * MIB);
        let mut z = ctrl.open_zone().unwrap();
        b.iter(|| {
            if ctrl
                .append(SimTime::ZERO, z, MIB, SimDuration::from_hours(12))
                .is_err()
            {
                // Zone full: recycle.
                ctrl.reset_zone(z).unwrap();
                z = ctrl.open_zone_least_worn().unwrap();
                ctrl.append(SimTime::ZERO, z, MIB, SimDuration::from_hours(12))
                    .unwrap();
            }
            std::hint::black_box(&ctrl);
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_dram_refresh,
    bench_dram_sequential_read,
    bench_ftl_churn,
    bench_mrm_append
);
criterion_main!(benches);
