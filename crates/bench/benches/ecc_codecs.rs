//! Criterion bench: ECC codec throughput (E8 companion).
//!
//! Measures the real encode/decode cost of the SECDED baseline vs. the
//! large-block BCH codes — the §4 observation is only useful if big-block
//! decoding stays fast enough for the memory path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mrm_ecc::bch::Bch;
use mrm_ecc::hamming::Hamming;
use mrm_sim::rng::SimRng;

fn data_bits(k: usize, rng: &mut SimRng) -> Vec<u8> {
    (0..k).map(|_| (rng.next_u64() & 1) as u8).collect()
}

fn bench_hamming(c: &mut Criterion) {
    let code = Hamming::secded_72_64();
    let mut rng = SimRng::seed_from(1);
    let data = data_bits(64, &mut rng);
    let cw = code.encode(&data);
    let mut bad = cw.clone();
    bad[17] ^= 1;

    let mut g = c.benchmark_group("hamming_72_64");
    g.throughput(Throughput::Bytes(8));
    g.bench_function("encode", |b| {
        b.iter(|| code.encode(std::hint::black_box(&data)))
    });
    g.bench_function("decode_clean", |b| {
        b.iter(|| code.decode(std::hint::black_box(&cw)))
    });
    g.bench_function("decode_1err", |b| {
        b.iter(|| code.decode(std::hint::black_box(&bad)))
    });
    g.finish();
}

fn bench_bch(c: &mut Criterion) {
    let mut g = c.benchmark_group("bch");
    for (m, t, k) in [(10u32, 4usize, 512usize), (13, 8, 4096)] {
        let code = Bch::with_data_len(m, t, k);
        let mut rng = SimRng::seed_from(2);
        let data = data_bits(k, &mut rng);
        let cw = code.encode(&data);
        let mut bad = cw.clone();
        for e in 0..t {
            bad[(e * 97 + 13) % cw.len()] ^= 1;
        }
        g.throughput(Throughput::Bytes((k / 8) as u64));
        g.bench_with_input(
            BenchmarkId::new("encode", format!("m{m}_t{t}_k{k}")),
            &code,
            |b, code| b.iter(|| code.encode(std::hint::black_box(&data))),
        );
        g.bench_with_input(
            BenchmarkId::new("decode_clean", format!("m{m}_t{t}_k{k}")),
            &code,
            |b, code| b.iter(|| code.decode(std::hint::black_box(&cw)).unwrap()),
        );
        g.bench_with_input(
            BenchmarkId::new("decode_terrs", format!("m{m}_t{t}_k{k}")),
            &code,
            |b, code| b.iter(|| code.decode(std::hint::black_box(&bad)).unwrap()),
        );
    }
    g.finish();
}

criterion_group!(benches, bench_hamming, bench_bch);
criterion_main!(benches);
