//! Criterion bench: end-to-end cluster simulation rate (E9 companion).
//!
//! Measures simulated-seconds-per-wall-second for each placement policy,
//! so regressions in the control-plane hot paths show up.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mrm_sim::time::SimDuration;
use mrm_tiering::cluster::{run_cluster, ClusterConfig};
use mrm_tiering::placement::PlacementPolicy;

fn bench_policies(c: &mut Criterion) {
    let mut g = c.benchmark_group("cluster_10s_2acc");
    g.sample_size(10);
    for policy in PlacementPolicy::all() {
        g.bench_with_input(
            BenchmarkId::from_parameter(policy.label()),
            &policy,
            |b, &p| {
                b.iter(|| {
                    let mut cfg = ClusterConfig::llama70b(p, 2, 8.0);
                    cfg.duration = SimDuration::from_secs(10);
                    std::hint::black_box(run_cluster(cfg).tokens)
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_policies);
criterion_main!(benches);
