//! Criterion bench: end-to-end cluster simulation rate (E9 companion).
//!
//! Measures simulated-seconds-per-wall-second for each placement policy,
//! so regressions in the control-plane hot paths show up — and times the
//! sweep engine itself fanning the 4-policy grid over 1/2/4 worker
//! threads, so scheduling overhead and scaling regressions show up too.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mrm_sim::time::SimDuration;
use mrm_sweep::{Grid, Sweep};
use mrm_tiering::cluster::{run_cluster, ClusterConfig};
use mrm_tiering::placement::PlacementPolicy;

fn config(policy: PlacementPolicy) -> ClusterConfig {
    let mut cfg = ClusterConfig::llama70b(policy, 2, 8.0);
    cfg.duration = SimDuration::from_secs(10);
    cfg
}

fn bench_policies(c: &mut Criterion) {
    let mut g = c.benchmark_group("cluster_10s_2acc");
    g.sample_size(10);
    for policy in PlacementPolicy::all() {
        g.bench_with_input(
            BenchmarkId::from_parameter(policy.label()),
            &policy,
            |b, &p| b.iter(|| std::hint::black_box(run_cluster(config(p)).tokens)),
        );
    }
    g.finish();
}

fn bench_sweep_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("cluster_sweep_4policies");
    g.sample_size(10);
    let sweep = Sweep::new(
        Grid::axis(PlacementPolicy::all()).map(config),
        |cfg: &ClusterConfig, _rng| run_cluster(cfg.clone()).tokens,
    );
    for threads in [1usize, 2, 4] {
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{threads}thr")),
            &threads,
            |b, &n| b.iter(|| std::hint::black_box(sweep.run_parallel(n))),
        );
    }
    g.finish();
}

criterion_group!(benches, bench_policies, bench_sweep_scaling);
criterion_main!(benches);
