//! Criterion bench: device and kernel primitive costs.
//!
//! The building blocks every experiment leans on: timed device reads and
//! retention-programmed writes, pool allocation, and event-queue churn.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use mrm_core::pool::Pool;
use mrm_device::device::MemoryDevice;
use mrm_device::tech::presets;
use mrm_sim::event::EventQueue;
use mrm_sim::rng::SimRng;
use mrm_sim::time::{SimDuration, SimTime};
use mrm_sim::units::{GIB, MIB};

fn bench_device_io(c: &mut Criterion) {
    let mut g = c.benchmark_group("device");
    g.throughput(Throughput::Bytes(MIB));
    g.bench_function("hbm_read_1mib", |b| {
        let mut dev = MemoryDevice::new(presets::hbm3e());
        b.iter(|| std::hint::black_box(dev.read(SimTime::ZERO, 0, MIB).unwrap()))
    });
    g.bench_function("mrm_write_with_retention_1mib", |b| {
        let mut tech = presets::mrm_hours();
        tech.capacity_bytes = GIB;
        let mut dev = MemoryDevice::new(tech);
        b.iter(|| {
            std::hint::black_box(
                dev.write_with_retention(SimTime::ZERO, 0, MIB, SimDuration::from_hours(6))
                    .unwrap(),
            )
        })
    });
    g.finish();
}

fn bench_pool(c: &mut Criterion) {
    c.bench_function("pool_alloc_free_cycle", |b| {
        let mut tech = presets::mrm_hours();
        tech.capacity_bytes = GIB;
        let mut pool = Pool::new(MemoryDevice::new(tech));
        b.iter(|| {
            let a = pool.alloc(4 * MIB).unwrap();
            let c = pool.alloc(MIB).unwrap();
            pool.free(a).unwrap();
            let d = pool.alloc(2 * MIB).unwrap();
            pool.free(c).unwrap();
            pool.free(d).unwrap();
            std::hint::black_box(pool.free_fragments())
        })
    });
}

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue_10k_schedule_pop", |b| {
        let mut rng = SimRng::seed_from(9);
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..10_000u64 {
                q.schedule(SimTime::from_nanos(rng.next_u64() % 1_000_000), i);
            }
            let mut acc = 0u64;
            while let Some((_, e)) = q.pop() {
                acc = acc.wrapping_add(e);
            }
            std::hint::black_box(acc)
        })
    });
}

fn bench_rng(c: &mut Criterion) {
    let mut g = c.benchmark_group("rng");
    g.throughput(Throughput::Elements(1));
    g.bench_function("next_u64", |b| {
        let mut rng = SimRng::seed_from(5);
        b.iter(|| std::hint::black_box(rng.next_u64()))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_device_io,
    bench_pool,
    bench_event_queue,
    bench_rng
);
criterion_main!(benches);
