//! Satellite acceptance tests for the telemetry layer:
//!
//! 1. A swept cluster run exports **byte-identical** JSONL regardless of
//!    the worker-thread count (grid-order result slots + sim-time-stamped
//!    snapshots).
//! 2. Attaching a sink does not perturb the simulation (same report as
//!    the no-op-sink run).
//! 3. Every exported line parses as JSON and carries a monotonically
//!    non-decreasing `sim_time_ns` within its series.

use mrm_sim::time::SimDuration;
use mrm_sweep::{Grid, Sweep};
use mrm_telemetry::{export, SimTelemetry, Snapshot};
use mrm_tiering::cluster::{run_cluster, run_cluster_with_telemetry, ClusterConfig, ClusterReport};
use mrm_tiering::placement::PlacementPolicy;
use serde::Value;

fn grid() -> Grid<ClusterConfig> {
    Grid::axis(PlacementPolicy::all()).map(|p| {
        let mut cfg = ClusterConfig::llama70b(p, 2, 8.0);
        cfg.duration = SimDuration::from_secs(20);
        cfg
    })
}

/// Runs the sweep on `threads` workers and renders the tagged JSONL export
/// in grid order.
fn sweep_jsonl(threads: usize) -> String {
    let results: Vec<(ClusterReport, Vec<Snapshot>)> =
        Sweep::new(grid(), |cfg: &ClusterConfig, _rng| {
            let mut tele = SimTelemetry::new(SimDuration::from_secs(5));
            let report = run_cluster_with_telemetry(cfg.clone(), &mut tele);
            (report, tele.into_snapshots())
        })
        .run_parallel(threads);
    let mut out = String::new();
    for (i, (report, snaps)) in results.iter().enumerate() {
        out.push_str(&export::jsonl_tagged(
            snaps,
            &[
                ("experiment", Value::Str("e9".to_string())),
                ("point", Value::U64(i as u64)),
                ("policy", Value::Str(report.policy.clone())),
            ],
        ));
    }
    out
}

#[test]
fn swept_jsonl_is_byte_identical_across_thread_counts() {
    let single = sweep_jsonl(1);
    let parallel = sweep_jsonl(8);
    assert!(!single.is_empty());
    assert_eq!(single, parallel, "JSONL must not depend on thread count");
}

#[test]
fn telemetry_sink_leaves_report_unchanged() {
    let mut cfg = ClusterConfig::llama70b(PlacementPolicy::HbmMrmDcm, 2, 8.0);
    cfg.duration = SimDuration::from_secs(20);
    let plain = run_cluster(cfg.clone());
    let mut tele = SimTelemetry::new(SimDuration::from_secs(5));
    let traced = run_cluster_with_telemetry(cfg, &mut tele);
    assert_eq!(plain.tokens, traced.tokens);
    assert_eq!(plain.completions, traced.completions);
    assert_eq!(plain.cache_hits, traced.cache_hits);
    assert_eq!(plain.scrubs, traced.scrubs);
    // Telemetry must be a pure observer: bit-identical results.
    assert_eq!(
        plain.energy_total_j.to_bits(),
        traced.energy_total_j.to_bits()
    );
    assert_eq!(
        plain.p99_latency_ms.map(f64::to_bits),
        traced.p99_latency_ms.map(f64::to_bits)
    );
    assert!(!tele.snapshots().is_empty());
}

#[test]
fn jsonl_lines_parse_with_monotone_sim_time() {
    let text = sweep_jsonl(4);
    let mut last: Vec<(String, u64, u64)> = Vec::new(); // (experiment, point) -> last ns
    let mut lines = 0;
    for line in text.lines() {
        lines += 1;
        let v: Value = serde_json::from_str(line).expect("line parses as JSON");
        let exp = v.field("experiment").as_str().expect("experiment tag");
        let Value::U64(point) = *v.field("point") else {
            panic!("point tag missing in {line}");
        };
        let Value::U64(ns) = *v.field("sim_time_ns") else {
            panic!("sim_time_ns missing in {line}");
        };
        match last.iter_mut().find(|(e, p, _)| e == exp && *p == point) {
            Some((_, _, prev)) => {
                assert!(ns >= *prev, "sim_time_ns regressed in series {exp}/{point}");
                *prev = ns;
            }
            None => last.push((exp.to_string(), point, ns)),
        }
    }
    // 4 policies × 20 s at 5 s snapshots.
    assert_eq!(lines, 16);
}
