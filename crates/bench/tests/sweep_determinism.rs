//! The sweep engine's contract: experiment output is bit-identical
//! regardless of how many worker threads evaluate the grid.

use mrm_sim::time::SimDuration;
use mrm_sweep::{Grid, Sweep};
use mrm_tiering::cluster::{run_cluster, ClusterConfig, ClusterReport};
use mrm_tiering::placement::PlacementPolicy;

fn cluster_sweep() -> Sweep<
    ClusterConfig,
    ClusterReport,
    impl Fn(&ClusterConfig, mrm_sim::rng::SimRng) -> ClusterReport + Sync,
> {
    // A small E9b-shaped grid: 2 arrival rates × all 4 policies.
    let grid = Grid::axis([6.0, 12.0])
        .cross(PlacementPolicy::all())
        .map(|(rate, policy)| {
            let mut cfg = ClusterConfig::llama70b(policy, 2, rate);
            cfg.duration = SimDuration::from_secs(15);
            cfg
        });
    Sweep::new(grid, |cfg: &ClusterConfig, _rng| run_cluster(cfg.clone()))
}

#[test]
fn cluster_reports_are_byte_identical_across_thread_counts() {
    let sweep = cluster_sweep();
    let serial = sweep.run_parallel(1);
    let parallel = sweep.run_parallel(8);
    assert_eq!(serial.len(), 8);
    assert_eq!(parallel.len(), serial.len());
    for (i, (a, b)) in serial.iter().zip(&parallel).enumerate() {
        let ja = serde_json::to_string(a).unwrap();
        let jb = serde_json::to_string(b).unwrap();
        assert_eq!(ja, jb, "report {i} differs between 1 and 8 threads");
    }
}

#[test]
fn per_point_rng_streams_are_schedule_independent() {
    // The engine's own randomness guarantee, exercised with jobs that
    // actually consume their per-point generator.
    let grid = Grid::axis((0..24u64).collect::<Vec<_>>());
    let sweep = Sweep::new(grid, |&i, mut rng| {
        let mut acc = i;
        for _ in 0..64 {
            acc = acc.wrapping_add(rng.next_u64());
        }
        acc
    })
    .seed(7);
    assert_eq!(sweep.run_parallel(1), sweep.run_parallel(8));
}
