//! The fault layer's determinism contract (mirrors `sweep_determinism.rs`):
//! with fault injection enabled and the retention margin tight enough that
//! errors break through ECC and engage recovery, cluster reports — including
//! *which* reads failed and every recovery counter — are byte-identical
//! regardless of worker thread count, at any fixed seed.

use mrm_faults::FaultConfig;
use mrm_sim::time::SimDuration;
use mrm_sweep::{Grid, Sweep};
use mrm_tiering::cluster::{run_cluster, ClusterConfig, ClusterReport};
use mrm_tiering::placement::PlacementPolicy;

fn faulted_cfg(policy: PlacementPolicy, margin: f64, seed: u64) -> ClusterConfig {
    let mut cfg = ClusterConfig::llama70b(policy, 2, 8.0);
    cfg.duration = SimDuration::from_secs(30);
    cfg.followup_window = SimDuration::from_secs(10);
    cfg.hint_window = SimDuration::from_secs(10);
    cfg.followup_prob = 0.8;
    cfg.maintenance_period = SimDuration::from_secs(5);
    cfg.seed = seed;
    // Amplified BER so the short run still exercises the full
    // inject -> decode -> recover pipeline, not just clean reads.
    cfg.faults = FaultConfig {
        ber_scale: 40.0,
        provision_margin: Some(margin),
        ..FaultConfig::mrm()
    };
    cfg
}

fn faulted_sweep(
    seed: u64,
) -> Sweep<
    ClusterConfig,
    ClusterReport,
    impl Fn(&ClusterConfig, mrm_sim::rng::SimRng) -> ClusterReport + Sync,
> {
    // Margins from comfortable to none, for both MRM policies: the tight end
    // guarantees recovery paths (retry / recompute / escalation) actually run.
    let grid = Grid::axis([PlacementPolicy::HbmMrm, PlacementPolicy::HbmMrmDcm])
        .cross([4.0, 1.0, 0.25])
        .map(move |(policy, margin)| faulted_cfg(policy, margin, seed));
    Sweep::new(grid, |cfg: &ClusterConfig, _rng| run_cluster(cfg.clone()))
}

#[test]
fn faulted_reports_are_byte_identical_across_thread_counts() {
    for seed in [1u64, 0xC1A5_7E12] {
        let sweep = faulted_sweep(seed);
        let serial = sweep.run_parallel(1);
        let parallel = sweep.run_parallel(8);
        assert_eq!(serial.len(), 6);
        assert_eq!(parallel.len(), serial.len());
        let injected: u64 = serial.iter().map(|r| r.faults.raw_flips).sum();
        assert!(injected > 0, "seed {seed}: the grid never injected a fault");
        for (i, (a, b)) in serial.iter().zip(&parallel).enumerate() {
            let ja = serde_json::to_string(a).unwrap();
            let jb = serde_json::to_string(b).unwrap();
            assert_eq!(
                ja, jb,
                "seed {seed}: faulted report {i} differs between 1 and 8 threads"
            );
        }
    }
}

#[test]
fn distinct_seeds_flip_distinct_bits() {
    // Determinism must come from the seed, not from a fixed error script:
    // two seeds at the same grid point diverge in the fault stream itself.
    let a = run_cluster(faulted_cfg(PlacementPolicy::HbmMrm, 1.0, 1));
    let b = run_cluster(faulted_cfg(PlacementPolicy::HbmMrm, 1.0, 2));
    assert!(a.faults.raw_flips > 0 && b.faults.raw_flips > 0);
    assert_ne!(
        serde_json::to_string(&a.faults).unwrap(),
        serde_json::to_string(&b.faults).unwrap(),
        "seeds 1 and 2 produced identical fault streams"
    );
}
