//! Sensitivity analysis: how robust is Figure 1's conclusion?
//!
//! Every number in the endurance analysis is an estimate — token
//! throughputs will grow, vector sizes vary by architecture, capacities
//! scale, device lifetimes differ. A vision paper's argument should
//! survive an order of magnitude of error in any single input; this module
//! perturbs each input across a range and reports whether the two Figure-1
//! observations still hold, tornado-style.

use mrm_device::tech::presets;
use serde::{Deserialize, Serialize};

use crate::endurance::EnduranceRequirements;

/// One perturbed scenario.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SensitivityRow {
    /// Which input was perturbed.
    pub input: String,
    /// Multiplier applied to it.
    pub factor: f64,
    /// Resulting KV-cache requirement (writes/cell over the lifetime).
    pub kv_requirement: f64,
    /// Observation 1 still holds: DRAM/HBM margin > 1e4×.
    pub obs1_holds: bool,
    /// Observation 2 still holds: SCM products below the band, potentials
    /// above it.
    pub obs2_holds: bool,
}

/// The baseline inputs of the Figure-1 computation.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct Figure1Inputs {
    /// Aggregate token rate, tokens/s per memory system.
    pub tokens_per_s: f64,
    /// KV bytes appended per token.
    pub kv_bytes_per_token: f64,
    /// Memory-system capacity, bytes.
    pub capacity_bytes: f64,
    /// Device lifetime, years.
    pub lifetime_years: f64,
    /// Weight update period, seconds (for the intensive line).
    pub weight_period_s: f64,
}

impl Figure1Inputs {
    /// The paper's baseline: Splitwise Llama2-70B on a 192 GB system.
    pub fn baseline() -> Self {
        Figure1Inputs {
            tokens_per_s: 8500.0,
            kv_bytes_per_token: 327_680.0,
            capacity_bytes: 192e9,
            lifetime_years: 5.0,
            weight_period_s: 1.0,
        }
    }

    /// Evaluates the requirement set for these inputs.
    pub fn requirements(&self) -> EnduranceRequirements {
        let life_s = self.lifetime_years * 365.0 * 86_400.0;
        let kv = self.tokens_per_s * self.kv_bytes_per_token * life_s / self.capacity_bytes;
        EnduranceRequirements {
            lifetime_years: self.lifetime_years,
            weights_hourly: life_s / 3600.0,
            weights_per_second: life_s / self.weight_period_s,
            kv_cache: kv,
            kv_cache_headroom: kv * 10.0,
        }
    }
}

/// Checks the two Figure-1 observations against a requirement set.
pub fn observations_hold(req: &EnduranceRequirements) -> (bool, bool) {
    let max_req = req.max_requirement();
    let obs1 = presets::hbm3e().endurance / max_req > 1e4;
    let products_below = [presets::rram_product(), presets::nand_slc()]
        .iter()
        .all(|t| t.endurance < max_req);
    let potentials_above = [
        presets::pcm_potential(),
        presets::rram_potential(),
        presets::stt_mram_potential(),
    ]
    .iter()
    .all(|t| t.endurance >= req.kv_cache);
    (obs1, products_below && potentials_above)
}

/// A named perturbation of one Figure-1 input.
pub type Perturbation = (&'static str, fn(&mut Figure1Inputs, f64));

/// The four perturbed inputs of the tornado, in display order.
pub fn tornado_inputs() -> [Perturbation; 4] {
    [
        ("token throughput", |i, f| i.tokens_per_s *= f),
        ("KV bytes/token", |i, f| i.kv_bytes_per_token *= f),
        ("system capacity", |i, f| i.capacity_bytes *= f),
        ("device lifetime", |i, f| i.lifetime_years *= f),
    ]
}

/// One tornado cell: the baseline with a single input scaled by `factor`.
///
/// Cells are independent of each other, so a sweep can evaluate the grid in
/// parallel (`mrm-sweep`).
pub fn tornado_cell((name, apply): Perturbation, factor: f64) -> SensitivityRow {
    let mut scenario = Figure1Inputs::baseline();
    apply(&mut scenario, factor);
    let req = scenario.requirements();
    let (o1, o2) = observations_hold(&req);
    SensitivityRow {
        input: name.to_string(),
        factor,
        kv_requirement: req.kv_cache,
        obs1_holds: o1,
        obs2_holds: o2,
    }
}

/// Perturbs each input over `factors` (e.g. `[0.1, 0.3, 3.0, 10.0]`) and
/// reports the outcome per scenario.
pub fn tornado(factors: &[f64]) -> Vec<SensitivityRow> {
    let mut rows = Vec::new();
    for input in tornado_inputs() {
        for &f in factors {
            rows.push(tornado_cell(input, f));
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_matches_the_endurance_module() {
        let ours = Figure1Inputs::baseline().requirements();
        let theirs = crate::endurance::paper_requirements();
        assert!((ours.kv_cache / theirs.kv_cache - 1.0).abs() < 1e-9);
        assert!((ours.weights_hourly - theirs.weights_hourly).abs() < 1e-6);
    }

    #[test]
    fn observations_hold_at_baseline() {
        let (o1, o2) = observations_hold(&Figure1Inputs::baseline().requirements());
        assert!(o1 && o2);
    }

    #[test]
    fn conclusion_survives_order_of_magnitude_each_way() {
        // The robustness claim: no single 10x input error flips either
        // observation.
        for row in tornado(&[0.1, 0.3, 3.0, 10.0]) {
            assert!(
                row.obs1_holds,
                "{} x{}: HBM overprovisioning flipped",
                row.input, row.factor
            );
            assert!(
                row.obs2_holds,
                "{} x{}: product/potential gap flipped",
                row.input, row.factor
            );
        }
    }

    #[test]
    fn requirement_directions_are_correct() {
        let rows = tornado(&[0.1, 10.0]);
        let get = |input: &str, f: f64| {
            rows.iter()
                .find(|r| r.input == input && (r.factor - f).abs() < 1e-12)
                .unwrap()
                .kv_requirement
        };
        let base = Figure1Inputs::baseline().requirements().kv_cache;
        // Throughput and vector size scale the requirement up.
        assert!(get("token throughput", 10.0) > base);
        assert!(get("KV bytes/token", 10.0) > base);
        // Capacity scales it down.
        assert!(get("system capacity", 10.0) < base);
        // Lifetime scales it up (more years of writes).
        assert!(get("device lifetime", 10.0) > base);
    }

    #[test]
    fn extreme_100x_throughput_does_strain_products_only() {
        // Even at 100x token rates the potentials still clear the *base*
        // KV line; the band check is what eventually gives.
        let mut i = Figure1Inputs::baseline();
        i.tokens_per_s *= 100.0;
        let req = i.requirements();
        assert!(presets::stt_mram_potential().endurance > req.kv_cache);
        assert!(presets::rram_product().endurance < req.kv_cache);
    }
}
