//! KV-cache compression sensitivity (§2.2 / CacheGen \[27\]).
//!
//! §2.2: "KV cache compression \[27\] \[is\] also used, but each has its
//! limitations and even together they do not fundamentally change the
//! heavily read-dominated nature of the workload." This module makes that
//! sensitivity claim checkable: apply a compression ratio to the KV stream
//! and recompute the quantities the paper's argument rests on — the
//! read:write ratio, the Figure-1 endurance requirement, and the capacity
//! footprint — to verify none of them flips the conclusion.

use mrm_workload::engine::DecodeEngine;
use mrm_workload::model::{ModelConfig, Quantization};
use mrm_workload::traces::SplitwiseThroughput;
use serde::{Deserialize, Serialize};

use crate::endurance::kv_cache_requirement;
use mrm_sim::time::SimDuration;

/// The workload picture at one KV compression ratio.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CompressionRow {
    /// Compression ratio applied to KV reads/writes/capacity (1 = none).
    pub ratio: f64,
    /// Read:write ratio at batch 32, 2k contexts.
    pub rw_ratio: f64,
    /// KV bytes per token after compression.
    pub kv_per_token: u64,
    /// KV cache footprint at 2k context, bytes.
    pub kv_footprint_2k: u64,
    /// Figure-1 KV endurance requirement (writes/cell, 5 y, 192 GB).
    pub endurance_requirement: f64,
    /// Whether the workload is still read-dominated (>100:1).
    pub still_read_dominated: bool,
}

/// Sweeps compression ratios for a model.
pub fn compression_sweep(model: &ModelConfig, ratios: &[f64]) -> Vec<CompressionRow> {
    let quant = Quantization::Fp16;
    let engine = DecodeEngine::new(model.clone(), quant);
    let tp = SplitwiseThroughput::llama2_70b();
    let life = SimDuration::from_years(5);
    let capacity = 192_000_000_000u64;

    ratios
        .iter()
        .map(|&r| {
            assert!(r >= 1.0, "compression ratio must be >= 1");
            let cost = engine.batch_cost(&[2048u32; 32]);
            // Compression divides KV reads and writes; weights unchanged.
            let reads =
                cost.weights_read as f64 + cost.kv_read as f64 / r + cost.activation_rw as f64;
            let writes = cost.kv_write as f64 / r + cost.activation_rw as f64;
            let rw = reads / writes.max(1.0);
            let kv_per_token = (model.kv_bytes_per_token(quant) as f64 / r) as u64;
            let base_req = kv_cache_requirement(model, quant, tp, capacity, life);
            CompressionRow {
                ratio: r,
                rw_ratio: rw,
                kv_per_token,
                kv_footprint_2k: kv_per_token * 2048,
                endurance_requirement: base_req / r,
                still_read_dominated: rw > 100.0,
            }
        })
        .collect()
}

/// The standard sensitivity set: none, CacheGen-like (~4x), aggressive.
pub fn paper_compression_sweep() -> Vec<CompressionRow> {
    compression_sweep(&ModelConfig::llama2_70b(), &[1.0, 2.0, 4.0, 8.0])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_dominance_survives_any_plausible_ratio() {
        // The §2.2 claim: compression does not flip the workload shape.
        for row in paper_compression_sweep() {
            assert!(
                row.still_read_dominated,
                "ratio {}: rw {}",
                row.ratio, row.rw_ratio
            );
        }
    }

    #[test]
    fn compression_raises_rw_ratio() {
        // Compressing KV shrinks writes more than reads (weights dominate
        // reads), so the ratio *increases* — compression helps MRM.
        let rows = paper_compression_sweep();
        for w in rows.windows(2) {
            assert!(w[1].rw_ratio > w[0].rw_ratio);
        }
    }

    #[test]
    fn endurance_requirement_scales_inversely() {
        let rows = paper_compression_sweep();
        let base = &rows[0];
        for r in &rows[1..] {
            let expected = base.endurance_requirement / r.ratio;
            assert!((r.endurance_requirement / expected - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn footprint_shrinks_linearly() {
        let rows = paper_compression_sweep();
        assert_eq!(rows[0].kv_per_token, 327_680);
        assert_eq!(rows[2].kv_per_token, 81_920); // 4x
    }

    #[test]
    #[should_panic(expected = "compression ratio")]
    fn sub_unit_ratio_rejected() {
        compression_sweep(&ModelConfig::llama2_70b(), &[0.5]);
    }
}
