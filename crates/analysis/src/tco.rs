//! T5 (§2.2/§3): memory-system comparison — HBM vs. HBM+LPDDR vs. HBM+MRM.
//!
//! The §3 claim this table tests: "Combining HBM and lower-cost,
//! lower-throughput LPDDR for cooler data would reduce the overall hardware
//! cost but also reduce the bandwidth at which the data is available to the
//! GPU, and fundamentally not improve the HBM's read energy efficiency."
//! MRM, by contrast, should improve capacity, per-bit energy, *and* the
//! delivered bandwidth for the read-dominated structures.

use mrm_device::tech::presets;
use serde::{Deserialize, Serialize};

/// One memory-system configuration summary.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SystemRow {
    /// System name.
    pub system: String,
    /// Total capacity, bytes.
    pub capacity_bytes: u64,
    /// Bandwidth at which *weights + KV* (the §2 bulk) are delivered,
    /// bytes/s.
    pub bulk_read_bw: f64,
    /// Effective read energy for the bulk data, pJ/bit.
    pub bulk_read_pj_bit: f64,
    /// Always-on housekeeping (refresh) power, watts.
    pub refresh_w: f64,
    /// Relative hardware cost units (GB × cost rate).
    pub cost_units: f64,
    /// Capacity per cost unit, GB.
    pub gb_per_cost: f64,
}

/// The three §3 comparison systems, in display order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SystemKind {
    /// Bulk data (weights + KV) in 8 HBM stacks.
    HbmOnly,
    /// Hot path in 7 HBM stacks; bulk (cool KV) in 8 LPDDR packages.
    HbmLpddr,
    /// 2 HBM stacks for activations; bulk in 8 MRM packages.
    HbmMrm,
}

impl SystemKind {
    /// All systems in display order.
    pub fn all() -> [SystemKind; 3] {
        [
            SystemKind::HbmOnly,
            SystemKind::HbmLpddr,
            SystemKind::HbmMrm,
        ]
    }
}

/// Builds one §3 comparison system at B200-ish scale.
///
/// Rows are independent, so a sweep can evaluate them in parallel
/// (`mrm-sweep`).
pub fn system_row(kind: SystemKind) -> SystemRow {
    let hbm = presets::hbm3e();
    let lpddr = presets::lpddr5x();
    let mrm = presets::mrm_hours();

    let mk = |name: &str,
              caps: &[(u64, f64, f64, f64, f64)]| // (capacity, read_bw, pj, refresh_w, cost)
     -> SystemRow {
        let capacity: u64 = caps.iter().map(|c| c.0).sum();
        let cost: f64 = caps.iter().map(|c| c.4).sum();
        let refresh: f64 = caps.iter().map(|c| c.3).sum();
        // Bulk data (weights+KV) lives in the *last* listed tier by
        // convention here; its bandwidth/energy characterize delivery.
        let bulk = caps.last().expect("every system names at least one tier");
        SystemRow {
            system: name.to_string(),
            capacity_bytes: capacity,
            bulk_read_bw: bulk.1,
            bulk_read_pj_bit: bulk.2,
            refresh_w: refresh,
            cost_units: cost,
            gb_per_cost: capacity as f64 / 1e9 / cost,
        }
    };

    let hbm_unit = |n: u32| {
        (
            hbm.capacity_bytes * u64::from(n),
            hbm.read_bw * f64::from(n),
            hbm.read_energy_pj_bit,
            hbm.refresh_power_w() * f64::from(n),
            hbm.capacity_bytes as f64 * f64::from(n) / 1e9 * hbm.cost_per_gb_rel,
        )
    };
    let lpddr_unit = |n: u32| {
        (
            lpddr.capacity_bytes * u64::from(n),
            lpddr.read_bw * f64::from(n),
            lpddr.read_energy_pj_bit,
            lpddr.refresh_power_w() * f64::from(n),
            lpddr.capacity_bytes as f64 * f64::from(n) / 1e9 * lpddr.cost_per_gb_rel,
        )
    };
    let mrm_unit = |n: u32| {
        (
            mrm.capacity_bytes * u64::from(n),
            mrm.read_bw * f64::from(n),
            mrm.read_energy_pj_bit,
            0.0,
            mrm.capacity_bytes as f64 * f64::from(n) / 1e9 * mrm.cost_per_gb_rel,
        )
    };

    match kind {
        // Bulk data in HBM.
        SystemKind::HbmOnly => mk("HBM-only (8 stacks)", &[hbm_unit(8)]),
        // Bulk (cool KV) data in LPDDR; hot path still in 7 HBM stacks —
        // list HBM first, LPDDR (the bulk tier) last.
        SystemKind::HbmLpddr => mk("HBM+LPDDR (7+8)", &[hbm_unit(7), lpddr_unit(8)]),
        // Bulk data in MRM; 2 HBM stacks for activations.
        SystemKind::HbmMrm => mk("HBM+MRM (2+8)", &[hbm_unit(2), mrm_unit(8)]),
    }
}

/// Builds the three §3 comparison systems at B200-ish scale.
pub fn system_comparison() -> Vec<SystemRow> {
    SystemKind::all().into_iter().map(system_row).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get<'a>(rows: &'a [SystemRow], n: &str) -> &'a SystemRow {
        rows.iter().find(|r| r.system.contains(n)).unwrap()
    }

    #[test]
    fn lpddr_cuts_cost_per_gb_but_also_bulk_bandwidth() {
        let rows = system_comparison();
        let hbm = get(&rows, "HBM-only");
        let lp = get(&rows, "LPDDR");
        // More GB per cost unit...
        assert!(lp.gb_per_cost > hbm.gb_per_cost);
        // ...but the bulk data is delivered at a fraction of the bandwidth.
        assert!(
            lp.bulk_read_bw < hbm.bulk_read_bw / 5.0,
            "LPDDR bulk bw {} vs HBM {}",
            lp.bulk_read_bw,
            hbm.bulk_read_bw
        );
    }

    #[test]
    fn lpddr_does_not_improve_read_energy() {
        // §3: "fundamentally not improve the HBM's read energy efficiency."
        let rows = system_comparison();
        let hbm = get(&rows, "HBM-only");
        let lp = get(&rows, "LPDDR");
        assert!(lp.bulk_read_pj_bit >= hbm.bulk_read_pj_bit);
    }

    #[test]
    fn mrm_improves_capacity_energy_and_bandwidth_together() {
        let rows = system_comparison();
        let hbm = get(&rows, "HBM-only");
        let mrm = get(&rows, "HBM+MRM");
        assert!(mrm.capacity_bytes > 2 * hbm.capacity_bytes);
        assert!(mrm.bulk_read_pj_bit < hbm.bulk_read_pj_bit);
        assert!(mrm.bulk_read_bw > hbm.bulk_read_bw);
        assert!(mrm.gb_per_cost > hbm.gb_per_cost);
    }

    #[test]
    fn mrm_eliminates_always_on_refresh_for_bulk() {
        let rows = system_comparison();
        let hbm = get(&rows, "HBM-only");
        let mrm = get(&rows, "HBM+MRM");
        // HBM-only refreshes 192 GB forever; HBM+MRM refreshes only the
        // 48 GB activation tier.
        assert!(mrm.refresh_w < hbm.refresh_w / 2.0);
    }

    #[test]
    fn all_systems_have_positive_fields() {
        for r in system_comparison() {
            assert!(r.capacity_bytes > 0);
            assert!(r.bulk_read_bw > 0.0);
            assert!(r.cost_units > 0.0);
            assert!(r.gb_per_cost > 0.0);
        }
    }
}
