//! Figure 1: endurance requirements vs. technology endurance.
//!
//! The paper (§3): "Weight updates are infrequent, bulk overwrites ... We
//! estimate the endurance required over 5 years for a conservative hourly
//! update and an intensive once per second update. KV cache writes occur
//! both during prefill and decode, one self-attention vector per context
//! token. ... we use the throughputs and median context lengths reported
//! for the Llama2-70B model in Splitwise \[37\]. For an expected lifetime of
//! five years, we compute the number of KV cache writes, and infer the
//! average number of writes per cell."
//!
//! The two observations the figure must reproduce:
//!
//! 1. HBM is **vastly overprovisioned** on endurance (≥ 1e15 vs. ≤ ~1e8
//!    required), and
//! 2. existing SCM **products** do not meet the KV-cache requirement but
//!    the underlying **technologies** (potential) do.

use mrm_device::tech::{presets, Maturity, Technology};
use mrm_sim::time::{SimDuration, SECS_PER_YEAR};
use mrm_workload::model::{ModelConfig, Quantization};
use mrm_workload::traces::SplitwiseThroughput;
use serde::{Deserialize, Serialize};

/// The workload endurance requirements, writes per cell over the device
/// lifetime.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct EnduranceRequirements {
    /// Device lifetime assumed, years.
    pub lifetime_years: f64,
    /// Weights refreshed hourly (conservative).
    pub weights_hourly: f64,
    /// Weights refreshed once per second (intensive).
    pub weights_per_second: f64,
    /// KV-cache writes per cell (Splitwise Llama2-70B, median contexts).
    pub kv_cache: f64,
    /// KV-cache requirement with 10× growth headroom (token rates and
    /// context lengths keep growing; the figure's shaded upper bound).
    pub kv_cache_headroom: f64,
}

impl EnduranceRequirements {
    /// The largest requirement any data class poses.
    pub fn max_requirement(&self) -> f64 {
        self.weights_per_second.max(self.kv_cache_headroom)
    }
}

/// Writes per cell for periodic bulk overwrites (weights): one full-device
/// overwrite per `period` for `lifetime`.
pub fn weight_update_requirement(period: SimDuration, lifetime: SimDuration) -> f64 {
    lifetime.as_secs_f64() / period.as_secs_f64()
}

/// Writes per cell for the KV-cache append stream: aggregate token rate ×
/// vector size, spread over the device capacity, integrated over the
/// lifetime. Every cell is eventually recycled through the append stream
/// (§2.2: no in-place updates), so per-cell writes = total bytes written /
/// capacity.
pub fn kv_cache_requirement(
    model: &ModelConfig,
    quant: Quantization,
    throughput: SplitwiseThroughput,
    capacity_bytes: u64,
    lifetime: SimDuration,
) -> f64 {
    let bytes_per_s = throughput.total_tokens_per_s() * model.kv_bytes_per_token(quant) as f64;
    bytes_per_s * lifetime.as_secs_f64() / capacity_bytes as f64
}

/// The paper's requirement set: Llama2-70B, Splitwise throughputs, 5-year
/// lifetime, against a B200-class 192 GB memory system.
pub fn paper_requirements() -> EnduranceRequirements {
    let lifetime = SimDuration::from_years(5);
    let model = ModelConfig::llama2_70b();
    let (stack, n) = presets::b200_hbm_system();
    let capacity = stack.capacity_bytes * u64::from(n);
    let kv = kv_cache_requirement(
        &model,
        Quantization::Fp16,
        SplitwiseThroughput::llama2_70b(),
        capacity,
        lifetime,
    );
    EnduranceRequirements {
        lifetime_years: 5.0,
        weights_hourly: weight_update_requirement(SimDuration::from_hours(1), lifetime),
        weights_per_second: weight_update_requirement(SimDuration::from_secs(1), lifetime),
        kv_cache: kv,
        kv_cache_headroom: kv * 10.0,
    }
}

/// One Figure-1 bar: a technology with its endurance and whether it meets
/// each requirement.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Figure1Row {
    /// Technology name.
    pub name: String,
    /// Product / potential / proposed.
    pub maturity: String,
    /// Rated endurance, cycles.
    pub endurance: f64,
    /// Meets the KV-cache requirement.
    pub meets_kv: bool,
    /// Meets the hourly weight-update requirement.
    pub meets_weights_hourly: bool,
    /// Meets the per-second weight-update requirement.
    pub meets_weights_per_second: bool,
    /// Overprovisioning factor vs. the largest requirement (>1 = headroom).
    pub margin_vs_max: f64,
}

/// Builds the Figure-1 dataset from the technology database.
pub fn figure1() -> (EnduranceRequirements, Vec<Figure1Row>) {
    let req = paper_requirements();
    let rows = presets::all()
        .into_iter()
        .map(|t| figure1_row(&t, &req))
        .collect();
    (req, rows)
}

/// Evaluates one technology against the requirements.
pub fn figure1_row(t: &Technology, req: &EnduranceRequirements) -> Figure1Row {
    Figure1Row {
        name: t.name.clone(),
        maturity: match t.maturity {
            Maturity::Product => "product",
            Maturity::Potential => "potential",
            Maturity::Proposed => "proposed",
        }
        .to_string(),
        endurance: t.endurance,
        meets_kv: t.endurance >= req.kv_cache,
        meets_weights_hourly: t.endurance >= req.weights_hourly,
        meets_weights_per_second: t.endurance >= req.weights_per_second,
        margin_vs_max: t.endurance / req.max_requirement(),
    }
}

/// Years a device of `capacity_bytes` and `endurance` survives the KV
/// write stream (the inverse question: endurance → lifetime).
pub fn kv_lifetime_years(
    model: &ModelConfig,
    quant: Quantization,
    throughput: SplitwiseThroughput,
    capacity_bytes: u64,
    endurance: f64,
) -> f64 {
    let bytes_per_s = throughput.total_tokens_per_s() * model.kv_bytes_per_token(quant) as f64;
    let writes_per_cell_per_s = bytes_per_s / capacity_bytes as f64;
    endurance / writes_per_cell_per_s / SECS_PER_YEAR as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrm_sim::units::GB;

    #[test]
    fn weight_requirements_match_paper_math() {
        let req = paper_requirements();
        // Hourly for 5 years: 5 × 365 × 24 = 43,800.
        assert!((req.weights_hourly - 43_800.0).abs() < 1.0);
        // Once per second for 5 years: ≈ 1.577e8.
        assert!((req.weights_per_second / 1.5768e8 - 1.0).abs() < 1e-3);
    }

    #[test]
    fn kv_requirement_is_order_1e6_to_1e7() {
        let req = paper_requirements();
        // 8500 tok/s × 320 KiB ≈ 2.79 GB/s over 192 GB for 5 years ≈ 2.3e6.
        assert!(
            req.kv_cache > 1e6 && req.kv_cache < 1e7,
            "kv requirement {}",
            req.kv_cache
        );
        assert!((req.kv_cache_headroom - req.kv_cache * 10.0).abs() < 1e-9 * req.kv_cache);
    }

    #[test]
    fn kv_requirement_scales_inverse_with_capacity() {
        let model = ModelConfig::llama2_70b();
        let tp = SplitwiseThroughput::llama2_70b();
        let life = SimDuration::from_years(5);
        let small = kv_cache_requirement(&model, Quantization::Fp16, tp, 192 * GB, life);
        let big = kv_cache_requirement(&model, Quantization::Fp16, tp, 384 * GB, life);
        assert!((small / big - 2.0).abs() < 1e-9);
    }

    #[test]
    fn figure1_observation_1_hbm_vastly_overprovisioned() {
        let (req, rows) = figure1();
        let hbm = rows.iter().find(|r| r.name == "HBM3e").unwrap();
        assert!(hbm.meets_kv && hbm.meets_weights_per_second);
        // "Vastly": at least 6 orders of magnitude of headroom.
        assert!(
            hbm.endurance / req.max_requirement() > 1e6,
            "margin {}",
            hbm.endurance / req.max_requirement()
        );
    }

    #[test]
    fn figure1_observation_2_products_fail_potentials_pass() {
        // §3: "existing SCM devices do not meet the endurance requirements
        // but the underlying technologies have the potential to do so."
        // Judged against the full requirement band (up to per-second weight
        // updates): products sit below it, potentials above.
        let (_req, rows) = figure1();
        let get = |n: &str| rows.iter().find(|r| r.name.contains(n)).unwrap();
        assert!(get("Optane, product").margin_vs_max < 1.0);
        assert!(get("Weebit, product").margin_vs_max < 1.0);
        // The Optane product is in fact *marginal* against the base
        // KV-cache line (≈2.3e6 vs. its 3e6 rating) — but fails the
        // headroom and weight-update lines decisively.
        assert!(!get("Optane, product").meets_weights_per_second);
        assert!(!get("Weebit, product").meets_kv);
        assert!(get("PCM (potential)").margin_vs_max > 1.0);
        assert!(get("RRAM (potential)").margin_vs_max > 1.0);
        assert!(get("STT-MRAM (potential)").margin_vs_max > 1.0);
        assert!(get("PCM (potential)").meets_kv);
        assert!(get("RRAM (potential)").meets_kv);
        assert!(get("STT-MRAM (potential)").meets_kv);
    }

    #[test]
    fn flash_misses_everything_but_hourly_weights() {
        let (_req, rows) = figure1();
        let slc = rows.iter().find(|r| r.name.contains("SLC")).unwrap();
        assert!(!slc.meets_kv, "§3: even SLC endurance is insufficient");
        assert!(slc.meets_weights_hourly);
        assert!(!slc.meets_weights_per_second);
    }

    #[test]
    fn mrm_design_points_meet_requirements() {
        let (_req, rows) = figure1();
        for r in rows.iter().filter(|r| r.maturity == "proposed") {
            assert!(r.meets_kv, "{} must meet the KV requirement", r.name);
            assert!(r.meets_weights_per_second, "{}", r.name);
            assert!(r.margin_vs_max > 1.0);
        }
    }

    #[test]
    fn lifetime_inversion_consistent() {
        let model = ModelConfig::llama2_70b();
        let tp = SplitwiseThroughput::llama2_70b();
        // A device with exactly the 5-year requirement lasts 5 years.
        let req = kv_cache_requirement(
            &model,
            Quantization::Fp16,
            tp,
            192 * GB,
            SimDuration::from_years(5),
        );
        let years = kv_lifetime_years(&model, Quantization::Fp16, tp, 192 * GB, req);
        assert!((years - 5.0).abs() < 0.01, "years {years}");
    }

    #[test]
    fn figure1_covers_all_presets() {
        let (_req, rows) = figure1();
        assert_eq!(rows.len(), presets::all().len());
        // Ordering sanity: every row carries a positive endurance.
        assert!(rows.iter().all(|r| r.endurance > 0.0));
    }
}
