//! Aligned-text and CSV table rendering for the experiment harness.

use std::fmt::Write as _;

/// A simple column-aligned table builder.
///
/// # Examples
///
/// ```
/// use mrm_analysis::report::Table;
///
/// let mut t = Table::new(&["tech", "endurance"]);
/// t.row(&["DRAM", "1.0e16"]);
/// t.row(&["NAND SLC", "1.0e5"]);
/// let text = t.render();
/// assert!(text.contains("DRAM"));
/// assert!(text.lines().count() >= 4);
/// ```
#[derive(Clone, Debug)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    title: Option<String>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            title: None,
        }
    }

    /// Sets a title line printed above the table.
    pub fn with_title(mut self, title: &str) -> Self {
        self.title = Some(title.to_string());
        self
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn row(&mut self, cells: &[&str]) {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows
            .push(cells.iter().map(|s| s.to_string()).collect());
    }

    /// Appends a row from owned strings.
    pub fn row_owned(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders as aligned monospace text with a header separator.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        if let Some(t) = &self.title {
            let _ = writeln!(out, "== {t} ==");
        }
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let mut line = String::new();
            for i in 0..ncols {
                if i > 0 {
                    line.push_str("  ");
                }
                let _ = write!(line, "{:<width$}", cells[i], width = widths[i]);
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        out.push_str(&fmt_row(&sep, &widths));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&fmt_row(r, &widths));
            out.push('\n');
        }
        out
    }

    /// Renders as CSV (headers + rows). Cells containing commas are quoted.
    pub fn to_csv(&self) -> String {
        let esc = |s: &String| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.clone()
            }
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.headers.iter().map(esc).collect::<Vec<_>>().join(",")
        );
        for r in &self.rows {
            let _ = writeln!(out, "{}", r.iter().map(esc).collect::<Vec<_>>().join(","));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment() {
        let mut t = Table::new(&["a", "bbbb"]);
        t.row(&["xxxxx", "y"]);
        let text = t.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        // Header separator spans the widest cells.
        assert!(lines[1].starts_with("-----"));
    }

    #[test]
    fn title() {
        let t = Table::new(&["x"]).with_title("Figure 1");
        assert!(t.render().starts_with("== Figure 1 =="));
    }

    #[test]
    fn csv_escaping() {
        let mut t = Table::new(&["name", "v"]);
        t.row(&["a,b", "1"]);
        t.row(&["q\"q", "2"]);
        let csv = t.to_csv();
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"q\"\"q\""));
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn wrong_arity_panics() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["only-one"]);
    }

    #[test]
    fn len_and_empty() {
        let mut t = Table::new(&["a"]);
        assert!(t.is_empty());
        t.row_owned(vec!["1".into()]);
        assert_eq!(t.len(), 1);
    }
}
