//! # `mrm-analysis` — regenerating the paper's quantitative claims
//!
//! One module per piece of the paper's evaluation content:
//!
//! * [`endurance`] — **Figure 1**: workload endurance requirements (KV
//!   cache, weight updates) vs. product & potential endurance of every
//!   memory technology.
//! * [`footprint`] — §2: weights / KV-cache / activation memory footprints
//!   across the model zoo (T1).
//! * [`rwratio`] — §2.2: the >1000:1 read:write ratio (T2).
//! * [`energy`] — §2.1/§3: HBM energy share, refresh burn, and the
//!   housekeeping cost of mismatched retention (T3, E6).
//! * [`tco`] — §2.2/§3: HBM vs. HBM+LPDDR vs. HBM+MRM system comparison
//!   (T5).
//! * [`compression`] — §2.2: KV-compression sensitivity (A5).
//! * [`sensitivity`] — tornado perturbation of the Figure-1 inputs (A6).
//! * [`provisioning`] — §2.2: the over/under-provisioning scorecard of HBM
//!   against the actual workload requirements.
//! * [`report`] — aligned-text and CSV table rendering for the harness.

pub mod compression;
pub mod endurance;
pub mod energy;
pub mod footprint;
pub mod provisioning;
pub mod report;
pub mod rwratio;
pub mod sensitivity;
pub mod tco;

pub use endurance::{figure1, EnduranceRequirements, Figure1Row};
pub use report::Table;
