//! T3 (§2.1) and E6 (§3): energy analysis.
//!
//! T3 quantifies the HBM claims: memory is "approximately a third of the
//! energy usage for an AI accelerator"; refresh consumes "power even when
//! the memory is idle"; stacking hurts yield and thermals.
//!
//! E6 quantifies the §3 housekeeping argument: "Many housekeeping overheads
//! in existing technologies result from a mismatch between cell retention
//! and data lifetime. DRAM's retention is too short, requiring frequent
//! refreshes. Flash retention is too long ... requiring FTL mechanisms. ...
//! In contrast, matching retention to the lifetime of the data makes
//! refresh, deletion, or wear-leveling unnecessary."

use mrm_device::tech::{presets, Technology};
use mrm_sim::time::SimDuration;
use serde::{Deserialize, Serialize};

/// T3: the accelerator-level energy picture for an HBM memory system.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct AcceleratorEnergy {
    /// Accelerator board power budget, watts.
    pub board_w: f64,
    /// Memory interface power at the given utilization, watts.
    pub memory_io_w: f64,
    /// Refresh power, watts (burns even when idle).
    pub refresh_w: f64,
    /// Memory standby power, watts.
    pub idle_w: f64,
    /// Memory share of board power.
    pub memory_fraction: f64,
}

/// Host-side PHY + memory-controller energy, as a multiple of the
/// DRAM-side access energy. Industry analyses put the accelerator-die
/// share (PHY, controller, on-die data movement) at roughly 60% on top of
/// the HBM device energy.
pub const HOST_SIDE_OVERHEAD: f64 = 1.6;

/// Computes the accelerator energy picture for `stacks` HBM stacks at
/// `bw_utilization` (0..1) of peak bandwidth on a board of `board_w`.
///
/// Memory IO power = utilized bandwidth × pJ/bit × [`HOST_SIDE_OVERHEAD`]
/// (device + host PHY/controller); that plus refresh and standby is the
/// memory share.
pub fn accelerator_energy(
    stack: &Technology,
    stacks: u32,
    bw_utilization: f64,
    board_w: f64,
) -> AcceleratorEnergy {
    let bw = stack.read_bw * f64::from(stacks) * bw_utilization.clamp(0.0, 1.0);
    let memory_io_w = bw * 8.0 * stack.read_energy_pj_bit * 1e-12 * HOST_SIDE_OVERHEAD;
    let refresh_w = stack.refresh_power_w() * f64::from(stacks);
    let idle_w = stack.idle_power_w() * f64::from(stacks);
    let mem = memory_io_w + refresh_w + idle_w;
    AcceleratorEnergy {
        board_w,
        memory_io_w,
        refresh_w,
        idle_w,
        memory_fraction: mem / board_w,
    }
}

/// The B200-class default: 8 HBM3e stacks on a 1000 W board at 80%
/// sustained bandwidth utilization (inference decode is memory-bound,
/// §2.1).
pub fn b200_energy() -> AcceleratorEnergy {
    accelerator_energy(&presets::hbm3e(), 8, 0.8, 1000.0)
}

/// E6: the housekeeping cost of storing 1 GB for `lifetime`, per
/// technology — the §3 mismatch argument made quantitative.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct HousekeepingRow {
    /// Technology name.
    pub tech: String,
    /// Initial write energy for 1 GB, joules.
    pub write_j: f64,
    /// Housekeeping energy over the lifetime (refresh passes, FTL write
    /// amplification, or scrubs), joules.
    pub housekeeping_j: f64,
    /// Housekeeping events (refresh passes / GC-amplified writes / scrubs).
    pub events: u64,
    /// Housekeeping energy per useful byte-hour, joules.
    pub j_per_gb_hour: f64,
}

/// Computes the E6 row for a technology storing `bytes` for `lifetime`.
///
/// * DRAM-family: one refresh pass per refresh interval for the whole
///   lifetime.
/// * Flash: FTL write amplification `wa` multiplies the initial write (the
///   GC rewrites); no refresh.
/// * MRM / SCM: `ceil(lifetime / retention) − 1` scrub passes (zero when
///   retention covers the lifetime — the paper's matched case).
pub fn housekeeping_row(
    tech: &Technology,
    bytes: u64,
    lifetime: SimDuration,
    flash_wa: f64,
) -> HousekeepingRow {
    let write_j = tech.write_energy_j(bytes);
    let (housekeeping_j, events) = if let Some(interval) = tech.refresh_interval {
        let passes = lifetime.as_nanos() / interval.as_nanos().max(1);
        let per_pass = bytes as f64 * 8.0 * tech.refresh_energy_pj_bit * 1e-12;
        (passes as f64 * per_pass, passes)
    } else if matches!(
        tech.family,
        mrm_device::tech::TechFamily::Nand | mrm_device::tech::TechFamily::Nor
    ) {
        let extra = (flash_wa - 1.0).max(0.0);
        ((tech.write_energy_j(bytes)) * extra, extra.ceil() as u64)
    } else {
        // Scrubs: full rewrite (read + write) per retention lapse.
        let scrubs = (lifetime
            .as_nanos()
            .div_ceil(tech.retention.as_nanos().max(1)))
        .saturating_sub(1);
        let per_scrub = tech.read_energy_j(bytes) + tech.write_energy_j(bytes);
        (scrubs as f64 * per_scrub, scrubs)
    };
    let gb = bytes as f64 / 1e9;
    let hours = lifetime.as_secs_f64() / 3600.0;
    HousekeepingRow {
        tech: tech.name.clone(),
        write_j,
        housekeeping_j,
        events,
        j_per_gb_hour: housekeeping_j / (gb * hours).max(1e-12),
    }
}

/// The standard E6 dataset: 1 GB of KV-cache-like data living 6 hours.
pub fn paper_housekeeping() -> Vec<HousekeepingRow> {
    let bytes = 1_000_000_000u64;
    let lifetime = SimDuration::from_hours(6);
    let wa = 2.5; // typical FTL write amplification under churn
    vec![
        housekeeping_row(&presets::hbm3e(), bytes, lifetime, wa),
        housekeeping_row(&presets::ddr5(), bytes, lifetime, wa),
        housekeeping_row(&presets::lpddr5x(), bytes, lifetime, wa),
        housekeeping_row(&presets::nand_slc(), bytes, lifetime, wa),
        housekeeping_row(&presets::mrm_minutes(), bytes, lifetime, wa),
        housekeeping_row(&presets::mrm_hours(), bytes, lifetime, wa),
        housekeeping_row(&presets::mrm_days(), bytes, lifetime, wa),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_is_about_a_third_of_board_power() {
        // §2.1: "approximately a third of the energy usage for an AI
        // accelerator is the memory."
        let e = b200_energy();
        assert!(
            e.memory_fraction > 0.20 && e.memory_fraction < 0.45,
            "memory fraction {}",
            e.memory_fraction
        );
    }

    #[test]
    fn refresh_burns_even_at_zero_utilization() {
        let idle = accelerator_energy(&presets::hbm3e(), 8, 0.0, 1000.0);
        assert!(idle.memory_io_w.abs() < f64::EPSILON);
        assert!(idle.refresh_w > 1.0, "idle refresh {} W", idle.refresh_w);
        assert!(idle.memory_fraction > 0.0);
    }

    #[test]
    fn io_power_scales_with_utilization() {
        let half = accelerator_energy(&presets::hbm3e(), 8, 0.5, 1000.0);
        let full = accelerator_energy(&presets::hbm3e(), 8, 1.0, 1000.0);
        assert!((full.memory_io_w / half.memory_io_w - 2.0).abs() < 1e-9);
        // 8 TB/s at 3.9 pJ/bit × 1.6 host overhead ≈ 400 W at full
        // utilization.
        assert!(
            (full.memory_io_w - 399.4).abs() < 2.0,
            "{}",
            full.memory_io_w
        );
    }

    #[test]
    fn matched_retention_has_zero_housekeeping() {
        // 6-hour data in 12-hour-retention MRM: no scrubs at all.
        let rows = paper_housekeeping();
        let matched = rows.iter().find(|r| r.tech.contains("12h")).unwrap();
        assert_eq!(matched.events, 0);
        assert!(matched.housekeeping_j.abs() < f64::EPSILON);
        let days = rows.iter().find(|r| r.tech.contains("7d")).unwrap();
        assert!(days.housekeeping_j.abs() < f64::EPSILON);
    }

    #[test]
    fn dram_refresh_dominates_mismatch() {
        let rows = paper_housekeeping();
        let hbm = rows.iter().find(|r| r.tech == "HBM3e").unwrap();
        let matched = rows.iter().find(|r| r.tech.contains("12h")).unwrap();
        // 6 h / 32 ms = 675k refresh passes.
        assert!(hbm.events > 500_000, "refresh passes {}", hbm.events);
        assert!(hbm.housekeeping_j > 100.0 * (matched.housekeeping_j + 1e-9));
    }

    #[test]
    fn short_retention_mrm_pays_scrubs_but_less_than_dram() {
        let rows = paper_housekeeping();
        let mins = rows.iter().find(|r| r.tech.contains("10m")).unwrap();
        let hbm = rows.iter().find(|r| r.tech == "HBM3e").unwrap();
        assert!(
            mins.events > 0,
            "10-minute retention must scrub 6-hour data"
        );
        assert!(
            mins.housekeeping_j < hbm.housekeeping_j,
            "36 scrubs {} J must still beat 675k refreshes {} J",
            mins.housekeeping_j,
            hbm.housekeeping_j
        );
    }

    #[test]
    fn flash_pays_write_amplification() {
        let rows = paper_housekeeping();
        let nand = rows.iter().find(|r| r.tech.contains("SLC")).unwrap();
        assert!(nand.housekeeping_j > 0.0);
        // WA 2.5: housekeeping = 1.5 × the (already expensive) write.
        assert!((nand.housekeeping_j / nand.write_j - 1.5).abs() < 1e-9);
    }

    #[test]
    fn e6_ordering_matches_the_papers_argument() {
        // Housekeeping J/GB·h: DRAM ≫ Flash > mismatched MRM > matched MRM = 0.
        let rows = paper_housekeeping();
        let g = |n: &str| {
            rows.iter()
                .find(|r| r.tech.contains(n))
                .unwrap()
                .j_per_gb_hour
        };
        assert!(g("HBM3e") > g("SLC"));
        assert!(g("SLC") > g("12h"));
        assert!(g("12h").abs() < f64::EPSILON);
    }
}
