//! T2 (§2.2): the read:write ratio of decode traffic.
//!
//! "Each token generated during decode requires reading all the weights,
//! and the entire KV cache, for one self-attention vector write ... which
//! imply read:write ratios of over 1000:1." Batching amortizes the weight
//! read but "do\[es\] not fundamentally change the heavily read-dominated
//! nature of the workload."

use mrm_workload::engine::DecodeEngine;
use mrm_workload::model::{ModelConfig, Quantization};
use serde::{Deserialize, Serialize};

/// One T2 row: traffic at a batch size.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RwRatioRow {
    /// Model name.
    pub model: String,
    /// Decode batch size.
    pub batch: u32,
    /// Context length per request, tokens.
    pub context_tokens: u32,
    /// Bytes read per generated token.
    pub reads_per_token: u64,
    /// Bytes written per generated token.
    pub writes_per_token: u64,
    /// Read:write ratio.
    pub ratio: f64,
}

/// Builds the ratio sweep for one model across batch sizes.
pub fn rw_ratio_sweep(model: &ModelConfig, quant: Quantization, context: u32) -> Vec<RwRatioRow> {
    let engine = DecodeEngine::new(model.clone(), quant);
    [1u32, 2, 4, 8, 16, 32, 64, 128]
        .iter()
        .map(|&batch| {
            let contexts = vec![context; batch as usize];
            let cost = engine.batch_cost(&contexts);
            let per = cost.per_token();
            RwRatioRow {
                model: model.name.clone(),
                batch,
                context_tokens: context,
                reads_per_token: per.reads(),
                writes_per_token: per.writes(),
                ratio: cost.read_write_ratio(),
            }
        })
        .collect()
}

/// The standard T2 dataset: Llama2-70B at fp16, 2k contexts.
pub fn paper_rw_ratio() -> Vec<RwRatioRow> {
    rw_ratio_sweep(&ModelConfig::llama2_70b(), Quantization::Fp16, 2048)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbatched_ratio_over_1000() {
        let rows = paper_rw_ratio();
        assert!(rows[0].ratio > 1000.0, "batch-1 ratio {}", rows[0].ratio);
    }

    #[test]
    fn ratio_falls_with_batching_but_stays_read_dominated() {
        let rows = paper_rw_ratio();
        for w in rows.windows(2) {
            assert!(w[1].ratio <= w[0].ratio, "ratio must fall with batch");
        }
        let last = rows.last().unwrap();
        assert!(
            last.ratio > 50.0,
            "batch-128 ratio {} still read-dominated",
            last.ratio
        );
    }

    #[test]
    fn writes_per_token_are_batch_invariant() {
        let rows = paper_rw_ratio();
        let w0 = rows[0].writes_per_token;
        for r in &rows {
            // Activation share varies slightly with batch; KV append does not.
            assert!(
                (r.writes_per_token as f64 / w0 as f64 - 1.0).abs() < 0.2,
                "batch {} writes {}",
                r.batch,
                r.writes_per_token
            );
        }
    }

    #[test]
    fn mha_model_even_more_read_heavy() {
        let gqa = rw_ratio_sweep(&ModelConfig::llama2_70b(), Quantization::Fp16, 2048);
        let mha = rw_ratio_sweep(&ModelConfig::gpt3_175b(), Quantization::Fp16, 2048);
        // Bigger model: more weights read per token at batch 1.
        assert!(mha[0].reads_per_token > gqa[0].reads_per_token);
        assert!(mha[0].ratio > 100.0);
    }
}
