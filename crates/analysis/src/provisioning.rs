//! The §2.2 provisioning scorecard: HBM versus what inference actually
//! needs.
//!
//! "These properties suggest that most of the HBM capacity is used for data
//! that has little use for the general-purpose properties HBM inherits from
//! DRAM (random access, byte-addressability, comparable read and write
//! performance). HBM is, in a sense, overprovisioned for the requirements
//! of this foundation model inference workload."

use mrm_device::tech::{presets, Technology};
use mrm_sim::time::SimDuration;
use mrm_workload::engine::DecodeEngine;
use mrm_workload::model::{ModelConfig, Quantization};
use serde::{Deserialize, Serialize};

use crate::endurance::paper_requirements;

/// Verdict on one provisioning dimension.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Verdict {
    /// The device provides far more than the workload needs (wasted cost /
    /// energy).
    Overprovisioned,
    /// Provision roughly matches need.
    Matched,
    /// The device provides less than the workload wants.
    Underprovisioned,
}

impl Verdict {
    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Verdict::Overprovisioned => "OVER",
            Verdict::Matched => "matched",
            Verdict::Underprovisioned => "UNDER",
        }
    }
}

/// One scorecard dimension.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ProvisionRow {
    /// Dimension name.
    pub dimension: String,
    /// What the workload requires (human-readable).
    pub required: String,
    /// What the device provides.
    pub provided: String,
    /// Ratio provided/required where meaningful (>1 = surplus).
    pub ratio: f64,
    /// The verdict.
    pub verdict: Verdict,
}

fn verdict_from_ratio(ratio: f64) -> Verdict {
    if ratio > 10.0 {
        Verdict::Overprovisioned
    } else if ratio < 1.0 {
        Verdict::Underprovisioned
    } else {
        Verdict::Matched
    }
}

/// Builds the §2.2 scorecard for an HBM system serving a model.
///
/// Dimensions: write bandwidth, endurance, random access/byte
/// addressability, retention vs. data lifetime, read bandwidth, capacity.
pub fn hbm_scorecard(stack: &Technology, stacks: u32, model: &ModelConfig) -> Vec<ProvisionRow> {
    let quant = Quantization::Fp16;
    let engine = DecodeEngine::new(model.clone(), quant);
    let batch = 32u32;
    let cost = engine.batch_cost(&vec![2048u32; batch as usize]);

    let read_bw = stack.read_bw * f64::from(stacks);
    let write_bw = stack.write_bw * f64::from(stacks);
    let capacity = stack.capacity_bytes * u64::from(stacks);

    // Iteration time if fully memory bound: reads / read bandwidth.
    let reads = (cost.weights_read + cost.kv_read + cost.activation_rw) as f64;
    let iter_s = reads / read_bw;
    let needed_write_bw = (cost.kv_write + cost.activation_rw) as f64 / iter_s;
    let needed_read_bw = read_bw; // reads saturate whatever is provided

    let req = paper_requirements();
    let endurance_required = req.max_requirement();

    // Data lifetime: KV caches live minutes-to-hours; weights hours-to-days.
    let lifetime_needed = SimDuration::from_hours(12);

    let footprint = model.weights_bytes(quant) + 40_000_000_000; // weights + KV working set

    vec![
        ProvisionRow {
            dimension: "write bandwidth".into(),
            required: format!("{:.1} GB/s (appends)", needed_write_bw / 1e9),
            provided: format!("{:.0} GB/s", write_bw / 1e9),
            ratio: write_bw / needed_write_bw,
            verdict: verdict_from_ratio(write_bw / needed_write_bw),
        },
        ProvisionRow {
            dimension: "endurance".into(),
            required: format!("{:.1e} cycles/5y", endurance_required),
            provided: format!("{:.1e} cycles", stack.endurance),
            ratio: stack.endurance / endurance_required,
            verdict: verdict_from_ratio(stack.endurance / endurance_required),
        },
        ProvisionRow {
            dimension: "byte addressability".into(),
            required: "block/sequential only (§2.2)".into(),
            provided: if stack.byte_addressable {
                "full random access".into()
            } else {
                "block".into()
            },
            ratio: if stack.byte_addressable { 64.0 } else { 1.0 },
            verdict: if stack.byte_addressable {
                Verdict::Overprovisioned
            } else {
                Verdict::Matched
            },
        },
        ProvisionRow {
            dimension: "retention".into(),
            required: format!("{lifetime_needed} (data lifetime)"),
            provided: format!("{} (then refresh)", stack.retention),
            ratio: stack.retention.as_secs_f64() / lifetime_needed.as_secs_f64(),
            verdict: verdict_from_ratio(
                stack.retention.as_secs_f64() / lifetime_needed.as_secs_f64(),
            ),
        },
        ProvisionRow {
            dimension: "read bandwidth".into(),
            required: format!("{:.1} TB/s (all of it)", needed_read_bw / 1e12),
            provided: format!("{:.1} TB/s", read_bw / 1e12),
            ratio: 1.0,
            verdict: Verdict::Matched,
        },
        ProvisionRow {
            dimension: "capacity".into(),
            required: format!("{:.0} GB (weights+KV)", footprint as f64 / 1e9),
            provided: format!("{:.0} GB", capacity as f64 / 1e9),
            ratio: capacity as f64 / footprint as f64,
            verdict: verdict_from_ratio(capacity as f64 / footprint as f64),
        },
    ]
}

/// The standard scorecard: B200-class HBM serving Llama2-70B.
pub fn paper_scorecard() -> Vec<ProvisionRow> {
    let (stack, n) = presets::b200_hbm_system();
    hbm_scorecard(&stack, n, &ModelConfig::llama2_70b())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get<'a>(rows: &'a [ProvisionRow], dim: &str) -> &'a ProvisionRow {
        rows.iter().find(|r| r.dimension == dim).unwrap()
    }

    #[test]
    fn hbm_overprovisioned_on_writes_endurance_access() {
        // The §2.2 argument: the general-purpose DRAM properties are wasted.
        let rows = paper_scorecard();
        assert_eq!(
            get(&rows, "write bandwidth").verdict,
            Verdict::Overprovisioned
        );
        assert_eq!(get(&rows, "endurance").verdict, Verdict::Overprovisioned);
        assert_eq!(
            get(&rows, "byte addressability").verdict,
            Verdict::Overprovisioned
        );
    }

    #[test]
    fn hbm_underprovisioned_on_retention_and_capacity() {
        let rows = paper_scorecard();
        // 32 ms retention vs. hours of data lifetime.
        assert_eq!(get(&rows, "retention").verdict, Verdict::Underprovisioned);
        // 192 GB vs. 180 GB footprint: matched-to-tight; with KV growth it
        // goes under — accept either but never "over".
        assert_ne!(get(&rows, "capacity").verdict, Verdict::Overprovisioned);
    }

    #[test]
    fn read_bandwidth_is_the_matched_dimension() {
        let rows = paper_scorecard();
        assert_eq!(get(&rows, "read bandwidth").verdict, Verdict::Matched);
    }

    #[test]
    fn write_bandwidth_surplus_is_large() {
        // §2.2: reads dominate 1000:1, so symmetric write bandwidth is
        // mostly wasted: surplus > 100×.
        let rows = paper_scorecard();
        assert!(get(&rows, "write bandwidth").ratio > 100.0);
    }

    #[test]
    fn scorecard_has_six_dimensions() {
        assert_eq!(paper_scorecard().len(), 6);
    }

    #[test]
    fn verdict_labels() {
        assert_eq!(Verdict::Overprovisioned.label(), "OVER");
        assert_eq!(Verdict::Underprovisioned.label(), "UNDER");
        assert_eq!(Verdict::Matched.label(), "matched");
    }
}
