//! T1 (§2): inference memory footprints across the model zoo.
//!
//! Reproduces the §2 claims: weights of 500B+ models span "between 250 GB
//! and over 1 TB of data depending on the weight quantization"; the
//! self-attention vector is "typically a few MBs" (full-MHA models); "the
//! KV cache usually grows to a few tens of GBs"; activations are "an order
//! of magnitude smaller than both".

use mrm_workload::model::{ModelConfig, Quantization};
use serde::{Deserialize, Serialize};

/// One footprint row: a model at a quantization.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FootprintRow {
    /// Model name.
    pub model: String,
    /// Parameters.
    pub params: u64,
    /// Quantization label.
    pub quant: String,
    /// Weight bytes.
    pub weights_bytes: u64,
    /// KV bytes appended per token.
    pub kv_per_token_bytes: u64,
    /// KV cache at a median-ish 2k context.
    pub kv_at_2k_bytes: u64,
    /// KV cache at the model's maximum context.
    pub kv_at_max_bytes: u64,
    /// Peak activation bytes at batch 32.
    pub activation_bytes: u64,
}

/// Builds the full T1 dataset: model zoo × quantizations.
pub fn footprint_table() -> Vec<FootprintRow> {
    let mut rows = Vec::new();
    for model in ModelConfig::zoo() {
        for q in Quantization::all() {
            rows.push(FootprintRow {
                model: model.name.clone(),
                params: model.n_params,
                quant: q.label().to_string(),
                weights_bytes: model.weights_bytes(q),
                kv_per_token_bytes: model.kv_bytes_per_token(q),
                kv_at_2k_bytes: model.kv_cache_bytes(2048, q),
                kv_at_max_bytes: model.kv_cache_bytes(u64::from(model.max_context), q),
                activation_bytes: model.activation_bytes(32, q),
            });
        }
    }
    rows
}

/// The §2 claims checked against the dataset; returns human-readable
/// violations (empty = all claims hold).
pub fn check_paper_claims(rows: &[FootprintRow]) -> Vec<String> {
    let mut violations = Vec::new();
    // Claim: 500B+ models span 250 GB .. >1 TB across quantizations.
    let big: Vec<&FootprintRow> = rows
        .iter()
        .filter(|r| r.params >= 500_000_000_000)
        .collect();
    let min = big.iter().map(|r| r.weights_bytes).min().unwrap_or(0);
    let max = big.iter().map(|r| r.weights_bytes).max().unwrap_or(0);
    if min > 250_000_000_000 {
        violations.push(format!("500B+ low end {min} > 250 GB"));
    }
    if max < 1_000_000_000_000 {
        violations.push(format!("500B+ high end {max} < 1 TB"));
    }
    // Claim: MHA attention vectors are MB-scale at fp16.
    if !rows.iter().any(|r| {
        r.quant == "fp16" && r.kv_per_token_bytes > 1_000_000 && r.kv_per_token_bytes < 10_000_000
    }) {
        violations.push("no model shows MB-scale attention vectors".into());
    }
    // Claim: KV caches reach tens of GB.
    if !rows
        .iter()
        .any(|r| r.kv_at_max_bytes > 10_000_000_000 && r.kv_at_max_bytes < 100_000_000_000)
    {
        violations.push("no model shows tens-of-GB KV caches".into());
    }
    // Claim: activations an order of magnitude smaller than weights & KV.
    for r in rows.iter().filter(|r| r.quant == "fp16") {
        if r.activation_bytes * 10 > r.weights_bytes {
            violations.push(format!("{}: activations not ≪ weights", r.model));
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrm_sim::units::{GB, TB};

    #[test]
    fn all_claims_hold() {
        let rows = footprint_table();
        let violations = check_paper_claims(&rows);
        assert!(violations.is_empty(), "claims violated: {violations:?}");
    }

    #[test]
    fn table_covers_zoo_times_quants() {
        let rows = footprint_table();
        assert_eq!(rows.len(), 6 * 3);
    }

    #[test]
    fn weight_range_endpoints() {
        let rows = footprint_table();
        let f500_int4 = rows
            .iter()
            .find(|r| r.model == "Frontier-500B" && r.quant == "int4")
            .unwrap();
        assert_eq!(f500_int4.weights_bytes, 250 * GB);
        let f1t_fp16 = rows
            .iter()
            .find(|r| r.model == "Frontier-1T" && r.quant == "fp16")
            .unwrap();
        assert_eq!(f1t_fp16.weights_bytes, 2 * TB);
    }

    #[test]
    fn kv_grows_with_context() {
        for r in footprint_table() {
            assert!(r.kv_at_max_bytes >= r.kv_at_2k_bytes);
            assert_eq!(r.kv_at_2k_bytes, r.kv_per_token_bytes * 2048);
        }
    }
}
