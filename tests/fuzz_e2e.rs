//! End-to-end checks for the `mrm-fuzz` harness itself.
//!
//! The fuzzer is only trustworthy if (a) a clean codebase fuzzes clean,
//! (b) an injected fault is *detected*, shrunk, and written as a crash
//! artifact, and (c) that artifact replays from nothing but its recorded
//! `(target, seed, iteration)` to the byte-identical failure message.
//! Every target's sabotage mode exercises the full pipeline here, at CI
//! scale; the deeper campaigns run in the `fuzz-smoke` job.

use mrm_fuzz::targets::{campaign_by_name, replay_artifact, TARGET_NAMES};
use std::fs;
use std::path::PathBuf;

const SEED: u64 = 0x4D52_4D00_2025_0001;

/// Per-target iteration budget for the in-test clean run. Chaos drives a
/// full FTL + zone controller per trace, so it gets a smaller budget.
fn clean_iters(name: &str) -> u64 {
    match name {
        "chaos" => 24,
        _ => 120,
    }
}

/// Sabotage trips within the first handful of iterations for every
/// target at the fixed seed; 64 leaves a wide margin.
const SABOTAGE_ITERS: u64 = 64;

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mrm-fuzz-e2e-{}-{tag}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

#[test]
fn all_targets_run_clean_at_smoke_scale() {
    let dir = scratch_dir("clean");
    for name in TARGET_NAMES {
        let outcome = campaign_by_name(name, false, SEED, clean_iters(name), &dir, &mut |_| {})
            .unwrap_or_else(|e| panic!("campaign {name}: {e}"));
        assert!(
            outcome.artifact.is_none(),
            "target {name} found a real divergence: {:?}",
            outcome.failure
        );
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn sabotage_produces_artifact_that_replays_identically() {
    let dir = scratch_dir("sabotage");
    for name in TARGET_NAMES {
        let outcome = campaign_by_name(name, true, SEED, SABOTAGE_ITERS, &dir, &mut |_| {})
            .unwrap_or_else(|e| panic!("campaign {name}: {e}"));
        let path = outcome.artifact.unwrap_or_else(|| {
            panic!("sabotaged target {name} fuzzed clean — the harness is blind")
        });
        let recorded = outcome
            .failure
            .unwrap_or_else(|| panic!("{name}: artifact without failure"));

        // Replay under the same sabotage: must reproduce the exact
        // recorded (shrunk) failure from only the recorded seed.
        let replay = replay_artifact(&path, true).unwrap_or_else(|e| panic!("replay {name}: {e}"));
        assert_eq!(
            replay.failure.as_deref(),
            Some(recorded.as_str()),
            "{name}: replay produced a different failure"
        );
        assert!(replay.matches, "{name}: replay did not match the artifact");

        // Replay with the sabotage off: the same trace must run clean,
        // proving the detected fault really was the injected one.
        let honest =
            replay_artifact(&path, false).unwrap_or_else(|e| panic!("honest replay {name}: {e}"));
        assert!(
            honest.failure.is_none(),
            "{name}: sabotage artifact reproduces without sabotage — \
             real bug: {:?}",
            honest.failure
        );
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn campaigns_are_byte_deterministic() {
    let dir_a = scratch_dir("det-a");
    let dir_b = scratch_dir("det-b");
    for name in TARGET_NAMES {
        let a = campaign_by_name(name, true, SEED, SABOTAGE_ITERS, &dir_a, &mut |_| {})
            .unwrap_or_else(|e| panic!("campaign {name}: {e}"));
        let b = campaign_by_name(name, true, SEED, SABOTAGE_ITERS, &dir_b, &mut |_| {})
            .unwrap_or_else(|e| panic!("campaign {name}: {e}"));
        let (pa, pb) = (a.artifact.unwrap(), b.artifact.unwrap());
        assert_eq!(
            pa.file_name(),
            pb.file_name(),
            "{name}: artifact names diverged between identical campaigns"
        );
        let (ba, bb) = (fs::read(&pa).unwrap(), fs::read(&pb).unwrap());
        assert_eq!(
            ba, bb,
            "{name}: artifact bytes diverged between identical campaigns"
        );
    }
    let _ = fs::remove_dir_all(&dir_a);
    let _ = fs::remove_dir_all(&dir_b);
}

#[test]
fn unknown_target_and_bad_artifact_are_errors() {
    let dir = scratch_dir("errs");
    assert!(campaign_by_name("nonesuch", false, SEED, 1, &dir, &mut |_| {}).is_err());
    fs::create_dir_all(&dir).unwrap();
    let bogus = dir.join("bogus.crash.txt");
    fs::write(&bogus, "not an artifact\n").unwrap();
    assert!(replay_artifact(&bogus, false).is_err());
    let _ = fs::remove_dir_all(&dir);
}
