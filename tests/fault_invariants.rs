//! Model-based invariant suite for the fault-recovery machinery.
//!
//! Each test drives a component through a random *fault script* — writes,
//! reads through the fault-injection layer, explicit retirements — while a
//! simple oracle (plain sets and maps, the `LegacyVecPool` pattern from the
//! pool allocator tests) tracks what the state must be. After every step the
//! real implementation is checked against the oracle:
//!
//! * the FTL never leaves a live logical page pointing at a retired block,
//!   and its pool accounting balances against the oracle's live set;
//! * the MRM block controller's zone lifecycle matches the oracle exactly,
//!   and retired zones reject every operation forever;
//! * the `ExpiryTracker` never resurrects a dropped stream: once removed,
//!   an id stays invisible to every query until an explicit re-register.

use std::collections::{BTreeMap, BTreeSet};

use mrm::control::{AuditAction, RetentionRegistry};
use mrm::controller::ftl::{Ftl, FtlConfig};
use mrm::controller::mrm_block::{MrmBlockController, ZoneError, ZoneId, ZoneState};
use mrm::device::device::MemoryDevice;
use mrm::device::tech::presets;
use mrm::faults::{FaultConfig, FaultModel};
use mrm::sim::time::{SimDuration, SimTime};
use mrm::sim::units::MIB;
use mrm::tiering::refresh::{ExpiryAction, ExpiryTracker};
use mrm::tiering::{run_cluster_with_audit, ClusterConfig, PlacementPolicy};
use proptest::prelude::*;
use proptest::TestCaseError;

// ---- FTL: live pages never point at retired blocks ----------------------

fn chaos_ftl(seed: u64) -> Ftl {
    let cfg = FtlConfig {
        blocks: 64,
        pages_per_block: 16,
        page_bytes: 4096,
        logical_fraction: 0.8,
        gc_threshold_blocks: 4,
        ue_retire_threshold: 3,
        ..FtlConfig::small()
    };
    let mut ftl = Ftl::new(cfg);
    ftl.attach_faults(FaultModel::new(FaultConfig::mrm(), seed));
    ftl
}

/// The forward map agrees with the oracle's live set, every structural
/// invariant holds, and — the retirement contract — nothing live resolves
/// to a retired block (that check lives inside `check_invariants`).
fn assert_ftl_matches_oracle(ftl: &Ftl, live: &BTreeSet<u64>) -> Result<(), TestCaseError> {
    ftl.check_invariants()
        .map_err(|e| TestCaseError::Fail(format!("structural invariant broken: {e}")))?;
    let pages = ftl.config().logical_pages();
    let mut mapped = 0u64;
    for lpn in 0..pages {
        let is_mapped = ftl.read(lpn).is_some();
        prop_assert_eq!(
            is_mapped,
            live.contains(&lpn),
            "lpn {} mapped={} but oracle says {}",
            lpn,
            is_mapped,
            live.contains(&lpn)
        );
        mapped += u64::from(is_mapped);
    }
    // Pool accounting balances: exactly the oracle's live pages are mapped.
    prop_assert_eq!(mapped, live.len() as u64);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn ftl_survives_any_fault_script(
        seed in 0u64..u64::MAX,
        ops in proptest::collection::vec((0u8..8, 0u64..u64::MAX), 1..90),
    ) {
        let mut ftl = chaos_ftl(seed);
        let pages = ftl.config().logical_pages();
        let mut live: BTreeSet<u64> = BTreeSet::new();
        for &(kind, arg) in &ops {
            let lpn = arg % pages;
            match kind {
                // Writes (the common case — keep the device busy).
                0..=2 => {
                    if ftl.write(lpn).is_err() {
                        live.remove(&lpn); // data lost mid-program
                        break;
                    }
                    live.insert(lpn);
                }
                3 => {
                    ftl.trim(lpn).unwrap();
                    live.remove(&lpn);
                }
                // Checked reads across the RBER range: clean, marginal, hot.
                4..=6 => {
                    let rber = [1e-6, 7e-4, 3e-3][(kind - 4) as usize];
                    match ftl.read_checked(lpn, rber) {
                        Ok(_) => {} // recovery (remap/retire) preserves the page
                        Err(_) => {
                            live.remove(&lpn);
                            break;
                        }
                    }
                }
                // Explicit retirement, as the cluster scrubber would issue.
                _ => {
                    if ftl.blocks_retired() < 8 {
                        let block = (arg % 64) as u32;
                        if ftl.retire_block(block).is_err() {
                            break;
                        }
                    }
                }
            }
            assert_ftl_matches_oracle(&ftl, &live)?;
        }
        assert_ftl_matches_oracle(&ftl, &live)?;
    }
}

// ---- MRM block controller: zone lifecycle under fault scripts -----------

fn chaos_controller(seed: u64) -> MrmBlockController {
    let mut tech = presets::mrm_hours();
    tech.capacity_bytes = 64 * MIB;
    let mut ctrl = MrmBlockController::new(MemoryDevice::new(tech), 4 * MIB);
    ctrl.attach_faults(FaultModel::new(FaultConfig::mrm(), seed));
    ctrl
}

fn assert_zones_match_oracle(
    ctrl: &MrmBlockController,
    oracle: &[ZoneState],
) -> Result<(), TestCaseError> {
    let mut retired = 0u64;
    for (i, &expect) in oracle.iter().enumerate() {
        let z = ZoneId(i as u32);
        let got = ctrl.zone_state(z).unwrap();
        prop_assert_eq!(got, expect, "zone {} state diverged from oracle", i);
        retired += u64::from(expect == ZoneState::Retired);
    }
    prop_assert_eq!(ctrl.zones_retired(), retired);
    // The expiry work list never offers retired or empty zones.
    for (z, _) in ctrl.zones_expiring_before(SimTime::MAX) {
        let st = oracle[z.0 as usize];
        prop_assert!(
            st == ZoneState::Open || st == ZoneState::Full,
            "zone {} in expiry list while {:?}",
            z.0,
            st
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn zone_lifecycle_survives_any_fault_script(
        seed in 0u64..u64::MAX,
        ops in proptest::collection::vec((0u8..8, 0u64..u64::MAX), 1..60),
    ) {
        let mut ctrl = chaos_controller(seed);
        let zones = ctrl.zone_count();
        let mut oracle = vec![ZoneState::Empty; zones];
        let mut now = SimTime::ZERO;
        for &(kind, arg) in &ops {
            now = now.saturating_add(SimDuration::from_secs(arg % 5));
            let zi = (arg % zones as u64) as usize;
            let z = ZoneId(zi as u32);
            match kind {
                0 => {
                    // Open the lowest empty zone, mirroring the oracle.
                    if let Ok(opened) = ctrl.open_zone() {
                        prop_assert_eq!(
                            oracle[opened.0 as usize],
                            ZoneState::Empty,
                            "controller opened a non-empty zone"
                        );
                        oracle[opened.0 as usize] = ZoneState::Open;
                    }
                }
                1..=2 => {
                    // Append with short retention so later reads hit aged,
                    // error-prone data.
                    let retention = if arg & 1 == 0 {
                        SimDuration::from_secs(2)
                    } else {
                        SimDuration::from_hours(1)
                    };
                    let res = ctrl.append(now, z, 256 * 1024, retention);
                    match oracle[zi] {
                        ZoneState::Retired => prop_assert_eq!(res.unwrap_err(), ZoneError::ZoneRetired),
                        ZoneState::Open => {
                            if res.is_ok() && ctrl.write_pointer(z).unwrap() == ctrl.zone_bytes() {
                                oracle[zi] = ZoneState::Full;
                            }
                        }
                        _ => prop_assert!(res.is_err()),
                    }
                }
                3..=4 => {
                    // Checked read: ages past the 2 s retention class force
                    // the retry → scrub-escalation ladder.
                    let wp = ctrl.write_pointer(z).unwrap_or(0);
                    if oracle[zi] == ZoneState::Retired {
                        prop_assert_eq!(
                            ctrl.read_checked(now, z, 0, 1, SimDuration::from_hours(1)).unwrap_err(),
                            ZoneError::ZoneRetired
                        );
                    } else if wp > 0 && oracle[zi] != ZoneState::Empty {
                        let len = wp.min(64 * 1024);
                        let res = ctrl
                            .read_checked(now, z, 0, len, SimDuration::from_hours(1))
                            .unwrap();
                        if res.action == mrm::faults::RecoveryAction::Retired {
                            oracle[zi] = ZoneState::Retired;
                        }
                    }
                }
                5 => {
                    let res = ctrl.reset_zone(z);
                    match oracle[zi] {
                        ZoneState::Retired => prop_assert_eq!(res.unwrap_err(), ZoneError::ZoneRetired),
                        _ => {
                            res.unwrap();
                            oracle[zi] = ZoneState::Empty;
                        }
                    }
                }
                6 => {
                    let res = ctrl.finish_zone(z);
                    if oracle[zi] == ZoneState::Open {
                        res.unwrap();
                        oracle[zi] = ZoneState::Full;
                    } else {
                        prop_assert!(res.is_err());
                    }
                }
                // Explicit retirement (idempotent on already-retired zones).
                _ => {
                    ctrl.retire_zone(z).unwrap();
                    oracle[zi] = ZoneState::Retired;
                }
            }
            assert_zones_match_oracle(&ctrl, &oracle)?;
        }
    }
}

// ---- ExpiryTracker: dropped streams stay dropped ------------------------

#[derive(Clone, Copy)]
struct OracleItem {
    deadline: SimTime,
    needed_until: SimTime,
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn expiry_tracker_never_resurrects_a_dropped_stream(
        ops in proptest::collection::vec(
            (0u8..6, 0u64..24, 0u64..3600, 0u64..3600),
            1..120,
        ),
    ) {
        let t0 = SimTime::ZERO;
        let at = |s: u64| t0 + SimDuration::from_secs(s);
        let retention = SimDuration::from_secs(300);

        let mut tracker = ExpiryTracker::new();
        let mut model: BTreeMap<u64, OracleItem> = BTreeMap::new();
        let mut dropped: BTreeSet<u64> = BTreeSet::new();

        for &(kind, id, a, b) in &ops {
            match kind {
                // Register — but a dropped stream is gone for good: the
                // generator never re-registers it, so any later sighting is
                // a resurrection bug.
                0..=1 if !dropped.contains(&id) => {
                    tracker.register(id, at(a), at(b), retention);
                    model.insert(id, OracleItem { deadline: at(a), needed_until: at(b) });
                }
                2 => {
                    tracker.extend_need(id, at(b));
                    if let Some(it) = model.get_mut(&id) {
                        it.needed_until = it.needed_until.max(at(b));
                    }
                }
                3 => {
                    tracker.refreshed(id, at(a));
                    if let Some(it) = model.get_mut(&id) {
                        it.deadline = at(a).saturating_add(retention);
                    }
                }
                4 => {
                    tracker.remove(id);
                    if model.remove(&id).is_some() {
                        dropped.insert(id);
                    }
                }
                // Horizon query — checked below for every step anyway.
                _ => {}
            }

            // The tracker agrees with the oracle exactly.
            prop_assert_eq!(tracker.len(), model.len());
            let horizon = at(a.max(b));
            let mut expected: Vec<(SimTime, u64)> = model
                .iter()
                .filter(|(_, it)| it.deadline <= horizon)
                .map(|(&id, it)| (it.deadline, id))
                .collect();
            expected.sort();
            let expected_ids: Vec<u64> = expected.into_iter().map(|(_, id)| id).collect();
            prop_assert_eq!(tracker.due_before(horizon), expected_ids);

            // No dropped stream is ever visible again, by any query.
            for &gone in &dropped {
                prop_assert_eq!(tracker.deadline(gone), None);
                prop_assert_eq!(tracker.decide(gone, horizon), None);
            }
            prop_assert!(
                tracker.due_before(SimTime::MAX).iter().all(|id| !dropped.contains(id)),
                "a dropped stream resurfaced in due_before"
            );

            // Live items decide consistently with the oracle's view.
            for (&id, it) in &model {
                let decision = tracker.decide(id, horizon);
                if it.needed_until <= it.deadline {
                    prop_assert_eq!(decision, Some(ExpiryAction::Drop));
                } else {
                    prop_assert!(matches!(
                        decision,
                        Some(ExpiryAction::Refresh) | Some(ExpiryAction::Migrate)
                    ));
                }
            }
        }
    }
}

// ---- Audit log as chaos oracle: Required data never silently dies -------

/// A cluster provisioned at the failure margin (retention == data lifetime,
/// 40x BER) so the full recovery ladder fires: retries, scrub escalations,
/// weight re-fetches, and KV recompute demotions.
fn chaos_cluster_cfg(seed: u64, margin_q: u8) -> ClusterConfig {
    let mut cfg = ClusterConfig::llama70b(PlacementPolicy::HbmMrm, 2, 8.0);
    cfg.seed = seed;
    cfg.duration = SimDuration::from_secs(60);
    cfg.followup_window = SimDuration::from_secs(20);
    cfg.hint_window = SimDuration::from_secs(20);
    cfg.followup_prob = 0.8;
    cfg.maintenance_period = SimDuration::from_secs(5);
    cfg.faults = FaultConfig {
        ber_scale: 40.0,
        // margin 0.25 forces scrub-verify escalations; 1.0 forces
        // end-of-retention UEs on parked KV.
        provision_margin: Some(f64::from(margin_q) / 4.0),
        ..FaultConfig::mrm()
    };
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The control-plane acceptance invariant, checked from the *audit log*
    /// rather than counters: under the full fault ladder, no Required-class
    /// object is ever reclaimed without a re-fetch or recompute recorded
    /// first for the same `(class, id)` — and the log itself is well-formed
    /// (dense sequence numbers, nondecreasing sim-time, summary counts that
    /// reconcile against the raw records).
    #[test]
    fn audit_log_never_shows_an_unrecovered_required_drop(
        seed in 0u64..u64::MAX,
        margin_q in 1u8..=4,
    ) {
        let cfg = chaos_cluster_cfg(seed, margin_q);
        let registry = RetentionRegistry::serving_default(cfg.followup_window);
        let (report, audit) = run_cluster_with_audit(cfg);

        // The ladder actually engaged — otherwise the oracle is vacuous.
        prop_assert!(report.faults.enabled);
        prop_assert!(report.faults.reads > 0, "injection must have run");
        prop_assert!(!audit.is_empty(), "decisions must have been recorded");

        // The invariant proper.
        let violations = audit.required_drop_violations(&registry);
        prop_assert!(
            violations.is_empty(),
            "Required-class objects dropped without recovery: {:?}",
            violations
        );
        prop_assert_eq!(report.control.required_drop_violations, 0);

        // Log well-formedness: dense seqs, nondecreasing time.
        for (i, r) in audit.records().iter().enumerate() {
            prop_assert_eq!(r.seq, i as u64, "sequence numbers must be dense");
            if i > 0 {
                prop_assert!(
                    audit.records()[i - 1].at <= r.at,
                    "audit time went backwards at seq {}",
                    i
                );
            }
        }

        // The report's summary is exactly the log's action histogram.
        prop_assert_eq!(report.control.audit_records, audit.len() as u64);
        prop_assert_eq!(report.control.stores, audit.count(AuditAction::Store));
        prop_assert_eq!(report.control.drops, audit.count(AuditAction::Drop));
        prop_assert_eq!(report.control.retires, audit.count(AuditAction::Retire));
        prop_assert_eq!(report.control.refetches, audit.count(AuditAction::Refetch));
        prop_assert_eq!(report.control.recomputes, audit.count(AuditAction::Recompute));
        prop_assert_eq!(report.control.escalations, audit.count(AuditAction::Escalate));

        // Every weight re-fetch the fault layer performed flowed through
        // the control plane (the ladder *is* the work-item stream).
        prop_assert_eq!(report.control.refetches, report.faults.weight_refetches);
    }
}
