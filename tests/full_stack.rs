//! Full-stack integration: the workload engine driving an MRM device, with
//! the complete integrity lifecycle — clean reads, degradation near the
//! retention deadline, expiry, and scrub recovery.

use mrm::core::config::MrmConfig;
use mrm::core::device::{MrmDevice, MrmError, ReadIntegrity};
use mrm::sim::time::{SimDuration, SimTime};
use mrm::sim::units::{GIB, MIB};
use mrm::workload::engine::DecodeEngine;
use mrm::workload::model::{ModelConfig, Quantization};

fn device() -> MrmDevice {
    MrmDevice::new(MrmConfig::hours_class(8 * GIB))
}

#[test]
fn decode_loop_over_mrm_device() {
    let model = ModelConfig::llama2_70b();
    let engine = DecodeEngine::new(model.clone(), Quantization::Fp16);
    let kvpt = model.kv_bytes_per_token(Quantization::Fp16);

    let mut dev = device();
    let mut now = SimTime::ZERO;
    let stream = dev.create_stream(SimDuration::from_mins(30)).unwrap();

    // Prefill 1020 tokens, then decode 129 (the Splitwise medians).
    dev.append(now, stream, 1020 * kvpt).unwrap();
    let mut context = 1020u32;
    #[allow(clippy::explicit_counter_loop)] // context is decode state, not an index
    for _ in 0..129 {
        let cost = engine.token_cost(context);
        assert_eq!(cost.kv_write, kvpt);
        let len = dev.stream_len(stream).unwrap();
        let r = dev.read(now, stream, 0, len).unwrap();
        assert_eq!(
            r.integrity,
            ReadIntegrity::Clean,
            "mid-decode read must be clean"
        );
        dev.append(now, stream, cost.kv_write).unwrap();
        context += 1;
        now += SimDuration::from_millis(33);
    }
    assert_eq!(dev.stream_len(stream).unwrap(), (1020 + 129) * kvpt);

    // The read:write asymmetry held: the device saw far more read traffic.
    let (_, _, bytes_read, bytes_written) = {
        // Each decode step read the whole cache and wrote one vector.
        let s = dev.stats();
        (s.streams, s.scrubs, s.energy.read_j, s.energy.write_j)
    };
    // Read *bytes* dominate ~120:1; in energy terms MRM reads are ~4x
    // cheaper per bit than retention-programmed writes, so ~25:1 remains.
    assert!(
        bytes_read > 20.0 * bytes_written,
        "read energy must dominate"
    );
}

#[test]
fn integrity_lifecycle_clean_degraded_expired_scrubbed() {
    let mut dev = device();
    let t0 = SimTime::ZERO;
    // 8-minute lifetime hint -> 10-minute DCM class.
    let s = dev.create_stream(SimDuration::from_mins(8)).unwrap();
    dev.append(t0, s, 64 * MIB).unwrap();

    let at = |mins: u64| t0 + SimDuration::from_mins(mins);
    let len = dev.stream_len(s).unwrap();

    assert_eq!(
        dev.read(at(2), s, 0, len).unwrap().integrity,
        ReadIntegrity::Clean
    );
    assert_eq!(
        dev.read(at(8), s, 0, len).unwrap().integrity,
        ReadIntegrity::Degraded
    );
    assert_eq!(
        dev.read(at(20), s, 0, len).unwrap().integrity,
        ReadIntegrity::Expired
    );

    // Scrub just before expiry on a fresh device re-arms the deadline.
    let mut dev2 = device();
    let s2 = dev2.create_stream(SimDuration::from_mins(8)).unwrap();
    dev2.append(t0, s2, 64 * MIB).unwrap();
    dev2.scrub_stream(at(7), s2).unwrap();
    let r = dev2.read(at(12), s2, 0, 64 * MIB).unwrap();
    assert_ne!(r.integrity, ReadIntegrity::Expired);
    assert!(dev2.stats().energy.housekeeping_j > 0.0);
}

#[test]
fn expiry_registry_feeds_the_control_plane() {
    let mut dev = device();
    let t0 = SimTime::ZERO;
    let short = dev.create_stream(SimDuration::from_mins(5)).unwrap();
    let long = dev.create_stream(SimDuration::from_hours(8)).unwrap(); // 12h class
    dev.append(t0, short, MIB).unwrap();
    dev.append(t0, long, MIB).unwrap();

    let horizon = t0 + SimDuration::from_hours(1);
    let due = dev.streams_expiring_before(horizon);
    assert_eq!(due.len(), 1);
    assert_eq!(due[0].0, short);

    let later = t0 + SimDuration::from_days(1);
    let due = dev.streams_expiring_before(later);
    assert_eq!(due.len(), 2, "both classes expire within a day");
}

#[test]
fn capacity_exhaustion_and_reclaim() {
    let mut dev = MrmDevice::new(MrmConfig::hours_class(GIB).with_zone_bytes(16 * MIB));
    let t0 = SimTime::ZERO;
    let a = dev.create_stream(SimDuration::from_hours(1)).unwrap();
    dev.append(t0, a, GIB).unwrap();
    let b = dev.create_stream(SimDuration::from_hours(1)).unwrap();
    assert_eq!(dev.append(t0, b, MIB).unwrap_err(), MrmError::OutOfSpace);
    dev.delete_stream(a).unwrap();
    dev.append(t0, b, MIB).unwrap();
}

#[test]
fn dcm_routes_streams_to_distinct_classes() {
    use mrm::controller::dcm::RetentionClass;
    let mut dev = device();
    let transient = dev.create_stream(SimDuration::from_secs(10)).unwrap();
    let interactive = dev.create_stream(SimDuration::from_mins(20)).unwrap();
    let archive = dev.create_stream(SimDuration::from_days(2)).unwrap();
    assert_eq!(
        dev.stream_class(transient).unwrap(),
        RetentionClass::Seconds30
    );
    assert_eq!(
        dev.stream_class(interactive).unwrap(),
        RetentionClass::Hours1
    );
    assert_eq!(dev.stream_class(archive).unwrap(), RetentionClass::Days7);
}
