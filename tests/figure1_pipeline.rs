//! Figure-1 pipeline, end to end: the workload statistics flow through the
//! model configuration into the endurance requirements, which are compared
//! against the device database — and the paper's two headline observations
//! must come out.

use mrm::analysis::endurance::{
    figure1, kv_cache_requirement, kv_lifetime_years, paper_requirements,
};
use mrm::device::tech::presets;
use mrm::sim::time::SimDuration;
use mrm::sim::units::GB;
use mrm::workload::model::{ModelConfig, Quantization};
use mrm::workload::traces::SplitwiseThroughput;

#[test]
fn requirements_derive_from_workload_parameters() {
    let req = paper_requirements();
    // Recompute the KV line from first principles.
    let model = ModelConfig::llama2_70b();
    let tp = SplitwiseThroughput::llama2_70b();
    let by_hand = tp.total_tokens_per_s()
        * model.kv_bytes_per_token(Quantization::Fp16) as f64
        * (5.0 * 365.0 * 86_400.0)
        / (192.0 * 1e9);
    assert!((req.kv_cache / by_hand - 1.0).abs() < 1e-9);
}

#[test]
fn observation_1_hbm_vastly_overprovisioned() {
    let (req, rows) = figure1();
    for name in ["DDR5 DRAM", "HBM3e", "HBM4 (projected)", "LPDDR5X"] {
        let r = rows.iter().find(|r| r.name == name).unwrap();
        assert!(
            r.endurance / req.max_requirement() > 1e6,
            "{name} must be overprovisioned by >6 orders"
        );
    }
}

#[test]
fn observation_2_product_vs_potential_gap() {
    let (_req, rows) = figure1();
    // For each SCM family, the product sits below the requirement band and
    // the potential above — the paper's central gap.
    for (prod, pot) in [
        ("PCM (Optane, product)", "PCM (potential)"),
        ("RRAM (Weebit, product)", "RRAM (potential)"),
    ] {
        let p = rows.iter().find(|r| r.name == prod).unwrap();
        let q = rows.iter().find(|r| r.name == pot).unwrap();
        assert!(p.margin_vs_max < 1.0, "{prod} must fail the band");
        assert!(q.margin_vs_max > 1.0, "{pot} must clear the band");
    }
}

#[test]
fn mrm_design_points_clear_the_band_with_headroom() {
    let (_req, rows) = figure1();
    for r in rows.iter().filter(|r| r.maturity == "proposed") {
        assert!(r.margin_vs_max > 100.0, "{} needs real headroom", r.name);
    }
}

#[test]
fn bigger_models_relax_the_per_cell_requirement() {
    // A counterintuitive consequence worth pinning: larger KV vectors at
    // the same token rate mean more bytes/s, but the requirement scales
    // with capacity too; at fixed capacity, MHA models (bigger vectors)
    // stress endurance harder.
    let tp = SplitwiseThroughput::llama2_70b();
    let life = SimDuration::from_years(5);
    let gqa = kv_cache_requirement(
        &ModelConfig::llama2_70b(),
        Quantization::Fp16,
        tp,
        192 * GB,
        life,
    );
    let mha = kv_cache_requirement(
        &ModelConfig::gpt3_175b(),
        Quantization::Fp16,
        tp,
        192 * GB,
        life,
    );
    assert!(mha > 10.0 * gqa, "MHA KV vectors are ~14x larger");
}

#[test]
fn lifetime_and_requirement_are_inverse() {
    let model = ModelConfig::llama2_70b();
    let tp = SplitwiseThroughput::llama2_70b();
    for endurance in [1e5, 3e6, 1e8] {
        let years = kv_lifetime_years(&model, Quantization::Fp16, tp, 192 * GB, endurance);
        let req = kv_cache_requirement(
            &model,
            Quantization::Fp16,
            tp,
            192 * GB,
            SimDuration::from_secs_f64(years * 365.0 * 86_400.0),
        );
        assert!(
            (req / endurance - 1.0).abs() < 0.01,
            "endurance {endurance}: inversion mismatch ({req})"
        );
    }
}

#[test]
fn quantization_shifts_the_kv_requirement() {
    let model = ModelConfig::llama2_70b();
    let tp = SplitwiseThroughput::llama2_70b();
    let life = SimDuration::from_years(5);
    let fp16 = kv_cache_requirement(&model, Quantization::Fp16, tp, 192 * GB, life);
    let int8 = kv_cache_requirement(&model, Quantization::Int8, tp, 192 * GB, life);
    assert!(
        (fp16 / int8 - 2.0).abs() < 1e-9,
        "int8 halves the bytes per vector"
    );
}

#[test]
fn database_and_figure_agree() {
    let (_req, rows) = figure1();
    for tech in presets::all() {
        let row = rows.iter().find(|r| r.name == tech.name).unwrap();
        // The figure row copies the preset value verbatim, so bit equality
        // is the right check (and satisfies clippy::float_cmp).
        assert_eq!(
            row.endurance.to_bits(),
            tech.endurance.to_bits(),
            "{}",
            tech.name
        );
    }
}
