//! Failure injection across the stack: bit errors vs. the ECC path, aged
//! data vs. the integrity qualifier, and allocator/controller abuse.

use mrm::core::config::{EccConfig, MrmConfig};
use mrm::core::device::{MrmDevice, ReadIntegrity};
use mrm::ecc::analysis::codeword_failure_prob;
use mrm::ecc::bch::{Bch, BchError};
use mrm::ecc::hamming::{Hamming, HammingOutcome};
use mrm::ecc::interleave::Interleaver;
use mrm::sim::rng::SimRng;
use mrm::sim::time::{SimDuration, SimTime};
use mrm::sim::units::{GIB, MIB};

/// Monte-Carlo RBER injection against the analytic binomial-tail model:
/// the measured codeword failure rate must agree with the prediction.
#[test]
fn measured_bch_failure_rate_matches_analysis() {
    let code = Bch::new(8, 2); // (255, 239): small enough to fail visibly
    let mut rng = SimRng::seed_from(2024);
    let data: Vec<u8> = (0..code.k()).map(|_| (rng.next_u64() & 1) as u8).collect();
    let clean = code.encode(&data);

    let rber = 0.01; // exaggerated so failures occur in few trials
    let trials = 4000;
    let mut failures = 0u32;
    for _ in 0..trials {
        let mut cw = clean.clone();
        for bit in cw.iter_mut() {
            if rng.next_f64() < rber {
                *bit ^= 1;
            }
        }
        match code.decode(&cw) {
            Ok((out, _)) if out == data => {}
            _ => failures += 1,
        }
    }
    let measured = f64::from(failures) / f64::from(trials);
    let predicted = codeword_failure_prob(code.n() as u64, code.t() as u64, rber);
    assert!(
        (measured / predicted - 1.0).abs() < 0.25,
        "measured {measured:.4} vs predicted {predicted:.4}"
    );
}

/// The aged-device → RBER → ECC pipeline: a device read's reported RBER,
/// pushed through the analytic model, must explain the integrity verdicts
/// the MrmDevice returns.
#[test]
fn aged_reads_rber_is_consistent_with_integrity() {
    let mut dev = MrmDevice::new(MrmConfig::hours_class(GIB));
    let t0 = SimTime::ZERO;
    let s = dev.create_stream(SimDuration::from_mins(8)).unwrap(); // 10m class
    dev.append(t0, s, 32 * MIB).unwrap();

    let ecc: EccConfig = dev.config().ecc;
    for mins in [1u64, 5, 9, 15] {
        let r = dev
            .read(t0 + SimDuration::from_mins(mins), s, 0, 32 * MIB)
            .unwrap();
        let recomputed = codeword_failure_prob(ecc.codeword_bits() as u64, ecc.t as u64, r.rber);
        assert!(
            (recomputed - r.cw_fail_prob).abs() <= recomputed * 1e-9 + 1e-300,
            "minute {mins}: device and analysis disagree"
        );
        match r.integrity {
            ReadIntegrity::Clean => assert!(r.cw_fail_prob <= ecc.target_cw_fail),
            ReadIntegrity::Degraded => assert!(r.cw_fail_prob < 1e-3),
            ReadIntegrity::Expired => assert!(mins >= 10),
        }
    }
}

/// Burst failure: a physical burst that would kill one codeword survives
/// interleaving + BCH, end to end.
#[test]
fn interleaved_bch_survives_wordline_burst() {
    let code = Bch::with_data_len(10, 4, 512);
    let il = Interleaver::new(8, code.n());
    let mut rng = SimRng::seed_from(5);
    let payloads: Vec<Vec<u8>> = (0..8)
        .map(|_| (0..512).map(|_| (rng.next_u64() & 1) as u8).collect())
        .collect();
    let cws: Vec<Vec<u8>> = payloads.iter().map(|p| code.encode(p)).collect();
    let mut frame = il.interleave(&cws);

    // A 24-bit contiguous burst: 3 errors per codeword after deinterleave.
    let start = 1000;
    for bit in frame.iter_mut().skip(start).take(24) {
        *bit ^= 1;
    }
    for (j, received) in il.deinterleave(&frame).iter().enumerate() {
        let (out, fixed) = code.decode(received).expect("burst must be correctable");
        assert_eq!(out, payloads[j]);
        assert!(fixed <= 3);
    }

    // Control: the same burst on a single codeword is uncorrectable (or at
    // least not silently "fixed" into the right data by luck).
    let mut single = cws[0].clone();
    for bit in single.iter_mut().skip(100).take(24) {
        *bit ^= 1;
    }
    match code.decode(&single) {
        Err(BchError::TooManyErrors) => {}
        Ok((out, _)) => assert_ne!(out, payloads[0]),
    }
}

/// SECDED miscorrection boundary: triple errors may alias to a "corrected"
/// word — the documented limitation — but never panic.
#[test]
fn secded_triple_error_does_not_panic() {
    let h = Hamming::secded_72_64();
    let data: Vec<u8> = (0..64).map(|i| (i % 2) as u8).collect();
    let cw = h.encode(&data);
    for (a, b, c) in [(0usize, 1usize, 2usize), (3, 40, 71), (10, 20, 30)] {
        let mut bad = cw.clone();
        bad[a] ^= 1;
        bad[b] ^= 1;
        bad[c] ^= 1;
        let (_, outcome) = h.decode(&bad);
        // Any outcome is acceptable except a clean verdict.
        assert_ne!(outcome, HammingOutcome::Clean, "triple error read as clean");
    }
}

/// Worn-out cells surface through the device read path.
#[test]
fn wearout_is_reported_not_hidden() {
    use mrm::device::device::MemoryDevice;
    let mut tech = mrm::device::tech::presets::rram_product();
    tech.endurance = 5.0;
    tech.capacity_bytes = MIB;
    let mut dev = MemoryDevice::new(tech);
    for _ in 0..6 {
        dev.write(SimTime::ZERO, 0, 4096).unwrap();
    }
    let r = dev.read(SimTime::ZERO, 0, 4096).unwrap();
    assert!(r.worn_out, "endurance exhaustion must be visible");
    assert!(r.rber > 0.0 || r.worn_out);
}
