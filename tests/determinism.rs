//! Determinism: every simulation in the workspace is bit-reproducible for a
//! given seed, and seed changes actually change the runs.

use mrm::sim::rng::SimRng;
use mrm::sim::time::SimDuration;
use mrm::sim::units::MIB;
use mrm::tiering::cluster::{run_cluster, ClusterConfig};
use mrm::tiering::placement::PlacementPolicy;
use mrm::tiering::wear::{simulate_wear, WearPolicy};
use mrm::workload::traces::TraceMix;

fn quick_cfg(seed: u64) -> ClusterConfig {
    let mut cfg = ClusterConfig::llama70b(PlacementPolicy::HbmMrmDcm, 2, 8.0);
    cfg.duration = SimDuration::from_secs(20);
    cfg.seed = seed;
    cfg
}

#[test]
fn cluster_sim_is_reproducible() {
    let a = run_cluster(quick_cfg(1234));
    let b = run_cluster(quick_cfg(1234));
    assert_eq!(a.tokens, b.tokens);
    assert_eq!(a.arrivals, b.arrivals);
    assert_eq!(a.completions, b.completions);
    assert_eq!(a.cache_hits, b.cache_hits);
    assert_eq!(a.evictions, b.evictions);
    assert!((a.energy_total_j - b.energy_total_j).abs() < 1e-9);
    assert_eq!(
        a.p99_latency_ms.map(f64::to_bits),
        b.p99_latency_ms.map(f64::to_bits)
    );
}

#[test]
fn cluster_sim_depends_on_seed() {
    let a = run_cluster(quick_cfg(1));
    let b = run_cluster(quick_cfg(2));
    // Different arrival draws => different token counts (astronomically
    // unlikely to collide exactly along with arrivals).
    assert!(a.tokens != b.tokens || a.arrivals != b.arrivals);
}

#[test]
fn trace_mix_reproducible_across_instances() {
    let run = |seed: u64| {
        let mix = TraceMix::splitwise_default(4096, 10.0);
        let mut rng = SimRng::seed_from(seed);
        (0..100)
            .map(|_| {
                let (_, p, o) = mix.sample_request(&mut rng);
                (p, o, mix.next_interarrival(&mut rng).as_nanos())
            })
            .collect::<Vec<_>>()
    };
    assert_eq!(run(7), run(7));
    assert_ne!(run(7), run(8));
}

#[test]
fn wear_sim_reproducible() {
    let run = || {
        let mut tech = mrm::device::tech::presets::mrm_hours();
        tech.capacity_bytes = 256 * MIB;
        simulate_wear(
            tech,
            4 * MIB,
            16 * MIB,
            (64 * MIB) as f64,
            SimDuration::from_secs(300),
            WearPolicy::LeastWorn,
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a.max_zone_cycles, b.max_zone_cycles);
    assert_eq!(a.bytes_written, b.bytes_written);
}

#[test]
fn rng_split_isolation_across_components() {
    // Two components drawing from split streams see identical sequences
    // regardless of how much the *other* component consumes — the property
    // that keeps adding instrumentation from perturbing simulations.
    let consume = |n: usize| {
        let mut parent = SimRng::seed_from(99);
        let mut first = parent.split();
        let mut second = parent.split();
        for _ in 0..n {
            let _ = first.next_u64();
        }
        (0..8).map(|_| second.next_u64()).collect::<Vec<_>>()
    };
    assert_eq!(consume(1), consume(1000));
}
