//! Model-based invariant suite for the prefix cache (PR 6 bug-burndown).
//!
//! The `PrefixCache` trie is driven through random scripts of inserts,
//! releases and evictions while a plain-map oracle — `BTreeMap` keyed by
//! hash-path prefix, applying the same chunking rule — tracks what every
//! observable must be. The script exercises exactly the edge cases the
//! refcount fix targets: prompts whose hash list outruns their token count
//! (previously minting zero-token ghost nodes), interleaved release orders,
//! and evictions racing re-inserts of the same prefix.

use std::collections::BTreeMap;

use mrm::tiering::prefix::{PrefixCache, PrefixNodeId};
use proptest::prelude::*;

/// The oracle: one entry per live chunk, keyed by its hash path from the
/// root. Refcounts and token sizes only — no trie, no node ids.
#[derive(Default)]
struct Model {
    chunk_tokens: u32,
    nodes: BTreeMap<Vec<u64>, (u32, u32)>, // path -> (refcount, tokens)
}

impl Model {
    fn new(chunk_tokens: u32) -> Model {
        Model {
            chunk_tokens,
            ..Model::default()
        }
    }

    /// Mirrors `PrefixCache::insert`: same chunking rule (last chunk takes
    /// the remainder, zero-token chunks are never created), hits counted at
    /// the inserting request's chunk size.
    fn insert(&mut self, hashes: &[u64], prompt_tokens: u32) -> (u64, u64, Vec<Vec<u64>>) {
        let mut remaining = prompt_tokens;
        let (mut hit, mut new) = (0u64, 0u64);
        let mut path = Vec::new();
        let mut prefix: Vec<u64> = Vec::new();
        for (i, &h) in hashes.iter().enumerate() {
            if remaining == 0 {
                break;
            }
            let chunk = if i + 1 == hashes.len() {
                remaining
            } else {
                self.chunk_tokens.min(remaining)
            };
            remaining -= chunk;
            prefix.push(h);
            match self.nodes.get_mut(&prefix) {
                Some((rc, _)) => {
                    *rc += 1;
                    hit += u64::from(chunk);
                }
                None => {
                    self.nodes.insert(prefix.clone(), (1, chunk));
                    new += u64::from(chunk);
                }
            }
            path.push(prefix.clone());
        }
        (hit, new, path)
    }

    fn release(&mut self, path: &[Vec<u64>]) {
        for p in path {
            let (rc, _) = self
                .nodes
                .get_mut(p)
                .expect("oracle: released path must be live");
            assert!(*rc > 0, "oracle: double release");
            *rc -= 1;
        }
    }

    /// Mirrors `evict_unreferenced`: an unreferenced node dies only once no
    /// live child remains, to a fixpoint.
    fn evict_unreferenced(&mut self) -> u64 {
        let mut reclaimed = 0u64;
        loop {
            let victims: Vec<Vec<u64>> =
                self.nodes
                    .iter()
                    .filter(|(path, (rc, _))| {
                        *rc == 0
                            && !self.nodes.keys().any(|other| {
                                other.len() == path.len() + 1 && other.starts_with(path)
                            })
                    })
                    .map(|(path, _)| path.clone())
                    .collect();
            if victims.is_empty() {
                return reclaimed;
            }
            for path in victims {
                let (_, tokens) = self.nodes.remove(&path).expect("victim exists");
                reclaimed += u64::from(tokens);
            }
        }
    }

    fn resident_tokens(&self) -> u64 {
        self.nodes.values().map(|&(_, t)| u64::from(t)).sum()
    }
}

#[derive(Clone, Debug)]
enum Op {
    /// Insert a prompt: chunk hashes (small alphabet to force sharing) and
    /// a token count deliberately *decoupled* from the hash count.
    Insert(Vec<u64>, u32),
    /// Release the k-th outstanding request's pins (mod the live count).
    Release(usize),
    /// Evict everything unreferenced.
    Evict,
}

/// Decodes one generated `(kind, arg, tokens)` tuple into an op (the
/// vendored proptest stand-in has no `prop_oneof`, so scripts are tuples —
/// the same encoding the fault-invariant suite uses). Inserts dominate;
/// hash paths are 1–4 chunks over a 4-symbol alphabet to force sharing.
fn decode(kind: u8, arg: u64, tokens: u32) -> Op {
    match kind {
        0..=4 => {
            let len = 1 + (arg % 4) as usize;
            let hashes = (0..len).map(|i| (arg >> (2 * i + 2)) & 3).collect();
            Op::Insert(hashes, tokens)
        }
        5..=6 => Op::Release(arg as usize),
        _ => Op::Evict,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn prefix_cache_matches_plain_map_oracle(
        ops in proptest::collection::vec((0u8..8, 0u64..u64::MAX, 1u32..60), 1..60),
    ) {
        let chunk = 16;
        let mut pc = PrefixCache::new(chunk);
        let mut model = Model::new(chunk);
        // Outstanding pins: (real path, oracle path), released exactly once.
        let mut outstanding: Vec<(Vec<PrefixNodeId>, Vec<Vec<u64>>)> = Vec::new();

        for &(kind, arg, tokens) in &ops {
            match &decode(kind, arg, tokens) {
                Op::Insert(hashes, tokens) => {
                    let got = pc.insert(hashes, *tokens);
                    let (hit, new, mpath) = model.insert(hashes, *tokens);
                    prop_assert_eq!(got.hit_tokens, hit, "hit tokens diverge");
                    prop_assert_eq!(got.new_tokens, new, "new tokens diverge");
                    prop_assert_eq!(
                        got.hit_tokens + got.new_tokens,
                        u64::from(*tokens),
                        "every prompt token is either hit or written"
                    );
                    prop_assert_eq!(got.path.len(), mpath.len(), "pinned path length");
                    outstanding.push((got.path, mpath));
                }
                Op::Release(k) => {
                    if !outstanding.is_empty() {
                        let (rpath, mpath) = outstanding.remove(k % outstanding.len());
                        pc.release(&rpath);
                        model.release(&mpath);
                    }
                }
                Op::Evict => {
                    prop_assert_eq!(
                        pc.evict_unreferenced(),
                        model.evict_unreferenced(),
                        "reclaimed tokens diverge"
                    );
                }
            }
            prop_assert_eq!(pc.resident_tokens(), model.resident_tokens());
            prop_assert_eq!(pc.node_count(), model.nodes.len(), "live node count");
            prop_assert_eq!(pc.release_underflows(), 0);
            pc.check_invariants();
        }

        // Drain: releasing every pin and evicting empties both worlds.
        for (rpath, mpath) in outstanding.drain(..) {
            pc.release(&rpath);
            model.release(&mpath);
        }
        prop_assert_eq!(pc.evict_unreferenced(), model.evict_unreferenced());
        prop_assert_eq!(pc.resident_tokens(), 0);
        prop_assert_eq!(model.resident_tokens(), 0);
        prop_assert_eq!(pc.check_invariants(), 0);
    }
}
