//! Quickstart: the MRM device API in five minutes.
//!
//! Creates an hours-class Managed-Retention Memory device, writes a KV-cache
//! stream with a lifetime hint (DCM picks the retention class), reads it back
//! with ECC-qualified integrity, watches it degrade toward its retention
//! deadline, scrubs it, and deletes it.
//!
//! Run with: `cargo run --release --example quickstart`

use mrm::core::config::MrmConfig;
use mrm::core::device::{MrmDevice, ReadIntegrity};
use mrm::sim::time::{SimDuration, SimTime};
use mrm::sim::units::{format_bytes, GIB, MIB};

fn main() {
    // A 4 GiB hours-class MRM device (12 h native retention, DCM enabled,
    // large-block BCH ECC).
    let mut dev = MrmDevice::new(MrmConfig::hours_class(4 * GIB));
    println!(
        "device: {} capacity, retention class ladder via DCM, ECC overhead {:.2}%",
        format_bytes(dev.stats().capacity_bytes),
        dev.config().ecc.overhead() * 100.0
    );

    // A KV cache expected to live ~25 minutes (decode tail + follow-up
    // window). DCM quantizes the hint onto the hardware retention ladder.
    let t0 = SimTime::ZERO;
    let stream = dev.create_stream(SimDuration::from_mins(25)).unwrap();
    println!(
        "\ncreated stream at retention class {:?}",
        dev.stream_class(stream).unwrap()
    );

    // Append self-attention vectors as decode proceeds.
    for _ in 0..8 {
        dev.append(t0, stream, 4 * MIB).unwrap();
    }
    println!("appended {}", format_bytes(dev.stream_len(stream).unwrap()));

    // Read during the healthy window: clean.
    let r = dev
        .read(t0 + SimDuration::from_mins(10), stream, 0, 16 * MIB)
        .unwrap();
    println!(
        "read @10min: integrity {:?}, rber {:.1e}, codeword failure {:.1e}",
        r.integrity, r.rber, r.cw_fail_prob
    );
    assert_eq!(r.integrity, ReadIntegrity::Clean);

    // Near the deadline the control plane sees it degraded (scrub overdue).
    let late = t0 + SimDuration::from_mins(50); // 1 h class, 70% margin
    let r = dev.read(late, stream, 0, 16 * MIB).unwrap();
    println!(
        "read @50min: integrity {:?} — scrub is overdue",
        r.integrity
    );

    // The deadline registry drives the §4 refresh decision.
    let expiring = dev.streams_expiring_before(t0 + SimDuration::from_hours(2));
    println!("expiring before t+2h: {expiring:?}");

    // Scrub re-arms retention (charged as housekeeping, visible in stats).
    let bytes = dev.scrub_stream(late, stream).unwrap();
    let r = dev
        .read(late + SimDuration::from_mins(10), stream, 0, 16 * MIB)
        .unwrap();
    println!(
        "scrubbed {} -> integrity {:?}",
        format_bytes(bytes),
        r.integrity
    );

    // Soft state: dropping a stream is free — cells just get reused.
    dev.delete_stream(stream).unwrap();
    let s = dev.stats();
    println!(
        "\nfinal stats: {} live, {} scrubs, energy: {:.3} mJ demand write, {:.3} mJ housekeeping",
        format_bytes(s.live_bytes),
        s.scrubs,
        s.energy.write_j * 1e3,
        s.energy.housekeeping_j * 1e3
    );
}
