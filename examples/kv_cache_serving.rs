//! KV-cache serving scenario: one accelerator's decode loop with its KV
//! caches in an MRM device, driven by the workload engine.
//!
//! Shows the §2/§4 data path end to end: prefill writes the prompt's
//! self-attention vectors as an append-only stream, every decode step reads
//! the whole cache and appends one vector, completed contexts stay cached
//! for follow-ups, and an expired follow-up triggers the soft-state
//! recovery path (recompute) instead of data loss.
//!
//! Run with: `cargo run --release --example kv_cache_serving`

use mrm::core::config::MrmConfig;
use mrm::core::device::{MrmDevice, ReadIntegrity};
use mrm::sim::rng::SimRng;
use mrm::sim::time::{SimDuration, SimTime};
use mrm::sim::units::{format_bytes, GIB};
use mrm::workload::engine::DecodeEngine;
use mrm::workload::model::{ModelConfig, Quantization};
use mrm::workload::traces::{RequestSampler, TraceKind};

fn main() {
    let model = ModelConfig::llama2_70b();
    let quant = Quantization::Fp16;
    let engine = DecodeEngine::new(model.clone(), quant);
    let kvpt = model.kv_bytes_per_token(quant);

    // A 16 GiB hours-class MRM device holds this accelerator's KV caches.
    let mut dev = MrmDevice::new(MrmConfig::hours_class(16 * GIB));
    let mut rng = SimRng::seed_from(7);
    let sampler = RequestSampler::new(TraceKind::Conversation, 4096);

    let mut now = SimTime::ZERO;
    let decode_step = SimDuration::from_millis(33); // ~30 tok/s/request

    println!(
        "serving 5 conversations; KV vectors are {} each\n",
        format_bytes(kvpt)
    );
    let mut cached = Vec::new();
    for req in 0..5 {
        let (prompt, output) = sampler.sample(&mut rng);
        // Lifetime hint: decode tail + a 10-minute follow-up window.
        let lifetime =
            SimDuration::from_secs_f64(f64::from(output) / 30.0) + SimDuration::from_mins(10);
        let stream = dev.create_stream(lifetime).unwrap();

        // Prefill: the whole prompt's vectors land as one append burst.
        dev.append(now, stream, u64::from(prompt) * kvpt).unwrap();

        // Decode: read-everything / append-one-vector per token (§2.2).
        let mut context = prompt;
        #[allow(clippy::explicit_counter_loop)] // context is decode state, not an index
        for _ in 0..output.min(40) {
            let cost = engine.token_cost(context);
            let cache_bytes = dev.stream_len(stream).unwrap();
            let r = dev.read(now, stream, 0, cache_bytes).unwrap();
            assert_ne!(r.integrity, ReadIntegrity::Expired);
            dev.append(now, stream, cost.kv_write).unwrap();
            context += 1;
            now += decode_step;
        }
        println!(
            "req {req}: prompt {prompt} tokens, decoded {} tokens, cache {} at class {:?}",
            output.min(40),
            format_bytes(dev.stream_len(stream).unwrap()),
            dev.stream_class(stream).unwrap()
        );
        cached.push((stream, now));
    }

    // A follow-up inside the retention window reuses the cache...
    let (fresh, _) = cached[4];
    let soon = now + SimDuration::from_mins(5);
    let r = dev
        .read(soon, fresh, 0, dev.stream_len(fresh).unwrap())
        .unwrap();
    println!(
        "\nfollow-up @+5min on req 4: integrity {:?} -> cache hit, no prefill",
        r.integrity
    );

    // ...but one after the (DCM-chosen) retention lapsed must recompute.
    let (old, _) = cached[0];
    let class = dev.stream_class(old).unwrap();
    let too_late = now + class.duration() + SimDuration::from_mins(5);
    let r = dev
        .read(too_late, old, 0, dev.stream_len(old).unwrap())
        .unwrap();
    println!(
        "follow-up after the {} class lapsed: integrity {:?} -> soft state, recompute the prefill (§4)",
        class.label(),
        r.integrity
    );
    assert_eq!(r.integrity, ReadIntegrity::Expired);

    let s = dev.stats();
    println!(
        "\ndevice: {} live across {} streams, write energy {:.2} mJ, zero device-side housekeeping ({:.2} mJ)",
        format_bytes(s.live_bytes),
        s.streams,
        s.energy.write_j * 1e3,
        s.energy.housekeeping_j * 1e3
    );
}
