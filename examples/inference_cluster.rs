//! Inference-cluster scenario: serve Llama2-70B on four memory systems and
//! compare what the paper cares about — tokens/s, J/token, housekeeping
//! energy, capacity headroom, and cost efficiency.
//!
//! This is the §4 "retention-aware data placement and scheduling" story as
//! a runnable program: the same Splitwise-style traffic against HBM-only,
//! HBM+LPDDR, HBM+MRM (fixed retention), and HBM+MRM with DCM.
//!
//! Run with: `cargo run --release --example inference_cluster`

use mrm::analysis::report::Table;
use mrm::sim::time::SimDuration;
use mrm::sim::units::format_bytes;
use mrm::tiering::cluster::{run_cluster, ClusterConfig};
use mrm::tiering::placement::PlacementPolicy;

fn main() {
    let accelerators = 2;
    let arrivals = 8.0;
    let secs = 60;

    println!(
        "simulating {accelerators} accelerators serving Llama2-70B fp16, {arrivals} req/s, {secs} s\n"
    );

    let mut t = Table::new(&[
        "memory system",
        "tok/s",
        "J/token",
        "housekeeping J",
        "KV capacity",
        "tok/s per 1k cost",
        "p50 ms",
        "cache hits",
        "recomputes",
        "evictions",
    ]);
    let mut reports = Vec::new();
    for policy in PlacementPolicy::all() {
        let mut cfg = ClusterConfig::llama70b(policy, accelerators, arrivals);
        cfg.duration = SimDuration::from_secs(secs);
        let r = run_cluster(cfg);
        t.row(&[
            &r.policy,
            &format!("{:.0}", r.tokens_per_s),
            &format!("{:.4}", r.j_per_token),
            &format!("{:.1}", r.housekeeping_j),
            &format_bytes(r.kv_capacity_bytes),
            &format!("{:.1}", r.tokens_per_s_per_kcost),
            &r.p50_latency_ms
                .map_or_else(|| "-".to_string(), |p| format!("{p:.0}")),
            &r.cache_hits.to_string(),
            &r.recomputes.to_string(),
            &r.evictions.to_string(),
        ]);
        reports.push(r);
    }
    print!("{}", t.render());

    let hbm = &reports[0];
    let mrm = &reports[2];
    println!(
        "\nHBM+MRM vs HBM-only: {:.1}x tokens/s, {:.1}x lower J/token, {:.1}x lower housekeeping,",
        mrm.tokens_per_s / hbm.tokens_per_s,
        hbm.j_per_token / mrm.j_per_token,
        hbm.housekeeping_j / mrm.housekeeping_j.max(1e-9),
    );
    println!(
        "{:.1}x the KV capacity headroom — the §3 opportunity, end to end.",
        mrm.kv_capacity_bytes as f64 / hbm.kv_capacity_bytes as f64
    );
}
