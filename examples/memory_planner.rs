//! Memory-planner scenario: size a memory system for a model deployment.
//!
//! Given a model, a quantization and a target context load, walk the
//! paper's analysis: footprint (§2), the HBM provisioning scorecard (§2.2),
//! endurance requirements vs. candidate technologies (Figure 1), and the
//! housekeeping bill (§3) — ending with a recommended tier layout (§4).
//!
//! Run with: `cargo run --release --example memory_planner`

use mrm::analysis::endurance::{figure1_row, paper_requirements};
use mrm::analysis::energy::housekeeping_row;
use mrm::analysis::provisioning::paper_scorecard;
use mrm::analysis::report::Table;
use mrm::device::tech::presets;
use mrm::sim::time::SimDuration;
use mrm::sim::units::{format_bytes, format_sci};
use mrm::workload::model::{ModelConfig, Quantization};

fn main() {
    let model = ModelConfig::llama2_70b();
    let quant = Quantization::Fp16;
    let contexts = 128u64;
    let ctx_tokens = 2048u64;

    println!(
        "planning memory for {} at {}, {} concurrent 2k contexts\n",
        model.name,
        quant.label(),
        contexts
    );

    // Step 1: footprint.
    let weights = model.weights_bytes(quant);
    let kv_total = contexts * model.kv_cache_bytes(ctx_tokens, quant);
    let act = model.activation_bytes(contexts as u32, quant);
    let mut t = Table::new(&["structure", "bytes", "access pattern", "lifetime"]);
    t.row(&[
        "weights",
        &format_bytes(weights),
        "sequential read, every token",
        "deployment (hours-days)",
    ]);
    t.row(&[
        "KV caches",
        &format_bytes(kv_total),
        "sequential read + append",
        "context (minutes-hours)",
    ]);
    t.row(&[
        "activations",
        &format_bytes(act),
        "write + read back",
        "one forward pass (ms)",
    ]);
    print!("{}", t.render());

    // Step 2: what HBM wastes on this workload.
    println!();
    let mut t = Table::new(&["dimension", "required", "HBM provides", "verdict"]);
    for row in paper_scorecard() {
        t.row(&[
            &row.dimension,
            &row.required,
            &row.provided,
            row.verdict.label(),
        ]);
    }
    print!("{}", t.render());

    // Step 3: endurance screening of candidate bulk-tier technologies.
    println!();
    let req = paper_requirements();
    let mut t = Table::new(&["candidate", "endurance", "meets 5y requirement band?"]);
    for tech in [
        presets::nand_slc(),
        presets::pcm_optane_product(),
        presets::rram_potential(),
        presets::stt_mram_potential(),
        presets::mrm_hours(),
    ] {
        let row = figure1_row(&tech, &req);
        t.row(&[
            &row.name,
            &format_sci(row.endurance),
            if row.margin_vs_max >= 1.0 {
                "yes"
            } else {
                "no"
            },
        ]);
    }
    print!("{}", t.render());

    // Step 4: the housekeeping bill for the KV working set (6 h lifetime).
    println!();
    let mut t = Table::new(&["bulk tier", "housekeeping J per GB over 6h"]);
    for tech in [presets::hbm3e(), presets::nand_slc(), presets::mrm_hours()] {
        let hk = housekeeping_row(&tech, 1_000_000_000, SimDuration::from_hours(6), 2.5);
        t.row(&[&hk.tech, &format!("{:.3}", hk.housekeeping_j)]);
    }
    print!("{}", t.render());

    // Step 5: the recommendation.
    println!();
    println!("recommended layout (§4):");
    println!(
        "  HBM   (2 stacks, {}): activations — write-heavy, ms lifetime",
        format_bytes(2 * presets::hbm3e().capacity_bytes)
    );
    println!(
        "  MRM   (8 pkgs, {}): weights + KV caches — read-dominated, hours lifetime,",
        format_bytes(8 * presets::mrm_hours().capacity_bytes)
    );
    println!("         retention classes per stream via DCM, software scrub before deadlines");
    println!("  (LPDDR optional as an archival prefix-cache tier)");
}
