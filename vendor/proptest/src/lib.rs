//! Vendored stand-in for `proptest`, built for offline builds of the `mrm`
//! workspace.
//!
//! Implements the subset the workspace's property tests use: the
//! [`proptest!`] macro (including the `#![proptest_config(..)]` header),
//! range and tuple strategies, [`collection::vec`] / [`collection::btree_set`],
//! [`any`], `prop::bool::ANY`, and the `prop_assert*` / `prop_assume!`
//! macros. There is no shrinking: a failing case reports its case number and
//! deterministic seed instead. Every test function derives its stream from a
//! hash of its module path and name, so runs are reproducible.

use std::ops::{Range, RangeInclusive};

/// Outcome of one generated test case.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case did not satisfy a `prop_assume!`; it is skipped.
    Reject,
    /// An assertion failed with the given message.
    Fail(String),
}

/// Per-test configuration. Only `cases` is honoured.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// How many accepted cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` accepted cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 64 keeps the suite fast on small CI
        // machines while exercising the same code paths.
        ProptestConfig { cases: 64 }
    }
}

/// The deterministic RNG behind case generation (SplitMix64-seeded
/// xoshiro256**, same construction as `mrm-sim`'s kernel RNG).
#[derive(Clone, Debug)]
pub struct TestRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TestRng {
    /// Seeds the stream for `test_name`'s `case`-th attempt.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let mut sm = h ^ (u64::from(case) << 32) ^ u64::from(case);
        TestRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, bound)`; `bound` must be positive.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Multiply-shift; the tiny modulo bias is irrelevant for test-input
        // generation.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }
}

/// A generator of test inputs.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            // `as` casts are required: the macro also instantiates for
            // usize/isize, which have no `From` conversion into i128.
            #[allow(clippy::cast_lossless)]
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let width = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(rng.below(width) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            #[allow(clippy::cast_lossless)]
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let width = (hi as i128 - lo as i128) + 1;
                if width > u64::MAX as i128 {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.below(width as u64) as $t)
            }
        }
    )*};
}
impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let x = self.start + (rng.next_f64() as $t) * (self.end - self.start);
                // Floating rounding can land exactly on `end`; pull back in.
                if x >= self.end { self.start } else { x }
            }
        }
    )*};
}
impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.sample(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy produced by [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-range strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// Collection strategies (`vec`, `btree_set`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// A collection size: fixed or drawn from a range.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        /// Inclusive upper bound.
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    impl SizeRange {
        fn sample(&self, rng: &mut TestRng) -> usize {
            if self.lo == self.hi {
                self.lo
            } else {
                self.lo + rng.below((self.hi - self.lo + 1) as u64) as usize
            }
        }
    }

    /// Strategy for `Vec<T>` with element strategy `S`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// A `Vec` of `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy for `BTreeSet<T>`.
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = std::collections::BTreeSet<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.sample(rng);
            let mut set = std::collections::BTreeSet::new();
            // Duplicates shrink the set; bound the retries so tight value
            // ranges still terminate.
            let mut attempts = 0usize;
            while set.len() < n && attempts < n * 20 + 20 {
                set.insert(self.element.sample(rng));
                attempts += 1;
            }
            set
        }
    }

    /// A `BTreeSet` with `size` elements drawn from `element` (fewer when
    /// the element domain is too small).
    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S> {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Namespaced strategies mirroring upstream's `prop::` module.
pub mod prop {
    /// Boolean strategies.
    pub mod bool {
        use crate::{Strategy, TestRng};

        /// Strategy yielding unbiased booleans.
        pub struct BoolAny;

        impl Strategy for BoolAny {
            type Value = bool;
            fn sample(&self, rng: &mut TestRng) -> bool {
                rng.next_u64() & 1 == 1
            }
        }

        /// The unbiased boolean strategy.
        pub const ANY: BoolAny = BoolAny;
    }
}

/// Everything a test module needs, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest,
        ProptestConfig, Strategy,
    };
}

/// Defines property tests: each `fn name(pat in strategy, ..) { .. }` becomes
/// a `#[test]` that runs the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident( $($p:pat in $s:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                let __test_name = concat!(module_path!(), "::", stringify!($name));
                let mut __accepted: u32 = 0;
                let mut __attempt: u32 = 0;
                while __accepted < __cfg.cases {
                    __attempt += 1;
                    if __attempt > __cfg.cases.saturating_mul(16).max(64) {
                        panic!(
                            "proptest {}: too many rejected cases ({} accepted of {} wanted)",
                            __test_name, __accepted, __cfg.cases
                        );
                    }
                    let mut __rng = $crate::TestRng::for_case(__test_name, __attempt);
                    let __outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| {
                            $(let $p = $crate::Strategy::sample(&($s), &mut __rng);)+
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    match __outcome {
                        ::std::result::Result::Ok(()) => __accepted += 1,
                        ::std::result::Result::Err($crate::TestCaseError::Reject) => {}
                        ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest {} failed on case {} (deterministic; re-run to reproduce):\n{}",
                                __test_name, __attempt, msg
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!("assertion failed: {}\n  {}", stringify!($cond), format!($($fmt)+)),
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__l, __r) = (&$a, &$b);
        if !(__l == __r) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n  right: {:?}",
                stringify!($a), stringify!($b), __l, __r
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$a, &$b);
        if !(__l == __r) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n  right: {:?}\n  {}",
                stringify!($a), stringify!($b), __l, __r, format!($($fmt)+)
            )));
        }
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__l, __r) = (&$a, &$b);
        if __l == __r {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($a),
                stringify!($b),
                __l
            )));
        }
    }};
}

/// Skips cases that do not satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn rng_is_deterministic_per_case() {
        let mut a = super::TestRng::for_case("t", 1);
        let mut b = super::TestRng::for_case("t", 1);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = super::TestRng::for_case("t", 2);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 10u64..20, y in -5i64..5, z in 0.25f64..0.75) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((-5..5).contains(&y));
            prop_assert!((0.25..0.75).contains(&z));
        }

        #[test]
        fn inclusive_and_collections(
            bit in 0u8..=1,
            xs in crate::collection::vec(0u32..100, 1..10),
            set in crate::collection::btree_set(0usize..1000, 3..=5),
            flag in prop::bool::ANY,
        ) {
            prop_assert!(bit <= 1);
            prop_assert!(!xs.is_empty() && xs.len() < 10);
            prop_assert!(xs.iter().all(|&x| x < 100));
            prop_assert!(set.len() <= 5);
            let _ = flag;
        }

        #[test]
        fn tuples_and_any(pair in (0u64..10, 0.0f64..1.0), raw in any::<u64>()) {
            prop_assert!(pair.0 < 10 && pair.1 < 1.0);
            let _ = raw;
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn config_header_accepted(x in 0u64..5) {
            prop_assert!(x < 5);
        }
    }

    #[test]
    #[should_panic(expected = "too many rejected cases")]
    fn assume_rejection_is_bounded() {
        proptest! {
            fn always_rejects(x in 0u64..5) {
                prop_assume!(x > 10);
                let _ = x;
            }
        }
        always_rejects();
    }
}
