//! Vendored stand-in for `serde_json` over the vendored `serde` value tree.
//!
//! Provides the pieces the `mrm` workspace uses: [`to_string`],
//! [`to_string_pretty`], [`from_str`], [`to_value`]/[`from_value`], and the
//! [`Value`] type itself. Output is deterministic: object fields keep their
//! declaration order and float formatting is fixed, so identical reports
//! serialize to identical bytes.
//!
//! Mirrors upstream behaviour where it matters to the workspace: non-finite
//! floats render as `null` (and therefore fail to round-trip as numbers).

use std::fmt::Write as _;

use serde::{Deserialize, Serialize};
pub use serde::{Error, Value};

/// A `Result` specialized to JSON errors.
pub type Result<T> = std::result::Result<T, Error>;

/// Renders `value` into a [`Value`] tree.
pub fn to_value<T: Serialize>(value: &T) -> Value {
    value.to_value()
}

/// Reconstructs a `T` from a [`Value`] tree.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T> {
    T::from_value(value)
}

/// Serializes to compact JSON.
pub fn to_string<T: Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes to human-readable JSON (two-space indent).
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses a `T` from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at offset {}",
            p.pos
        )));
    }
    T::from_value(&v)
}

// ---------------------------------------------------------------------------
// Printer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::U64(x) => {
            let _ = write!(out, "{x}");
        }
        Value::I64(x) => {
            let _ = write!(out, "{x}");
        }
        Value::F64(x) => write_f64(out, *x),
        Value::Str(s) => write_escaped(out, s),
        Value::Array(items) => write_seq(
            out,
            items.len(),
            indent,
            level,
            '[',
            ']',
            |out, i, ind, lvl| {
                write_value(out, &items[i], ind, lvl);
            },
        ),
        Value::Object(entries) => write_seq(
            out,
            entries.len(),
            indent,
            level,
            '{',
            '}',
            |out, i, ind, lvl| {
                let (k, val) = &entries[i];
                write_escaped(out, k);
                out.push(':');
                if ind.is_some() {
                    out.push(' ');
                }
                write_value(out, val, ind, lvl);
            },
        ),
    }
}

fn write_seq(
    out: &mut String,
    len: usize,
    indent: Option<usize>,
    level: usize,
    open: char,
    close: char,
    mut item: impl FnMut(&mut String, usize, Option<usize>, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', width * (level + 1)));
        }
        item(out, i, indent, level + 1);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * level));
    }
    out.push(close);
}

/// Fixed float formatting: integral values get a trailing `.0` (as upstream
/// serde_json does), very large/small magnitudes use exponent form, and
/// non-finite values render as `null`.
fn write_f64(out: &mut String, x: f64) {
    if !x.is_finite() {
        out.push_str("null");
        return;
    }
    // Bit-equality with trunc() is exact integrality (x is finite here, and
    // trunc preserves the sign of zero); `abs() > 0.0` is exact non-zeroness.
    let _ = if x.to_bits() == x.trunc().to_bits() && x.abs() < 1e15 {
        write!(out, "{x:.1}")
    } else if x.abs() > 0.0 && (x.abs() >= 1e16 || x.abs() < 1e-6) {
        write!(out, "{x:e}")
    } else {
        write!(out, "{x}")
    };
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected {:?} at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(Error::custom("expected `,` or `]` in array")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let val = self.parse_value()?;
                    entries.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(entries));
                        }
                        _ => return Err(Error::custom("expected `,` or `}` in object")),
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error::custom(format!(
                "unexpected input {:?} at offset {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let rest = &self.bytes[self.pos..];
            let c = std::str::from_utf8(rest)
                .map_err(|_| Error::custom("invalid utf-8 in string"))?
                .chars()
                .next()
                .ok_or_else(|| Error::custom("unterminated string"))?;
            self.pos += c.len_utf8();
            match c {
                '"' => return Ok(s),
                '\\' => {
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::custom("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::custom("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::custom("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::custom("bad \\u escape"))?;
                            self.pos += 4;
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::custom("invalid \\u code point"))?,
                            );
                        }
                        other => {
                            return Err(Error::custom(format!(
                                "unknown escape \\{}",
                                other as char
                            )))
                        }
                    }
                }
                c => s.push(c),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error::custom(format!("invalid number {text:?}")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::I64)
                .map_err(|_| Error::custom(format!("invalid integer {text:?}")))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|_| Error::custom(format!("invalid integer {text:?}")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trip() {
        let s = to_string(&vec![1u64, 2, 3]).unwrap();
        assert_eq!(s, "[1,2,3]");
        let back: Vec<u64> = from_str(&s).unwrap();
        assert_eq!(back, vec![1, 2, 3]);
    }

    #[test]
    fn float_formats() {
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(to_string(&0.5f64).unwrap(), "0.5");
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
        // The writer emits enough digits for an exact round-trip.
        let big: f64 = from_str(&to_string(&1.23e300f64).unwrap()).unwrap();
        assert_eq!(big.to_bits(), 1.23e300f64.to_bits());
        let tiny: f64 = from_str(&to_string(&4.5e-9f64).unwrap()).unwrap();
        assert_eq!(tiny.to_bits(), 4.5e-9f64.to_bits());
    }

    #[test]
    fn strings_escape() {
        let s = "a\"b\\c\nd\u{1}".to_string();
        let json = to_string(&s).unwrap();
        assert_eq!(json, r#""a\"b\\c\nd\u0001""#);
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn pretty_output_is_indented() {
        let v = Value::Object(vec![
            ("a".to_string(), Value::U64(1)),
            ("b".to_string(), Value::Array(vec![Value::Bool(true)])),
        ]);
        let mut out = String::new();
        super::write_value(&mut out, &v, Some(2), 0);
        assert_eq!(out, "{\n  \"a\": 1,\n  \"b\": [\n    true\n  ]\n}");
    }

    #[test]
    fn object_order_is_preserved() {
        let json = r#"{"z": 1, "a": 2}"#;
        let v: Value = {
            let mut p = Parser {
                bytes: json.as_bytes(),
                pos: 0,
            };
            p.parse_value().unwrap()
        };
        match v {
            Value::Object(entries) => {
                assert_eq!(entries[0].0, "z");
                assert_eq!(entries[1].0, "a");
            }
            _ => panic!("not an object"),
        }
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<u64>("1 x").is_err());
    }
}
