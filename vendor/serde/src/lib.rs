//! Vendored stand-in for `serde`, built for offline builds of the `mrm`
//! workspace.
//!
//! Instead of serde's visitor architecture, this crate serializes through a
//! concrete JSON-like [`Value`] tree: [`Serialize`] renders a value into a
//! `Value`, [`Deserialize`] reconstructs one from it. The companion
//! `serde_json` crate handles text. Object fields keep declaration order, so
//! serialized output is deterministic — a property the sweep-engine
//! determinism tests rely on.
//!
//! The supported surface is exactly what the workspace uses: plain structs,
//! newtype structs, fieldless enums, the std scalar/collection types below,
//! and `#[derive(Serialize, Deserialize)]` via the vendored `serde_derive`.

use std::collections::BTreeMap;
use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A JSON-like value tree. Objects preserve insertion order.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null` (also the rendering of non-finite floats).
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Unsigned integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object, in insertion order.
    Object(Vec<(String, Value)>),
}

/// A shared `null` to hand out references to.
pub static NULL: Value = Value::Null;

impl Value {
    /// Looks up `name` in an object, yielding `null` when absent (or when
    /// `self` is not an object); `Deserialize` impls turn that into a typed
    /// error or `None` for `Option` fields.
    pub fn field(&self, name: &str) -> &Value {
        match self {
            Value::Object(entries) => entries
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .unwrap_or(&NULL),
            _ => &NULL,
        }
    }

    /// A short label for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::U64(_) | Value::I64(_) => "integer",
            Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// The string payload, or a type error.
    pub fn as_str(&self) -> Result<&str, Error> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(Error::custom(format!(
                "expected string, got {}",
                other.kind()
            ))),
        }
    }
}

/// Serialization/deserialization error: a plain message with context frames.
#[derive(Clone, Debug, PartialEq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Creates an error from a message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }

    /// Wraps the error with the struct/field it occurred in.
    pub fn in_field(self, ty: &str, field: &str) -> Self {
        Error {
            msg: format!("{ty}.{field}: {}", self.msg),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Renders `self` into a [`Value`] tree.
pub trait Serialize {
    /// The value-tree form of `self`.
    fn to_value(&self) -> Value;
}

/// Reconstructs `Self` from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Parses the value tree, with a typed error on mismatch.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------------
// Serialize impls
// ---------------------------------------------------------------------------

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! impl_ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(u64::from(*self))
            }
        }
    )*};
}
impl_ser_uint!(u8, u16, u32, u64);

impl Serialize for usize {
    fn to_value(&self) -> Value {
        Value::U64(*self as u64)
    }
}

macro_rules! impl_ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = i64::from(*self);
                if v >= 0 { Value::U64(v as u64) } else { Value::I64(v) }
            }
        }
    )*};
}
impl_ser_int!(i8, i16, i32, i64);

impl Serialize for isize {
    fn to_value(&self) -> Value {
        let v = *self as i64;
        if v >= 0 {
            Value::U64(v as u64)
        } else {
            Value::I64(v)
        }
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<K: AsRef<str>, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.as_ref().to_string(), v.to_value()))
                .collect(),
        )
    }
}

macro_rules! impl_ser_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
    )*};
}
impl_ser_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H)
}

// ---------------------------------------------------------------------------
// Deserialize impls
// ---------------------------------------------------------------------------

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!(
                "expected bool, got {}",
                other.kind()
            ))),
        }
    }
}

fn int_from_value(v: &Value) -> Result<i128, Error> {
    match v {
        Value::U64(x) => Ok(i128::from(*x)),
        Value::I64(x) => Ok(i128::from(*x)),
        other => Err(Error::custom(format!(
            "expected integer, got {}",
            other.kind()
        ))),
    }
}

macro_rules! impl_de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let raw = int_from_value(v)?;
                <$t>::try_from(raw).map_err(|_| {
                    Error::custom(format!(
                        "integer {raw} out of range for {}", stringify!($t)
                    ))
                })
            }
        }
    )*};
}
impl_de_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::F64(x) => Ok(*x),
            Value::U64(x) => Ok(*x as f64),
            Value::I64(x) => Ok(*x as f64),
            other => Err(Error::custom(format!(
                "expected number, got {}",
                other.kind()
            ))),
        }
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str().map(str::to_string)
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::custom(format!(
                "expected array, got {}",
                other.kind()
            ))),
        }
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, val)| Ok((k.clone(), V::from_value(val)?)))
                .collect(),
            other => Err(Error::custom(format!(
                "expected object, got {}",
                other.kind()
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip_through_values() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i32::from_value(&(-7i32).to_value()).unwrap(), -7);
        assert_eq!(
            f64::from_value(&1.5f64.to_value()).unwrap().to_bits(),
            1.5f64.to_bits()
        );
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_value()).unwrap(),
            "hi".to_string()
        );
    }

    #[test]
    fn option_and_vec() {
        let v: Option<u32> = None;
        assert_eq!(v.to_value(), Value::Null);
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
        let xs = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::from_value(&xs.to_value()).unwrap(), xs);
    }

    #[test]
    fn missing_field_reads_as_null() {
        let obj = Value::Object(vec![("a".to_string(), Value::U64(1))]);
        assert_eq!(obj.field("a"), &Value::U64(1));
        assert_eq!(obj.field("b"), &Value::Null);
    }

    #[test]
    fn int_range_errors() {
        assert!(u8::from_value(&Value::U64(300)).is_err());
        assert!(u64::from_value(&Value::I64(-1)).is_err());
    }
}
