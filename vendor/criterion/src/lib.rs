//! Vendored stand-in for `criterion`, built for offline builds of the `mrm`
//! workspace.
//!
//! Implements the API surface the workspace's benches use — groups,
//! `bench_function` / `bench_with_input`, `Throughput`, `BenchmarkId`, the
//! `criterion_group!` / `criterion_main!` macros — over a simple wall-clock
//! harness: each benchmark is calibrated to ~`measurement_ms` of work, then
//! timed, reporting mean ns/iter (and derived throughput when declared).
//! There is no statistical analysis; this keeps `cargo bench` useful for
//! spotting order-of-magnitude regressions without external dependencies.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Declared work per iteration, used to derive throughput.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier: function name plus an optional parameter label.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter rendering.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function.into(), parameter),
        }
    }

    /// An id carrying only a parameter rendering.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Runs closures under timing; handed to benchmark bodies.
pub struct Bencher {
    /// Mean nanoseconds per iteration, filled by `iter`.
    mean_ns: f64,
    /// Target measurement window.
    measurement: Duration,
}

impl Bencher {
    /// Times `routine` on inputs built by `setup`; setup time is excluded
    /// from the measurement.
    pub fn iter_with_setup<I, R>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> R,
    ) {
        let mut n: u64 = 1;
        loop {
            let mut timed = Duration::ZERO;
            for _ in 0..n {
                let input = setup();
                let start = Instant::now();
                std::hint::black_box(routine(input));
                timed += start.elapsed();
            }
            if timed >= self.measurement || n >= 1 << 30 {
                self.mean_ns = timed.as_nanos() as f64 / n as f64;
                return;
            }
            let factor = (self.measurement.as_nanos() as f64 / timed.as_nanos().max(1) as f64)
                .clamp(2.0, 100.0);
            n = (n as f64 * factor).ceil() as u64;
        }
    }

    /// Times `routine`, storing the mean time per call.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        // Calibrate: find an iteration count filling the measurement window.
        let mut n: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..n {
                std::hint::black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= self.measurement || n >= 1 << 30 {
                self.mean_ns = elapsed.as_nanos() as f64 / n as f64;
                return;
            }
            let factor = (self.measurement.as_nanos() as f64 / elapsed.as_nanos().max(1) as f64)
                .clamp(2.0, 100.0);
            n = (n as f64 * factor).ceil() as u64;
        }
    }
}

fn report(name: &str, mean_ns: f64, throughput: Option<Throughput>) {
    let per_iter = if mean_ns >= 1e9 {
        format!("{:.3} s", mean_ns / 1e9)
    } else if mean_ns >= 1e6 {
        format!("{:.3} ms", mean_ns / 1e6)
    } else if mean_ns >= 1e3 {
        format!("{:.3} µs", mean_ns / 1e3)
    } else {
        format!("{mean_ns:.1} ns")
    };
    let rate = match throughput {
        Some(Throughput::Bytes(b)) => {
            let gib_s = b as f64 / mean_ns.max(1e-9) * 1e9 / (1u64 << 30) as f64;
            format!("  ({gib_s:.2} GiB/s)")
        }
        Some(Throughput::Elements(e)) => {
            let me_s = e as f64 / mean_ns.max(1e-9) * 1e9 / 1e6;
            format!("  ({me_s:.2} Melem/s)")
        }
        None => String::new(),
    };
    println!("{name:<48} time: {per_iter}/iter{rate}");
}

/// The benchmark context: creates groups and standalone benchmarks.
pub struct Criterion {
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            // Short but stable window; the vendored harness targets smoke
            // coverage and coarse regression spotting.
            measurement: Duration::from_millis(200),
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            measurement: self.measurement,
            _parent: std::marker::PhantomData,
        }
    }

    /// Benches a standalone function.
    pub fn bench_function<F>(&mut self, name: &str, mut body: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            mean_ns: 0.0,
            measurement: self.measurement,
        };
        body(&mut b);
        report(name, b.mean_ns, None);
        self
    }
}

/// A group of benchmarks sharing a name prefix and throughput declaration.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    measurement: Duration,
    _parent: std::marker::PhantomData<&'a mut Criterion>,
}

impl BenchmarkGroup<'_> {
    /// Declares per-iteration work for throughput reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Accepted for compatibility; the vendored harness sizes runs by time.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for compatibility; the vendored harness uses a fixed window.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d.min(Duration::from_secs(1));
        self
    }

    /// Benches a function within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut body: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            mean_ns: 0.0,
            measurement: self.measurement,
        };
        body(&mut b);
        report(
            &format!("{}/{}", self.name, id.label),
            b.mean_ns,
            self.throughput,
        );
        self
    }

    /// Benches a function parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut body: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            mean_ns: 0.0,
            measurement: self.measurement,
        };
        body(&mut b, input);
        report(
            &format!("{}/{}", self.name, id.label),
            b.mean_ns,
            self.throughput,
        );
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// An identity function that hides a value from the optimizer.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
    (name = $group:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $cfg;
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion {
            measurement: Duration::from_millis(5),
        };
        let mut ran = false;
        c.bench_function("noop", |b| {
            b.iter(|| std::hint::black_box(1 + 1));
            ran = true;
        });
        assert!(ran);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion {
            measurement: Duration::from_millis(5),
        };
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Bytes(1024)).sample_size(10);
        g.bench_function("f", |b| b.iter(|| std::hint::black_box(2 * 2)));
        g.bench_with_input(BenchmarkId::new("p", 3), &3u32, |b, &x| {
            b.iter(|| std::hint::black_box(x * x))
        });
        g.finish();
    }
}
