//! Vendored stand-in for `serde_derive`, written against the `proc_macro`
//! API alone so it builds with no network access.
//!
//! It supports exactly the data shapes the `mrm` workspace serializes:
//!
//! * structs with named fields (no generics),
//! * newtype tuple structs (`struct SimTime(u64);`),
//! * fieldless enums (serialized as the variant name string).
//!
//! Anything fancier (generics, payload-carrying enum variants, `#[serde]`
//! attributes) fails the build with an explicit message rather than
//! silently producing wrong code.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The parsed shape of a `#[derive(..)]` input.
enum Shape {
    /// `struct S { a: T, b: U }` — field names in declaration order.
    Named(Vec<String>),
    /// `struct S(T);` — serialized transparently as the inner value.
    Newtype,
    /// `enum E { A, B }` — variant names in declaration order.
    Enum(Vec<String>),
}

struct Input {
    name: String,
    shape: Shape,
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let input = parse(input);
    let body = match &input.shape {
        Shape::Named(fields) => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "__obj.push(({f:?}.to_string(), ::serde::Serialize::to_value(&self.{f})));\n"
                    )
                })
                .collect();
            format!(
                "let mut __obj: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                 ::std::vec::Vec::new();\n{pushes}::serde::Value::Object(__obj)"
            )
        }
        Shape::Newtype => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::Enum(variants) => {
            let arms: String = variants
                .iter()
                .map(|v| format!("Self::{v} => {v:?},\n"))
                .collect();
            format!("::serde::Value::Str((match self {{ {arms} }}).to_string())")
        }
    };
    format!(
        "impl ::serde::Serialize for {} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n\
         }}",
        input.name
    )
    .parse()
    .expect("serde_derive: generated Serialize impl does not parse")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let input = parse(input);
    let name = &input.name;
    let body = match &input.shape {
        Shape::Named(fields) => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(__v.field({f:?}))\
                         .map_err(|e| e.in_field({:?}, {f:?}))?,\n",
                        name
                    )
                })
                .collect();
            format!("::std::result::Result::Ok(Self {{ {inits} }})")
        }
        Shape::Newtype => {
            "::std::result::Result::Ok(Self(::serde::Deserialize::from_value(__v)?))".to_string()
        }
        Shape::Enum(variants) => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{v:?} => ::std::result::Result::Ok(Self::{v}),\n"))
                .collect();
            format!(
                "match __v.as_str()? {{ {arms} other => ::std::result::Result::Err(\
                 ::serde::Error::custom(format!(\"unknown {name} variant {{other:?}}\"))) }}"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
    .parse()
    .expect("serde_derive: generated Deserialize impl does not parse")
}

/// Parses the derive input down to a name and a [`Shape`].
fn parse(input: TokenStream) -> Input {
    let mut iter = input.into_iter().peekable();

    // Skip outer attributes (`#[...]`) and visibility, find `struct`/`enum`.
    let mut is_enum = false;
    loop {
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next(); // the `[...]` group
            }
            Some(TokenTree::Ident(id)) => match id.to_string().as_str() {
                "struct" => break,
                "enum" => {
                    is_enum = true;
                    break;
                }
                // `pub`, `pub(crate)`, `crate`: visibility tokens to skip.
                "pub" | "crate" => {
                    if matches!(iter.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                    {
                        iter.next();
                    }
                }
                other => panic!("serde_derive: unexpected token `{other}` before struct/enum"),
            },
            other => panic!("serde_derive: unexpected derive input: {other:?}"),
        }
    }

    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected type name, got {other:?}"),
    };
    if matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive: generic type `{name}` is not supported by the vendored derive");
    }

    let body = loop {
        match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break Some(g),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                // Tuple struct: only the newtype shape is supported.
                let n = count_tuple_fields(g.stream());
                assert!(
                    n == 1 && !is_enum,
                    "serde_derive: only single-field tuple structs are supported ({name})"
                );
                break None;
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => {
                panic!("serde_derive: unit struct `{name}` is not supported")
            }
            Some(_) => continue, // `where` clauses etc. do not occur here
            None => panic!("serde_derive: no body found for `{name}`"),
        }
    };

    let shape = match body {
        None => Shape::Newtype,
        Some(g) if is_enum => Shape::Enum(parse_enum_variants(g.stream(), &name)),
        Some(g) => Shape::Named(parse_named_fields(g.stream())),
    };
    Input { name, shape }
}

/// Counts comma-separated fields of a tuple struct body at angle-depth 0.
fn count_tuple_fields(body: TokenStream) -> usize {
    let mut n = 0usize;
    let mut depth = 0i32;
    let mut saw_any = false;
    for tt in body {
        match tt {
            TokenTree::Punct(p) => match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => n += 1,
                _ => {}
            },
            _ => saw_any = true,
        }
    }
    if saw_any {
        n + 1
    } else {
        0
    }
}

/// Extracts field names from a named-struct body.
fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut iter = body.into_iter().peekable();
    loop {
        // Skip attributes (doc comments arrive as `#[doc = "..."]`).
        while matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            iter.next();
            iter.next();
        }
        // Skip visibility.
        if matches!(iter.peek(), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
            iter.next();
            if matches!(iter.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                iter.next();
            }
        }
        match iter.next() {
            Some(TokenTree::Ident(id)) => fields.push(id.to_string()),
            None => break,
            other => panic!("serde_derive: expected field name, got {other:?}"),
        }
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive: expected `:` after field name, got {other:?}"),
        }
        // Skip the type up to the next comma at angle-depth 0. Groups are
        // atomic token trees, so only `<`/`>` need depth tracking.
        let mut depth = 0i32;
        loop {
            match iter.next() {
                None => return fields,
                Some(TokenTree::Punct(p)) => match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => break,
                    _ => {}
                },
                Some(_) => {}
            }
        }
    }
    fields
}

/// Extracts variant names from an enum body, rejecting payload variants.
fn parse_enum_variants(body: TokenStream, name: &str) -> Vec<String> {
    let mut variants = Vec::new();
    let mut iter = body.into_iter().peekable();
    loop {
        while matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            iter.next();
            iter.next();
        }
        match iter.next() {
            Some(TokenTree::Ident(id)) => variants.push(id.to_string()),
            None => break,
            other => panic!("serde_derive: expected variant name in {name}, got {other:?}"),
        }
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
            Some(TokenTree::Group(_)) => panic!(
                "serde_derive: enum {name} has a payload-carrying variant, which the \
                 vendored derive does not support"
            ),
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                // Explicit discriminant: skip the expression.
                loop {
                    match iter.next() {
                        None => break,
                        Some(TokenTree::Punct(p)) if p.as_char() == ',' => break,
                        Some(_) => {}
                    }
                }
            }
            None => break,
            other => panic!("serde_derive: unexpected token in enum {name}: {other:?}"),
        }
    }
    variants
}
